//! NEON backend (aarch64): 128-bit lanes with fused multiply-add.
//!
//! Each 8-wide output lane is a pair of `float32x4_t`s; products go
//! through `vfmaq_f32` (fused, single rounding), so like AVX2 this backend
//! differs from the scalar reference by rounding only, inside the
//! kernel-oracle `1e-5` relative bound.
//!
//! This module only compiles on `aarch64` (the dispatch layer reports it
//! as not-compiled elsewhere) and uses only stable `core::arch::aarch64`
//! intrinsics: `vld1q_f32` / `vst1q_f32` / `vdupq_n_f32` / `vfmaq_f32`.
//!
//! # Safety
//!
//! Same two invariants as the x86 backends: instances only exist after
//! `neon` runtime detection ([`super::BackendKind::instance`]), and every
//! trait method asserts its slice-length contract before the intrinsic
//! body, whose pointer offsets stay below those lengths.

use core::arch::aarch64::*;

use super::{BackendKind, MicroKernelBackend};

/// The NEON backend. Zero-sized; constructed only by the dispatch layer
/// after feature detection.
pub(crate) struct NeonBackend;

impl MicroKernelBackend for NeonBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Neon
    }

    fn sgemm_tile(&self, pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32]) {
        assert_eq!(acc.len(), 8 * 8, "sgemm_tile: acc size mismatch");
        assert!(pa.len() >= kc * 8, "sgemm_tile: packed A too short");
        assert!(pb.len() >= kc * 8, "sgemm_tile: packed B too short");
        // SAFETY: neon detected (instance invariant); indices < asserted lengths.
        unsafe { sgemm_tile_8x8(pa.as_ptr(), pb.as_ptr(), kc, acc.as_mut_ptr()) }
    }

    fn attn_score_4x8(&self, q: &[f32], dh: usize, kt: &[f32], lk: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(dh >= 1 && q.len() >= 4 * dh, "attn_score: q too short");
        assert!(kt.len() >= (dh - 1) * lk + 8, "attn_score: kt too short");
        // SAFETY: neon detected; indices < asserted lengths.
        unsafe { mini_4x8(q.as_ptr(), dh, kt.as_ptr(), lk, dh, acc.as_mut_ptr().cast()) }
    }

    fn attn_pv_4x8(&self, p: &[f32], ktb: usize, vt: &[f32], dh: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(ktb >= 1 && p.len() >= 4 * ktb, "attn_pv: p too short");
        assert!(vt.len() >= (ktb - 1) * dh + 8, "attn_pv: vt too short");
        // SAFETY: neon detected; indices < asserted lengths.
        unsafe { mini_4x8(p.as_ptr(), ktb, vt.as_ptr(), dh, ktb, acc.as_mut_ptr().cast()) }
    }
}

/// 8×8 SGEMM micro-tile as sixteen `q`-register accumulators (two per row).
#[target_feature(enable = "neon")]
unsafe fn sgemm_tile_8x8(pa: *const f32, pb: *const f32, kc: usize, acc: *mut f32) {
    let mut lo = [vdupq_n_f32(0.0); 8];
    let mut hi = [vdupq_n_f32(0.0); 8];
    for i in 0..8 {
        lo[i] = vld1q_f32(acc.add(i * 8));
        hi[i] = vld1q_f32(acc.add(i * 8 + 4));
    }
    for p in 0..kc {
        let blo = vld1q_f32(pb.add(p * 8));
        let bhi = vld1q_f32(pb.add(p * 8 + 4));
        let a = pa.add(p * 8);
        for i in 0..8 {
            let av = vdupq_n_f32(*a.add(i));
            lo[i] = vfmaq_f32(lo[i], av, blo);
            hi[i] = vfmaq_f32(hi[i], av, bhi);
        }
    }
    for i in 0..8 {
        vst1q_f32(acc.add(i * 8), lo[i]);
        vst1q_f32(acc.add(i * 8 + 4), hi[i]);
    }
}

/// Shared 4×8 mini-GEMM (same index convention as the x86 backends):
/// `acc[a][0..8] += lhs[a*lhs_stride + s] * rhs[s*rhs_stride ..+8]` over
/// `s in 0..steps`.
#[target_feature(enable = "neon")]
unsafe fn mini_4x8(
    lhs: *const f32,
    lhs_stride: usize,
    rhs: *const f32,
    rhs_stride: usize,
    steps: usize,
    acc: *mut f32,
) {
    let mut lo = [vdupq_n_f32(0.0); 4];
    let mut hi = [vdupq_n_f32(0.0); 4];
    for a in 0..4 {
        lo[a] = vld1q_f32(acc.add(a * 8));
        hi[a] = vld1q_f32(acc.add(a * 8 + 4));
    }
    for s in 0..steps {
        let rlo = vld1q_f32(rhs.add(s * rhs_stride));
        let rhi = vld1q_f32(rhs.add(s * rhs_stride + 4));
        for a in 0..4 {
            let lv = vdupq_n_f32(*lhs.add(a * lhs_stride + s));
            lo[a] = vfmaq_f32(lo[a], lv, rlo);
            hi[a] = vfmaq_f32(hi[a], lv, rhi);
        }
    }
    for a in 0..4 {
        vst1q_f32(acc.add(a * 8), lo[a]);
        vst1q_f32(acc.add(a * 8 + 4), hi[a]);
    }
}
