//! SSE2 backend: 128-bit lanes, separate multiply + add.
//!
//! Each 8-wide output lane is a pair of `__m128`s. SSE2 has no FMA, so
//! every product is a correctly-rounded `mul` followed by a
//! correctly-rounded `add` — exactly the scalar op sequence — which makes
//! this backend **bit-identical** to the scalar reference (the oracle's
//! `1e-5` bound is satisfied with equality). Its value over "scalar" is
//! that the vector shape is guaranteed rather than left to the
//! auto-vectorizer.
//!
//! # Safety
//!
//! Same two invariants as [`super::avx2`]: instances only exist after
//! `sse2` runtime detection ([`super::BackendKind::instance`]), and every
//! trait method asserts its slice-length contract before the intrinsic
//! body, whose pointer offsets stay below those lengths. (SSE2 is baseline
//! on `x86_64`, so the detection requirement is vacuous there — kept for
//! uniformity.)

use core::arch::x86_64::*;

use super::{BackendKind, MicroKernelBackend};

/// The SSE2 backend. Zero-sized; constructed only by the dispatch layer
/// after feature detection.
pub(crate) struct Sse2Backend;

impl MicroKernelBackend for Sse2Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sse2
    }

    fn sgemm_tile(&self, pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32]) {
        assert_eq!(acc.len(), 8 * 8, "sgemm_tile: acc size mismatch");
        assert!(pa.len() >= kc * 8, "sgemm_tile: packed A too short");
        assert!(pb.len() >= kc * 8, "sgemm_tile: packed B too short");
        // SAFETY: sse2 detected (instance invariant); indices < asserted lengths.
        unsafe { sgemm_tile_8x8(pa.as_ptr(), pb.as_ptr(), kc, acc.as_mut_ptr()) }
    }

    fn attn_score_4x8(&self, q: &[f32], dh: usize, kt: &[f32], lk: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(dh >= 1 && q.len() >= 4 * dh, "attn_score: q too short");
        assert!(kt.len() >= (dh - 1) * lk + 8, "attn_score: kt too short");
        // SAFETY: sse2 detected; indices < asserted lengths.
        unsafe { mini_4x8(q.as_ptr(), dh, kt.as_ptr(), lk, dh, acc.as_mut_ptr().cast()) }
    }

    fn attn_pv_4x8(&self, p: &[f32], ktb: usize, vt: &[f32], dh: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(ktb >= 1 && p.len() >= 4 * ktb, "attn_pv: p too short");
        assert!(vt.len() >= (ktb - 1) * dh + 8, "attn_pv: vt too short");
        // SAFETY: sse2 detected; indices < asserted lengths.
        unsafe { mini_4x8(p.as_ptr(), ktb, vt.as_ptr(), dh, ktb, acc.as_mut_ptr().cast()) }
    }
}

/// 8×8 SGEMM micro-tile as sixteen `xmm` accumulators (two per row).
#[target_feature(enable = "sse2")]
unsafe fn sgemm_tile_8x8(pa: *const f32, pb: *const f32, kc: usize, acc: *mut f32) {
    let mut lo = [_mm_setzero_ps(); 8];
    let mut hi = [_mm_setzero_ps(); 8];
    for i in 0..8 {
        lo[i] = _mm_loadu_ps(acc.add(i * 8));
        hi[i] = _mm_loadu_ps(acc.add(i * 8 + 4));
    }
    for p in 0..kc {
        let blo = _mm_loadu_ps(pb.add(p * 8));
        let bhi = _mm_loadu_ps(pb.add(p * 8 + 4));
        let a = pa.add(p * 8);
        for i in 0..8 {
            let av = _mm_set1_ps(*a.add(i));
            lo[i] = _mm_add_ps(lo[i], _mm_mul_ps(av, blo));
            hi[i] = _mm_add_ps(hi[i], _mm_mul_ps(av, bhi));
        }
    }
    for i in 0..8 {
        _mm_storeu_ps(acc.add(i * 8), lo[i]);
        _mm_storeu_ps(acc.add(i * 8 + 4), hi[i]);
    }
}

/// Shared 4×8 mini-GEMM (see [`super::avx2::mini_4x8`]'s doc for the
/// index convention): `acc[a][0..8] += lhs[a*lhs_stride + s] *
/// rhs[s*rhs_stride ..+8]` over `s in 0..steps`.
#[target_feature(enable = "sse2")]
unsafe fn mini_4x8(
    lhs: *const f32,
    lhs_stride: usize,
    rhs: *const f32,
    rhs_stride: usize,
    steps: usize,
    acc: *mut f32,
) {
    let mut lo = [_mm_setzero_ps(); 4];
    let mut hi = [_mm_setzero_ps(); 4];
    for a in 0..4 {
        lo[a] = _mm_loadu_ps(acc.add(a * 8));
        hi[a] = _mm_loadu_ps(acc.add(a * 8 + 4));
    }
    for s in 0..steps {
        let rlo = _mm_loadu_ps(rhs.add(s * rhs_stride));
        let rhi = _mm_loadu_ps(rhs.add(s * rhs_stride + 4));
        for a in 0..4 {
            let lv = _mm_set1_ps(*lhs.add(a * lhs_stride + s));
            lo[a] = _mm_add_ps(lo[a], _mm_mul_ps(lv, rlo));
            hi[a] = _mm_add_ps(hi[a], _mm_mul_ps(lv, rhi));
        }
    }
    for a in 0..4 {
        _mm_storeu_ps(acc.add(a * 8), lo[a]);
        _mm_storeu_ps(acc.add(a * 8 + 4), hi[a]);
    }
}
