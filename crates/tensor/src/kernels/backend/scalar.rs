//! Portable scalar backend — the reference implementation.
//!
//! Every loop here reproduces the pre-backend kernel loops *exactly* (same
//! iteration order, same op sequence), so results are bit-identical to
//! what the repository shipped before explicit SIMD existed, and every
//! other backend is differential-tested against this one. No `unsafe`
//! anywhere in this module.
//!
//! The inner loops have constant trip counts (8-wide lanes), so LLVM still
//! auto-vectorizes them at whatever width the build's baseline target
//! allows — "scalar" names the *source form*, not a promise of scalar
//! instructions.

use super::{BackendKind, MicroKernelBackend};
use crate::kernels::fused::gelu_fwd;

/// The scalar reference backend (always available).
pub(crate) struct ScalarBackend;

/// Shared scalar SGEMM micro-tile over a runtime `mr` (8 for the scalar
/// backend proper, 16 for the wide test backend): for each depth step,
/// `acc[i*8 + j] += pa[p*mr + i] * pb[p*8 + j]`.
pub(crate) fn sgemm_tile_scalar(pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32], mr: usize) {
    assert_eq!(acc.len(), mr * 8, "sgemm_tile: acc size mismatch");
    assert!(pa.len() >= kc * mr, "sgemm_tile: packed A too short");
    assert!(pb.len() >= kc * 8, "sgemm_tile: packed B too short");
    for (ar, br) in pa.chunks_exact(mr).zip(pb.chunks_exact(8)).take(kc) {
        for (i, accrow) in acc.chunks_exact_mut(8).enumerate() {
            let av = ar[i];
            for (accv, &bv) in accrow.iter_mut().zip(br.iter()) {
                *accv += av * bv;
            }
        }
    }
}

/// `out[i] = (row[i] - mean) * inv * gamma[i] + beta[i]` — the layernorm
/// affine loop every backend must match bit-for-bit.
pub(crate) fn ln_affine_row_scalar(
    row: &[f32],
    mean: f32,
    inv: f32,
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
) {
    assert!(
        row.len() == out.len() && gamma.len() == out.len() && beta.len() == out.len(),
        "ln_affine_row: length mismatch"
    );
    for (((o, &v), &g), &b) in out.iter_mut().zip(row.iter()).zip(gamma.iter()).zip(beta.iter()) {
        *o = (v - mean) * inv * g + b;
    }
}

/// `out[i] = gelu(x[i] + bias[i])` — the fused bias+GELU inner loop every
/// backend must match bit-for-bit.
pub(crate) fn bias_gelu_row_scalar(x: &[f32], bias: &[f32], out: &mut [f32]) {
    assert!(
        x.len() == out.len() && bias.len() == out.len(),
        "bias_gelu_row: length mismatch"
    );
    for ((o, &xv), &bv) in out.iter_mut().zip(x.iter()).zip(bias.iter()) {
        *o = gelu_fwd(xv + bv);
    }
}

/// `s[j] = exp(s[j] - m)` in place, returning the left-to-right sum —
/// the online-softmax inner loop exactly as the pre-backend kernel wrote
/// it (libm `exp`, ascending-order sum).
pub(crate) fn softmax_exp_row_scalar(s: &mut [f32], m: f32) -> f32 {
    let mut psum = 0.0f32;
    for sv in s.iter_mut() {
        *sv = (*sv - m).exp();
        psum += *sv;
    }
    psum
}

impl MicroKernelBackend for ScalarBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn sgemm_tile(&self, pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32]) {
        sgemm_tile_scalar(pa, pb, kc, acc, 8);
    }

    fn attn_score_4x8(&self, q: &[f32], dh: usize, kt: &[f32], lk: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(dh >= 1 && q.len() >= 4 * dh, "attn_score: q too short");
        assert!(kt.len() >= (dh - 1) * lk + 8, "attn_score: kt too short");
        for p in 0..dh {
            let klane = &kt[p * lk..p * lk + 8];
            for (a, lane) in acc.iter_mut().enumerate() {
                let qv = q[a * dh + p];
                for (c, &kv) in lane.iter_mut().zip(klane.iter()) {
                    *c += qv * kv;
                }
            }
        }
    }

    fn attn_pv_4x8(&self, p: &[f32], ktb: usize, vt: &[f32], dh: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(ktb >= 1 && p.len() >= 4 * ktb, "attn_pv: p too short");
        assert!(vt.len() >= (ktb - 1) * dh + 8, "attn_pv: vt too short");
        for j in 0..ktb {
            let vlane = &vt[j * dh..j * dh + 8];
            for (a, lane) in acc.iter_mut().enumerate() {
                let pv = p[a * ktb + j];
                for (c, &vv) in lane.iter_mut().zip(vlane.iter()) {
                    *c += pv * vv;
                }
            }
        }
    }
}
