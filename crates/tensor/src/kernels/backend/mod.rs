//! Explicit SIMD micro-kernel backends with runtime dispatch.
//!
//! The blocked SGEMM, the fused streaming attention, and the fused
//! elementwise kernels all bottom out in a handful of register-tiled inner
//! loops. This module makes those loops explicit per instruction set: one
//! [`MicroKernelBackend`] trait, one implementation module per ISA
//! ([`avx2`], [`sse2`], [`neon`], [`scalar`]), and a dispatch layer that
//! picks the best available backend once per process via runtime
//! CPU-feature detection.
//!
//! ## Selection precedence
//!
//! The *kernel mode* ([`super::kernel_mode`]) is consulted first: when it
//! is [`super::KernelMode::Naive`] (via `APF_NAIVE_KERNELS` or
//! [`super::force_kernel_mode`]), dispatch sites take the textbook
//! reference kernels and no backend runs at all — a naive-mode test can
//! never accidentally execute SIMD. Only in fast mode does the backend
//! selection apply, in this order:
//!
//! 1. [`force_backend`] — programmatic override (tests, benches);
//! 2. `APF_KERNEL_BACKEND` — environment override (`avx2`, `sse2`,
//!    `neon`, `scalar`; case-insensitive, read once per process);
//! 3. best detected: `avx2 > sse2 > scalar` on x86-64, `neon > scalar`
//!    on aarch64 ([`best_for`]).
//!
//! Overrides naming a backend that is unknown, not compiled for this
//! architecture, or not supported by the running CPU yield a typed
//! [`BackendError`] from [`kernel_backend`] / [`force_backend`] — never a
//! panic and never a silent scalar fallback. The infallible hot path
//! ([`active`]) must still return *some* backend, so an invalid
//! environment override falls back to the best detected backend loudly:
//! once per process it prints the typed error to stderr and it bumps the
//! `apf_tensor_backend_override_invalid_total` counter on every dispatch.
//!
//! ## Safety policy
//!
//! All `unsafe` lives inside the per-ISA implementation modules and comes
//! in exactly two shapes, each with a documented invariant:
//!
//! - **ISA availability**: `#[target_feature]` functions are only
//!   reachable through a backend instance, and instances are only handed
//!   out by [`BackendKind::instance`] after the matching runtime feature
//!   check has passed. Constructing a backend any other way is impossible
//!   outside this module.
//! - **Bounds**: every trait entry point asserts the slice-length
//!   contract documented on [`MicroKernelBackend`] before entering the
//!   intrinsic body, so the unchecked pointer arithmetic inside is in
//!   bounds by construction.
//!
//! The trait methods themselves are safe functions; callers cannot cause
//! UB with any argument values.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

use super::stats;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod sse2;

/// Micro-kernel column width: every backend produces 8-wide output lanes
/// (one AVX2 vector, two SSE2/NEON vectors). This matches the SGEMM
/// B-panel width `NR` and the attention score-block width.
pub const LANES: usize = 8;

/// Largest supported micro-tile row count (`mr()` is 8 or 16).
pub const MAX_MR: usize = 16;

/// One register-tiled inner-loop implementation family.
///
/// ## Slice contracts
///
/// Every method documents the exact lengths it reads/writes; the
/// implementations assert them, so violations panic rather than read out
/// of bounds. `acc` buffers are always row-major and both read and
/// written (callers zero them for a plain product).
///
/// ## Numeric contracts
///
/// - [`sgemm_tile`](Self::sgemm_tile), [`attn_score_4x8`](Self::attn_score_4x8)
///   and [`attn_pv_4x8`](Self::attn_pv_4x8) must accumulate along the shared
///   depth in ascending order (the reduction *tree* per element is the plain
///   left-to-right sum); backends may fuse multiply and add (FMA), so
///   results can differ from the scalar reference by rounding only —
///   covered by the kernel-oracle `1e-5` relative bound.
/// - [`ln_affine_row`](Self::ln_affine_row) and
///   [`bias_gelu_row`](Self::bias_gelu_row) must be **bit-identical** to
///   the scalar reference (the oracle asserts exact bits): vectorized
///   overrides must use the same correctly-rounded op sequence per element
///   and must not contract to FMA.
pub trait MicroKernelBackend: Sync {
    /// Which [`BackendKind`] this implementation belongs to.
    fn kind(&self) -> BackendKind;

    /// Micro-tile row count for the packed SGEMM: 8 or 16. The packing
    /// and macro-tile loops in `gemm.rs` honor this dynamically.
    fn mr(&self) -> usize {
        8
    }

    /// Packed SGEMM micro-kernel: `acc[i*8 + j] += pa[p*mr + i] * pb[p*8 + j]`
    /// for `p in 0..kc`, `i in 0..mr`, `j in 0..8`.
    ///
    /// Contract: `acc.len() == mr * 8`, `pa.len() >= kc * mr`,
    /// `pb.len() >= kc * 8`.
    fn sgemm_tile(&self, pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32]);

    /// Attention score mini-GEMM block: `acc[a][j] += q[a*dh + p] *
    /// kt[p*lk + j]` for `p in 0..dh`, 4 query rows, 8 key lanes.
    ///
    /// Contract: `q.len() >= 4 * dh`, `kt.len() >= (dh - 1) * lk + 8`,
    /// `dh >= 1`.
    fn attn_score_4x8(&self, q: &[f32], dh: usize, kt: &[f32], lk: usize, acc: &mut [[f32; 8]; 4]);

    /// Attention P·V mini-GEMM block: `acc[a][c] += p[a*ktb + j] *
    /// vt[j*dh + c]` for `j in 0..ktb`, 4 probability rows, 8 value lanes.
    ///
    /// Contract: `p.len() >= 4 * ktb`, `vt.len() >= (ktb - 1) * dh + 8`,
    /// `ktb >= 1`.
    fn attn_pv_4x8(&self, p: &[f32], ktb: usize, vt: &[f32], dh: usize, acc: &mut [[f32; 8]; 4]);

    /// Layernorm affine inner loop: `out[i] = (row[i] - mean) * inv *
    /// gamma[i] + beta[i]`, bit-identical to the scalar reference (no FMA
    /// contraction allowed; see the trait docs).
    ///
    /// Contract: `row`, `gamma`, `beta`, `out` all have equal lengths.
    fn ln_affine_row(
        &self,
        row: &[f32],
        mean: f32,
        inv: f32,
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) {
        scalar::ln_affine_row_scalar(row, mean, inv, gamma, beta, out);
    }

    /// Fused bias+GELU inner loop: `out[i] = gelu(x[i] + bias[i])`,
    /// bit-identical to the scalar reference. The default stays scalar
    /// because `tanh` has no bit-compatible vector form; overrides may
    /// only vectorize if they preserve exact bits.
    ///
    /// Contract: `x`, `bias`, `out` all have equal lengths.
    fn bias_gelu_row(&self, x: &[f32], bias: &[f32], out: &mut [f32]) {
        scalar::bias_gelu_row_scalar(x, bias, out);
    }

    /// Softmax exponentiation row: `s[j] = exp(s[j] - m)` in place,
    /// returning the sum of the results. This is the hot loop of the
    /// online softmax — at serving scale it runs once per score element,
    /// which makes scalar `exp` the dominant cost of fused attention.
    ///
    /// Unlike the bit-exact fusions above, this method is
    /// **tolerance-contracted** (like the mini-GEMMs): overrides may use a
    /// polynomial `exp` approximation with relative error within a few
    /// ulp (well inside the oracle's `1e-5` attention bound) and may
    /// reassociate the sum. Required semantics regardless of
    /// approximation: NaN inputs (including `-inf - -inf` from
    /// all-masked rows) stay NaN, and strongly negative arguments
    /// (`s[j] - m < -87`) produce (near-)zero rather than garbage.
    fn softmax_exp_row(&self, s: &mut [f32], m: f32) -> f32 {
        scalar::softmax_exp_row_scalar(s, m)
    }

    /// Human-readable backend name (`"avx2"`, `"sse2"`, `"neon"`,
    /// `"scalar"`).
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// The backend families the dispatch layer knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// x86-64 AVX2 + FMA (the `avx2` name implies both features).
    Avx2,
    /// x86-64 SSE2 (baseline on x86-64, still detected explicitly).
    Sse2,
    /// aarch64 NEON.
    Neon,
    /// Portable scalar reference — always available, and the ground truth
    /// the differential oracle holds every other backend to.
    Scalar,
}

/// Typed selection failure: an override named something unknown or a
/// backend this process cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The override string matched no known backend name.
    UnknownBackend {
        /// The name as given.
        name: String,
    },
    /// The backend exists but is not compiled for this architecture or
    /// not supported by the running CPU.
    Unavailable {
        /// The requested backend.
        kind: BackendKind,
        /// Why it cannot run here.
        reason: &'static str,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnknownBackend { name } => write!(
                f,
                "unknown kernel backend {name:?} (valid: avx2, sse2, neon, scalar)"
            ),
            BackendError::Unavailable { kind, reason } => {
                write!(f, "kernel backend {} unavailable: {}", kind.name(), reason)
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Runtime CPU capabilities relevant to backend selection. A plain data
/// struct so ordering logic ([`best_for`], [`resolve`]) is pure and
/// unit-testable with synthetic feature sets on any host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuFeatures {
    /// AVX2 *and* FMA both detected (the avx2 backend uses fused
    /// multiply-add throughout).
    pub avx2: bool,
    /// SSE2 detected.
    pub sse2: bool,
    /// NEON detected.
    pub neon: bool,
}

impl CpuFeatures {
    /// Detects the running CPU's capabilities. Architecture-gated: on
    /// x86-64 only `avx2`/`sse2` can be set, on aarch64 only `neon`.
    pub fn detect() -> CpuFeatures {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma"),
                sse2: std::arch::is_x86_feature_detected!("sse2"),
                neon: false,
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            CpuFeatures {
                avx2: false,
                sse2: false,
                neon: std::arch::is_aarch64_feature_detected!("neon"),
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            CpuFeatures::default()
        }
    }

    /// Whether these features can run `kind` (ignores compilation —
    /// see [`BackendKind::compiled`]).
    pub fn supports(&self, kind: BackendKind) -> bool {
        match kind {
            BackendKind::Avx2 => self.avx2,
            BackendKind::Sse2 => self.sse2,
            BackendKind::Neon => self.neon,
            BackendKind::Scalar => true,
        }
    }
}

/// The detection order: widest vector unit first, scalar as the universal
/// floor. On x86-64 this reads `avx2 > sse2 > scalar`; on aarch64
/// `neon > scalar` (the x86 flags are never set there, and vice versa).
pub fn best_for(features: CpuFeatures) -> BackendKind {
    if features.avx2 {
        BackendKind::Avx2
    } else if features.sse2 {
        BackendKind::Sse2
    } else if features.neon {
        BackendKind::Neon
    } else {
        BackendKind::Scalar
    }
}

impl BackendKind {
    /// Every kind, best-first.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Avx2,
        BackendKind::Sse2,
        BackendKind::Neon,
        BackendKind::Scalar,
    ];

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Avx2 => "avx2",
            BackendKind::Sse2 => "sse2",
            BackendKind::Neon => "neon",
            BackendKind::Scalar => "scalar",
        }
    }

    /// Parses a backend name (case-insensitive, surrounding whitespace
    /// ignored). Unknown names are a typed error, never a fallback.
    pub fn parse(s: &str) -> Result<BackendKind, BackendError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "avx2" => Ok(BackendKind::Avx2),
            "sse2" => Ok(BackendKind::Sse2),
            "neon" => Ok(BackendKind::Neon),
            "scalar" => Ok(BackendKind::Scalar),
            _ => Err(BackendError::UnknownBackend { name: s.to_string() }),
        }
    }

    /// Whether this backend's code exists in the current binary.
    pub fn compiled(self) -> bool {
        match self {
            BackendKind::Avx2 | BackendKind::Sse2 => cfg!(target_arch = "x86_64"),
            BackendKind::Neon => cfg!(target_arch = "aarch64"),
            BackendKind::Scalar => true,
        }
    }

    /// Compiled for this architecture *and* supported by the running CPU.
    pub fn available(self) -> bool {
        self.compiled() && detected_features().supports(self)
    }

    /// All compiled-and-detected backends, best-first. Always non-empty
    /// (scalar is universal); this is the axis the per-backend oracle
    /// matrix and `kernel_bench` iterate.
    pub fn detected() -> Vec<BackendKind> {
        Self::ALL.into_iter().filter(|k| k.available()).collect()
    }

    /// The backend implementation, if it is [`available`](Self::available).
    ///
    /// This is the **only** way to obtain a backend instance, which is
    /// what makes calling its `#[target_feature]` internals sound: an
    /// instance existing proves the runtime feature check passed.
    pub fn instance(self) -> Option<&'static dyn MicroKernelBackend> {
        if !self.available() {
            return None;
        }
        Some(instance_unchecked(self))
    }
}

impl std::str::FromStr for BackendKind {
    type Err = BackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendKind::parse(s)
    }
}

/// Instance lookup without the availability check. Private: callers must
/// have validated availability (see [`BackendKind::instance`]).
fn instance_unchecked(kind: BackendKind) -> &'static dyn MicroKernelBackend {
    match kind {
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => &avx2::Avx2Backend,
        #[cfg(target_arch = "x86_64")]
        BackendKind::Sse2 => &sse2::Sse2Backend,
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => &neon::NeonBackend,
        _ => &scalar::ScalarBackend,
    }
}

/// Programmatic override slot: 0 = none, else `kind as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// `APF_KERNEL_BACKEND`, read once per process (reading env vars after
/// threads exist is fine; *setting* them is not, which is why tests use
/// [`force_backend`]).
static ENV_OVERRIDE: OnceLock<Option<String>> = OnceLock::new();
/// Detected CPU features, probed once.
static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
/// Whether the invalid-override warning has been printed.
static WARNED_INVALID: AtomicBool = AtomicBool::new(false);

fn detected_features() -> CpuFeatures {
    *FEATURES.get_or_init(CpuFeatures::detect)
}

fn forced_kind() -> Option<BackendKind> {
    match FORCED.load(Ordering::Relaxed) {
        0 => None,
        v => Some(BackendKind::ALL[(v - 1) as usize]),
    }
}

fn env_override() -> Option<&'static str> {
    ENV_OVERRIDE
        .get_or_init(|| std::env::var("APF_KERNEL_BACKEND").ok())
        .as_deref()
}

/// Pure selection logic: `force` beats `env` beats detection. Exposed so
/// the dispatch tests can drive it with synthetic feature sets.
pub fn resolve(
    force: Option<BackendKind>,
    env: Option<&str>,
    features: CpuFeatures,
) -> Result<BackendKind, BackendError> {
    let validate = |kind: BackendKind| {
        if !kind.compiled() {
            Err(BackendError::Unavailable {
                kind,
                reason: "not compiled for this architecture",
            })
        } else if !features.supports(kind) {
            Err(BackendError::Unavailable {
                kind,
                reason: "CPU feature not detected at runtime",
            })
        } else {
            Ok(kind)
        }
    };
    if let Some(kind) = force {
        return validate(kind);
    }
    if let Some(name) = env {
        if !name.trim().is_empty() {
            return validate(BackendKind::parse(name)?);
        }
    }
    Ok(best_for(features))
}

/// Forces the backend for the whole process (`None` restores the
/// environment/detection default). Validates availability up front so an
/// impossible request is a typed error instead of a latent panic.
pub fn force_backend(kind: Option<BackendKind>) -> Result<(), BackendError> {
    if let Some(k) = kind {
        // Re-use resolve's validation for a single error path.
        resolve(Some(k), None, detected_features())?;
    }
    let v = match kind {
        None => 0,
        Some(k) => BackendKind::ALL.iter().position(|&x| x == k).unwrap() as u8 + 1,
    };
    FORCED.store(v, Ordering::Relaxed);
    Ok(())
}

/// The backend selection currently in effect, with override errors
/// surfaced as typed values. This is the startup/introspection API; the
/// hot path uses [`active`].
pub fn kernel_backend() -> Result<BackendKind, BackendError> {
    resolve(forced_kind(), env_override(), detected_features())
}

/// The backend the fast-path kernels dispatch to right now. Infallible:
/// an invalid `APF_KERNEL_BACKEND` falls back to the best detected
/// backend — loudly (one stderr warning per process, plus the
/// `apf_tensor_backend_override_invalid_total` counter on every call).
/// Also records the active backend in the `apf_tensor_backend_*`
/// telemetry (selection gauge + per-backend dispatch counters).
pub(crate) fn active() -> &'static dyn MicroKernelBackend {
    let kind = match kernel_backend() {
        Ok(kind) => kind,
        Err(err) => {
            if !WARNED_INVALID.swap(true, Ordering::Relaxed) {
                eprintln!("apf-tensor: ignoring APF_KERNEL_BACKEND: {err}");
            }
            stats::record_invalid_override();
            best_for(detected_features())
        }
    };
    stats::record_backend_dispatch(kind);
    // `kind` came from resolve() against the real detected features (or
    // best_for on the same), so it is available by construction.
    instance_unchecked(kind)
}

/// Test-only backends exercising trait generality (e.g. the 16-row
/// micro-tile path no shipped backend uses yet).
#[cfg(test)]
pub(crate) mod testing {
    use super::{scalar, BackendKind, MicroKernelBackend};

    /// A 16-row micro-tile backend (scalar arithmetic) proving the
    /// `mr() == 16` packing/macro-tile path end to end.
    pub(crate) struct Wide16;

    impl MicroKernelBackend for Wide16 {
        fn kind(&self) -> BackendKind {
            BackendKind::Scalar
        }

        fn mr(&self) -> usize {
            16
        }

        fn sgemm_tile(&self, pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32]) {
            scalar::sgemm_tile_scalar(pa, pb, kc, acc, 16);
        }

        fn attn_score_4x8(
            &self,
            q: &[f32],
            dh: usize,
            kt: &[f32],
            lk: usize,
            acc: &mut [[f32; 8]; 4],
        ) {
            scalar::ScalarBackend.attn_score_4x8(q, dh, kt, lk, acc);
        }

        fn attn_pv_4x8(&self, p: &[f32], ktb: usize, vt: &[f32], dh: usize, acc: &mut [[f32; 8]; 4]) {
            scalar::ScalarBackend.attn_pv_4x8(p, ktb, vt, dh, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names_case_insensitively() {
        assert_eq!(BackendKind::parse("avx2").unwrap(), BackendKind::Avx2);
        assert_eq!(BackendKind::parse(" AVX2 ").unwrap(), BackendKind::Avx2);
        assert_eq!(BackendKind::parse("Scalar").unwrap(), BackendKind::Scalar);
        assert_eq!(BackendKind::parse("neon").unwrap(), BackendKind::Neon);
        assert_eq!(BackendKind::parse("SSE2").unwrap(), BackendKind::Sse2);
    }

    #[test]
    fn parse_rejects_unknown_names_with_typed_error() {
        let err = BackendKind::parse("avx512").unwrap_err();
        assert_eq!(err, BackendError::UnknownBackend { name: "avx512".into() });
        assert!(err.to_string().contains("avx512"));
        assert!(err.to_string().contains("scalar"), "error must list valid names");
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(BackendKind::Scalar.available());
        assert!(BackendKind::detected().contains(&BackendKind::Scalar));
        assert!(BackendKind::Scalar.instance().is_some());
    }

    #[test]
    fn detected_is_best_first_and_non_empty() {
        let detected = BackendKind::detected();
        assert!(!detected.is_empty());
        // The first detected backend is exactly what best_for picks.
        assert_eq!(detected[0], best_for(CpuFeatures::detect()));
        assert_eq!(*detected.last().unwrap(), BackendKind::Scalar);
    }
}
