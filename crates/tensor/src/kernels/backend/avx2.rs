//! AVX2 + FMA backend: 256-bit lanes, fused multiply-add.
//!
//! One 8-wide output lane is a single `__m256`; the SGEMM micro-tile holds
//! its 8×8 accumulator in eight `ymm` registers and the attention blocks
//! hold 4×8 in four. All products go through `_mm256_fmadd_ps`, which
//! rounds once instead of twice — results therefore differ from the scalar
//! reference by rounding only, inside the kernel-oracle `1e-5` relative
//! bound (see the numeric contract on
//! [`MicroKernelBackend`](super::MicroKernelBackend)). The layernorm
//! affine loop deliberately does **not** use FMA so it stays bit-identical
//! to the scalar reference, as the trait requires.
//!
//! # Safety
//!
//! The two invariants that make this module sound (see the module docs on
//! [`super`]):
//!
//! - **ISA**: [`Avx2Backend`] is only reachable through
//!   [`super::BackendKind::instance`], which requires `avx2` *and* `fma`
//!   to have been runtime-detected, so the `#[target_feature]` functions
//!   below only ever execute on a CPU that has them.
//! - **Bounds**: every trait method asserts the slice-length contract
//!   before entering the intrinsic body; the pointer arithmetic inside
//!   stays strictly below those asserted lengths.

use core::arch::x86_64::*;

use super::{BackendKind, MicroKernelBackend};

/// The AVX2+FMA backend. Zero-sized; constructed only by the dispatch
/// layer after feature detection.
pub(crate) struct Avx2Backend;

impl MicroKernelBackend for Avx2Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Avx2
    }

    fn sgemm_tile(&self, pa: &[f32], pb: &[f32], kc: usize, acc: &mut [f32]) {
        assert_eq!(acc.len(), 8 * 8, "sgemm_tile: acc size mismatch");
        assert!(pa.len() >= kc * 8, "sgemm_tile: packed A too short");
        assert!(pb.len() >= kc * 8, "sgemm_tile: packed B too short");
        // SAFETY: avx2+fma detected (instance invariant); indices < asserted lengths.
        unsafe { sgemm_tile_8x8(pa.as_ptr(), pb.as_ptr(), kc, acc.as_mut_ptr()) }
    }

    fn attn_score_4x8(&self, q: &[f32], dh: usize, kt: &[f32], lk: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(dh >= 1 && q.len() >= 4 * dh, "attn_score: q too short");
        assert!(kt.len() >= (dh - 1) * lk + 8, "attn_score: kt too short");
        // SAFETY: avx2+fma detected; indices < asserted lengths.
        unsafe { mini_4x8(q.as_ptr(), dh, kt.as_ptr(), lk, dh, acc.as_mut_ptr().cast()) }
    }

    fn attn_pv_4x8(&self, p: &[f32], ktb: usize, vt: &[f32], dh: usize, acc: &mut [[f32; 8]; 4]) {
        assert!(ktb >= 1 && p.len() >= 4 * ktb, "attn_pv: p too short");
        assert!(vt.len() >= (ktb - 1) * dh + 8, "attn_pv: vt too short");
        // SAFETY: avx2+fma detected; indices < asserted lengths.
        unsafe { mini_4x8(p.as_ptr(), ktb, vt.as_ptr(), dh, ktb, acc.as_mut_ptr().cast()) }
    }

    fn ln_affine_row(
        &self,
        row: &[f32],
        mean: f32,
        inv: f32,
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) {
        assert!(
            row.len() == out.len() && gamma.len() == out.len() && beta.len() == out.len(),
            "ln_affine_row: length mismatch"
        );
        // SAFETY: avx2 detected; all four slices asserted equal-length.
        unsafe {
            ln_affine(
                row.as_ptr(),
                gamma.as_ptr(),
                beta.as_ptr(),
                out.as_mut_ptr(),
                out.len(),
                mean,
                inv,
            )
        }
    }

    fn softmax_exp_row(&self, s: &mut [f32], m: f32) -> f32 {
        // SAFETY: avx2+fma detected; writes stay below s.len().
        unsafe { softmax_exp_row(s.as_mut_ptr(), s.len(), m) }
    }
}

/// 8×8 SGEMM micro-tile: eight `ymm` accumulators, one broadcast-FMA per
/// packed A value per depth step.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sgemm_tile_8x8(pa: *const f32, pb: *const f32, kc: usize, acc: *mut f32) {
    let mut c0 = _mm256_loadu_ps(acc);
    let mut c1 = _mm256_loadu_ps(acc.add(8));
    let mut c2 = _mm256_loadu_ps(acc.add(16));
    let mut c3 = _mm256_loadu_ps(acc.add(24));
    let mut c4 = _mm256_loadu_ps(acc.add(32));
    let mut c5 = _mm256_loadu_ps(acc.add(40));
    let mut c6 = _mm256_loadu_ps(acc.add(48));
    let mut c7 = _mm256_loadu_ps(acc.add(56));
    for p in 0..kc {
        let b = _mm256_loadu_ps(pb.add(p * 8));
        let a = pa.add(p * 8);
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a), b, c0);
        c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(1)), b, c1);
        c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(2)), b, c2);
        c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(3)), b, c3);
        c4 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(4)), b, c4);
        c5 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(5)), b, c5);
        c6 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(6)), b, c6);
        c7 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(7)), b, c7);
    }
    _mm256_storeu_ps(acc, c0);
    _mm256_storeu_ps(acc.add(8), c1);
    _mm256_storeu_ps(acc.add(16), c2);
    _mm256_storeu_ps(acc.add(24), c3);
    _mm256_storeu_ps(acc.add(32), c4);
    _mm256_storeu_ps(acc.add(40), c5);
    _mm256_storeu_ps(acc.add(48), c6);
    _mm256_storeu_ps(acc.add(56), c7);
}

/// Shared 4×8 mini-GEMM for the attention score and P·V blocks:
/// `acc[a][0..8] += lhs[a*lhs_stride + s] * rhs[s*rhs_stride ..+8]` over
/// `s in 0..steps`. (Score: lhs = queries, rhs = transposed keys,
/// steps = dh. P·V: lhs = probabilities, rhs = value rows, steps = ktb.)
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mini_4x8(
    lhs: *const f32,
    lhs_stride: usize,
    rhs: *const f32,
    rhs_stride: usize,
    steps: usize,
    acc: *mut f32,
) {
    let mut c0 = _mm256_loadu_ps(acc);
    let mut c1 = _mm256_loadu_ps(acc.add(8));
    let mut c2 = _mm256_loadu_ps(acc.add(16));
    let mut c3 = _mm256_loadu_ps(acc.add(24));
    for s in 0..steps {
        let r = _mm256_loadu_ps(rhs.add(s * rhs_stride));
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(*lhs.add(s)), r, c0);
        c1 = _mm256_fmadd_ps(_mm256_set1_ps(*lhs.add(lhs_stride + s)), r, c1);
        c2 = _mm256_fmadd_ps(_mm256_set1_ps(*lhs.add(2 * lhs_stride + s)), r, c2);
        c3 = _mm256_fmadd_ps(_mm256_set1_ps(*lhs.add(3 * lhs_stride + s)), r, c3);
    }
    _mm256_storeu_ps(acc, c0);
    _mm256_storeu_ps(acc.add(8), c1);
    _mm256_storeu_ps(acc.add(16), c2);
    _mm256_storeu_ps(acc.add(24), c3);
}

/// 8-wide `exp` via the classic Cephes range reduction: `x = n*ln2 + r`
/// with `n = round(x * log2(e))` and `|r| <= ln2/2`, a degree-7 minimax
/// polynomial for `exp(r)`, and the `2^n` scale applied by integer
/// arithmetic on the exponent bits. Relative error is ~2 ulp over the
/// clamped domain — far inside the `1e-5` oracle bound the
/// [`softmax_exp_row`](MicroKernelBackend::softmax_exp_row) contract
/// allows.
///
/// Domain handling: inputs are clamped to `[-87.33, 88.72]` before range
/// reduction, so the exponent-bit trick never over/underflows (softmax
/// arguments are `<= 0`, so the clamp only fires on the `-1e9` mask bias,
/// where the true result underflows to zero and the clamped `~1e-38` is
/// indistinguishable at the oracle bound). NaN lanes are re-injected after
/// the clamp so poisoned scores stay poisoned.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp8(x: __m256) -> __m256 {
    let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    let xc = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.336_54)), _mm256_set1_ps(88.722_84));
    let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
        _mm256_mul_ps(xc, _mm256_set1_ps(std::f32::consts::LOG2_E)),
    );
    // r = x - n*ln2, with ln2 split hi/lo so the subtraction is exact
    // (ln2_hi = 0.693359375, exactly representable; written short for the
    // lint but identical bits: 0x3F318000).
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693_359_4), xc);
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.121_944_4e-4), r);
    // exp(r) ~= 1 + r + r^2 * P(r) (Cephes expf coefficients).
    let mut p = _mm256_set1_ps(1.987_569_1e-4);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.398_199_9e-3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.333_452e-3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.166_579_6e-2));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.666_666_6e-1));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(0.5));
    let r2 = _mm256_mul_ps(r, r);
    let y = _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, _mm256_set1_ps(1.0)));
    // y * 2^n: add n to the exponent field. |n| <= 127 after the clamp.
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(n),
        _mm256_set1_epi32(127),
    )));
    let res = _mm256_mul_ps(y, pow2);
    // Clamping erased NaN lanes; restore them from the original input.
    _mm256_blendv_ps(res, x, nan_mask)
}

/// In-place `s[j] = exp(s[j] - m)` over `len` elements, returning the sum.
/// Vector lanes accumulate into 8 partial sums folded at the end; the
/// scalar tail uses libm `exp`. Both are within the tolerance contract.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn softmax_exp_row(s: *mut f32, len: usize, m: f32) -> f32 {
    let vm = _mm256_set1_ps(m);
    let mut vsum = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= len {
        let e = exp8(_mm256_sub_ps(_mm256_loadu_ps(s.add(i)), vm));
        _mm256_storeu_ps(s.add(i), e);
        vsum = _mm256_add_ps(vsum, e);
        i += 8;
    }
    // Horizontal fold of the 8 partials.
    let hi = _mm256_extractf128_ps::<1>(vsum);
    let q = _mm_add_ps(_mm256_castps256_ps128(vsum), hi);
    let q = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let q = _mm_add_ss(q, _mm_shuffle_ps::<1>(q, q));
    let mut sum = _mm_cvtss_f32(q);
    while i < len {
        let e = (*s.add(i) - m).exp();
        *s.add(i) = e;
        sum += e;
        i += 1;
    }
    sum
}

/// Vectorized layernorm affine: `(v - mean) * inv * gamma + beta` with the
/// exact scalar op sequence — sub, mul, mul, add, each correctly rounded —
/// so the result is bit-identical lane-for-lane to the scalar reference.
/// No FMA here, by contract.
#[target_feature(enable = "avx2")]
unsafe fn ln_affine(
    row: *const f32,
    gamma: *const f32,
    beta: *const f32,
    out: *mut f32,
    d: usize,
    mean: f32,
    inv: f32,
) {
    let vm = _mm256_set1_ps(mean);
    let vi = _mm256_set1_ps(inv);
    let mut i = 0;
    while i + 8 <= d {
        let v = _mm256_loadu_ps(row.add(i));
        let g = _mm256_loadu_ps(gamma.add(i));
        let b = _mm256_loadu_ps(beta.add(i));
        let t = _mm256_mul_ps(_mm256_mul_ps(_mm256_sub_ps(v, vm), vi), g);
        _mm256_storeu_ps(out.add(i), _mm256_add_ps(t, b));
        i += 8;
    }
    while i < d {
        *out.add(i) = (*row.add(i) - mean) * inv * *gamma.add(i) + *beta.add(i);
        i += 1;
    }
}
