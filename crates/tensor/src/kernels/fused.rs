//! Fused elementwise/normalization kernels.
//!
//! These exist to kill intermediate-allocation churn in the model layers:
//! `bias_gelu` replaces a broadcast-add tensor **plus** a GELU tensor with
//! one output buffer, and `layernorm_forward` normalizes rows without the
//! per-call `gamma`/`beta` copies the original graph op made. Both fuse
//! *traversals*, not arithmetic: every scalar operation and its ordering
//! is identical to the unfused form, so outputs are **bit-identical** to
//! the naive references (the oracle asserts exact equality, not a
//! tolerance).
//!
//! The bit-exactness contract extends through the [`super::backend`]
//! layer: the layernorm affine loop and the bias+GELU loop route through
//! [`MicroKernelBackend::ln_affine_row`] /
//! [`MicroKernelBackend::bias_gelu_row`], whose trait contract forbids
//! FMA contraction or reordering — a vectorized override must produce the
//! exact scalar bits. The mean/variance reductions stay in scalar
//! summation order here, outside the backend, for the same reason.

use rayon::prelude::*;

use super::backend;
use super::stats;

pub(crate) const SQRT_2_OVER_PI: f32 = 0.797_884_6;
pub(crate) const GELU_C: f32 = 0.044_715;

/// GELU (tanh approximation) — the single shared definition.
#[inline]
pub fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

/// d GELU / dx for the tanh approximation.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x)
}

/// `out[i] = gelu(x[i] + bias[i % tile])` in one pass (`bias.len()` must
/// divide `x.len()`; trailing-suffix broadcast as in `Graph::badd`).
///
/// # Panics
/// Panics if `bias` is empty (unless `x` is too) or does not tile `x`.
pub fn bias_gelu_forward(x: &[f32], bias: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "bias_gelu: out size mismatch");
    if x.is_empty() {
        return;
    }
    let tile = bias.len();
    assert!(tile > 0 && x.len().is_multiple_of(tile), "bias_gelu: bias must tile x");
    if let Some(cs) = stats::counters() {
        cs.fused_bias_gelu.inc();
    }
    let bk = backend::active();
    out.par_chunks_mut(tile).enumerate().for_each(|(r, orow)| {
        bk.bias_gelu_row(&x[r * tile..(r + 1) * tile], bias, orow);
    });
}

/// `gx[i] = g[i] * gelu'(x[i] + bias[i % tile])` — the input-side backward
/// of [`bias_gelu_forward`]. The bias gradient is the leading-dim
/// reduction of `gx`, which the autograd layer performs.
pub fn bias_gelu_backward(x: &[f32], bias: &[f32], g: &[f32], gx: &mut [f32]) {
    assert_eq!(x.len(), g.len(), "bias_gelu: grad size mismatch");
    assert_eq!(x.len(), gx.len(), "bias_gelu: gx size mismatch");
    if x.is_empty() {
        return;
    }
    let tile = bias.len();
    assert!(tile > 0 && x.len().is_multiple_of(tile), "bias_gelu: bias must tile x");
    gx.par_chunks_mut(tile).enumerate().for_each(|(r, grow)| {
        let xrow = &x[r * tile..(r + 1) * tile];
        let gsrc = &g[r * tile..(r + 1) * tile];
        for (((o, &xv), &bv), &gv) in
            grow.iter_mut().zip(xrow.iter()).zip(bias.iter()).zip(gsrc.iter())
        {
            *o = gv * gelu_grad(xv + bv);
        }
    });
}

/// Row-wise layer normalization: `out = (x - mean) * invstd * gamma + beta`
/// over `rows` rows of width `d`, also writing per-row `mean`/`invstd` for
/// backward. Row-parallel; within a row the summation order matches
/// [`layernorm_naive`] exactly, so the two are bit-identical.
///
/// # Panics
/// Panics on slice-length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_forward(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    d: usize,
    out: &mut [f32],
    mean: &mut [f32],
    invstd: &mut [f32],
) {
    assert_eq!(x.len(), rows * d, "layernorm: x size mismatch");
    assert_eq!(gamma.len(), d, "layernorm: gamma size mismatch");
    assert_eq!(beta.len(), d, "layernorm: beta size mismatch");
    assert_eq!(out.len(), rows * d, "layernorm: out size mismatch");
    assert_eq!(mean.len(), rows, "layernorm: mean size mismatch");
    assert_eq!(invstd.len(), rows, "layernorm: invstd size mismatch");
    if rows == 0 || d == 0 {
        return;
    }
    if let Some(cs) = stats::counters() {
        cs.fused_layernorm.inc();
    }
    let bk = backend::active();
    let mut per_row: Vec<((&mut [f32], &mut f32), &mut f32)> = out
        .chunks_mut(d)
        .zip(mean.iter_mut())
        .zip(invstd.iter_mut())
        .collect();
    per_row.par_iter_mut().enumerate().for_each(|(r, ((orow, m), inv))| {
        let row = &x[r * d..(r + 1) * d];
        (**m, **inv) = row_moments(row, eps);
        bk.ln_affine_row(row, **m, **inv, gamma, beta, orow);
    });
}

/// The sequential reference for [`layernorm_forward`] (same per-row math).
#[allow(clippy::too_many_arguments)]
pub fn layernorm_naive(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    d: usize,
    out: &mut [f32],
    mean: &mut [f32],
    invstd: &mut [f32],
) {
    assert_eq!(x.len(), rows * d, "layernorm: x size mismatch");
    assert_eq!(gamma.len(), d, "layernorm: gamma size mismatch");
    assert_eq!(beta.len(), d, "layernorm: beta size mismatch");
    assert_eq!(out.len(), rows * d, "layernorm: out size mismatch");
    assert_eq!(mean.len(), rows, "layernorm: mean size mismatch");
    assert_eq!(invstd.len(), rows, "layernorm: invstd size mismatch");
    if d == 0 {
        return;
    }
    for r in 0..rows {
        let row = &x[r * d..(r + 1) * d];
        (mean[r], invstd[r]) = norm_row(row, gamma, beta, eps, &mut out[r * d..(r + 1) * d]);
    }
}

/// One row's `(mean, invstd)` in plain left-to-right summation order —
/// shared by the fast and naive paths so the statistics are bit-identical
/// regardless of which affine loop follows.
#[inline]
fn row_moments(row: &[f32], eps: f32) -> (f32, f32) {
    let d = row.len() as f32;
    let mean = row.iter().sum::<f32>() / d;
    let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
    (mean, 1.0 / (var + eps).sqrt())
}

/// Normalizes one row with pure scalar code, returning `(mean, invstd)` —
/// the naive path's reference form.
#[inline]
fn norm_row(row: &[f32], gamma: &[f32], beta: &[f32], eps: f32, out: &mut [f32]) -> (f32, f32) {
    let (mean, inv) = row_moments(row, eps);
    for (((o, &v), &g), &b) in out.iter_mut().zip(row.iter()).zip(gamma.iter()).zip(beta.iter()) {
        *o = (v - mean) * inv * g + b;
    }
    (mean, inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn bias_gelu_matches_unfused_bitwise() {
        let x = Tensor::rand_uniform([5, 7], -3.0, 3.0, 31).to_vec();
        let b = Tensor::rand_uniform([7], -1.0, 1.0, 32).to_vec();
        let mut fused = vec![0.0f32; x.len()];
        bias_gelu_forward(&x, &b, &mut fused);
        for (i, (&xv, &f)) in x.iter().zip(fused.iter()).enumerate() {
            let unfused = gelu_fwd(xv + b[i % 7]);
            assert_eq!(unfused.to_bits(), f.to_bits(), "elem {}", i);
        }
    }

    #[test]
    fn layernorm_fast_matches_naive_bitwise() {
        let (rows, d) = (9, 13);
        let x = Tensor::rand_uniform([rows, d], -2.0, 2.0, 33).to_vec();
        let gamma = Tensor::rand_uniform([d], 0.5, 1.5, 34).to_vec();
        let beta = Tensor::rand_uniform([d], -0.5, 0.5, 35).to_vec();
        let mut of = vec![0.0f32; rows * d];
        let mut mf = vec![0.0f32; rows];
        let mut sf = vec![0.0f32; rows];
        layernorm_forward(&x, &gamma, &beta, 1e-5, rows, d, &mut of, &mut mf, &mut sf);
        let mut on = vec![0.0f32; rows * d];
        let mut mn = vec![0.0f32; rows];
        let mut sn = vec![0.0f32; rows];
        layernorm_naive(&x, &gamma, &beta, 1e-5, rows, d, &mut on, &mut mn, &mut sn);
        assert_eq!(
            of.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            on.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(mf, mn);
        assert_eq!(sf, sn);
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        bias_gelu_forward(&[], &[], &mut []);
        bias_gelu_backward(&[], &[], &[], &mut []);
        layernorm_forward(&[], &[], &[], 1e-5, 0, 0, &mut [], &mut [], &mut []);
    }
}
