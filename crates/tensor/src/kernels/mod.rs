//! Low-level compute kernels behind the tensor and autograd ops.
//!
//! Kernels are pure functions over buffers/tensors, rayon-parallel where the
//! problem size warrants it, and individually unit-tested so autograd can be
//! tested independently of the numerics.

pub mod conv;
pub mod gemm;
pub mod pool;
