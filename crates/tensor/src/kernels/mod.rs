//! Low-level compute kernels behind the tensor and autograd ops.
//!
//! Kernels are pure functions over buffers/tensors, rayon-parallel where the
//! problem size warrants it, and individually unit-tested so autograd can be
//! tested independently of the numerics.
//!
//! ## Fast vs naive kernels
//!
//! Each throughput-critical kernel ships in two forms: a **fast** path
//! (packed/tiled SGEMM, streaming fused attention, fused bias+GELU and
//! layernorm) and a **naive** reference that spells out the textbook loop.
//! The fast path is the default; the naive path is kept alive for two
//! reasons:
//!
//! 1. the differential kernel-oracle suite (`tests/kernel_oracle.rs`)
//!    proptests fast against naive over ragged shapes and non-finite
//!    inputs, so a silent divergence cannot ship;
//! 2. bisection — setting `APF_NAIVE_KERNELS=1` (or calling
//!    [`force_kernel_mode`]) reroutes every dispatch site through the
//!    reference kernels, which isolates "fast kernel bug" from "model bug"
//!    in one flag flip.
//!
//! Error-bound policy: fast kernels may reassociate sums (blocking changes
//! the reduction tree) and may contract multiply+add to FMA (the avx2/neon
//! [`backend`]s do), so agreement with the naive reference is asserted
//! elementwise within `REL_TOL * |a|·|b| + ABS_TOL` where `|a|·|b|` is the
//! same product computed over absolute values — a bound that scales with
//! the condition of the dot product rather than its (possibly cancelled)
//! value. Kernels that do *not* reassociate (bias+GELU, layernorm) must
//! match bit-for-bit on every backend.
//!
//! ## Mode vs backend precedence
//!
//! Two independent axes control dispatch, reconciled in this order:
//!
//! 1. **Kernel mode** (this module): [`force_kernel_mode`] beats
//!    `APF_NAIVE_KERNELS` beats the fast default. In naive mode every
//!    dispatch site takes the textbook reference loops and the SIMD
//!    backend layer is never entered — a naive-mode test cannot
//!    accidentally run vectorized code.
//! 2. **Backend** ([`backend`]), consulted only in fast mode:
//!    [`backend::force_backend`] beats `APF_KERNEL_BACKEND` beats the
//!    best runtime-detected backend.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod attention;
pub mod backend;
pub mod conv;
pub mod fused;
pub mod gemm;
pub mod pool;
pub(crate) mod stats;

/// Which implementation family the dispatching kernels route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Packed/tiled/fused kernels (the default).
    Fast,
    /// Textbook reference loops; slower but the differential oracle's
    /// ground truth and the bisection baseline.
    Naive,
}

/// Programmatic override: 0 = unset (defer to env), 1 = fast, 2 = naive.
static FORCED_MODE: AtomicU8 = AtomicU8::new(0);
/// The `APF_NAIVE_KERNELS` environment variable, read once per process.
static ENV_MODE: OnceLock<KernelMode> = OnceLock::new();

/// The kernel mode in effect: a [`force_kernel_mode`] override wins,
/// otherwise `APF_NAIVE_KERNELS` (any value but `0`/empty means naive),
/// otherwise [`KernelMode::Fast`].
pub fn kernel_mode() -> KernelMode {
    match FORCED_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Fast,
        2 => KernelMode::Naive,
        _ => *ENV_MODE.get_or_init(|| match std::env::var("APF_NAIVE_KERNELS") {
            Ok(v) if !v.is_empty() && v != "0" => KernelMode::Naive,
            _ => KernelMode::Fast,
        }),
    }
}

/// Overrides the kernel mode for the whole process (`None` restores the
/// environment-derived default). Tests use this instead of mutating the
/// environment, which is unsafe once threads exist.
pub fn force_kernel_mode(mode: Option<KernelMode>) {
    let v = match mode {
        None => 0,
        Some(KernelMode::Fast) => 1,
        Some(KernelMode::Naive) => 2,
    };
    FORCED_MODE.store(v, Ordering::Relaxed);
}

/// True when dispatch sites should take the reference path.
pub fn naive_kernels() -> bool {
    kernel_mode() == KernelMode::Naive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_overrides_and_restores() {
        force_kernel_mode(Some(KernelMode::Naive));
        assert_eq!(kernel_mode(), KernelMode::Naive);
        assert!(naive_kernels());
        force_kernel_mode(Some(KernelMode::Fast));
        assert_eq!(kernel_mode(), KernelMode::Fast);
        force_kernel_mode(None);
        // Default (no env set in the test harness) is fast.
        let _ = kernel_mode();
    }
}
