//! Kernel-level telemetry counters.
//!
//! Kernels are free functions with no struct to hang a [`Telemetry`] handle
//! on, so they report through the process-global registry
//! ([`Telemetry::global`]) when one has been installed. Until then every
//! call site costs one relaxed atomic load and records nothing — the
//! kernels stay pure and dependency-light.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use apf_telemetry::{Counter, Gauge, Telemetry};

use super::backend::BackendKind;

/// Lazily-registered counter handles for the fast-kernel dispatch sites.
pub(crate) struct KernelCounters {
    /// Packed-SGEMM invocations.
    pub gemm_packed: Counter,
    /// Reference-SGEMM invocations (dispatched, not oracle calls).
    pub gemm_naive: Counter,
    /// B-panels packed by the blocked SGEMM.
    pub packed_panels: Counter,
    /// Macro-tile passes that reused an already-packed B-panel.
    pub packed_panel_reuse: Counter,
    /// Fused streaming-attention forward calls.
    pub fused_attention: Counter,
    /// Fused bias+GELU forward calls.
    pub fused_bias_gelu: Counter,
    /// Fused layernorm forward calls.
    pub fused_layernorm: Counter,
}

static COUNTERS: OnceLock<KernelCounters> = OnceLock::new();

impl KernelCounters {
    fn register(tel: &Telemetry) -> Self {
        KernelCounters {
            gemm_packed: tel.counter("apf_tensor_gemm_packed_total", "Packed SGEMM calls"),
            gemm_naive: tel.counter("apf_tensor_gemm_naive_total", "Reference SGEMM calls"),
            packed_panels: tel.counter("apf_tensor_packed_panels_total", "B-panels packed"),
            packed_panel_reuse: tel.counter(
                "apf_tensor_packed_panel_reuse_total",
                "Macro-tile passes reusing a packed B-panel",
            ),
            fused_attention: tel.counter(
                "apf_tensor_fused_attention_total",
                "Fused streaming-attention forward calls",
            ),
            fused_bias_gelu: tel.counter(
                "apf_tensor_fused_bias_gelu_total",
                "Fused bias+GELU forward calls",
            ),
            fused_layernorm: tel.counter(
                "apf_tensor_fused_layernorm_total",
                "Fused layernorm forward calls",
            ),
        }
    }
}

/// The kernel counters, if a global telemetry has been installed. The
/// handles are registered once, on the first call that observes a global
/// registry; a process that never installs one never registers anything.
pub(crate) fn counters() -> Option<&'static KernelCounters> {
    if let Some(c) = COUNTERS.get() {
        return Some(c);
    }
    let tel = Telemetry::global()?;
    Some(COUNTERS.get_or_init(|| KernelCounters::register(tel)))
}

/// Per-backend dispatch telemetry (`apf_tensor_backend_*`), one labeled
/// series per [`BackendKind`], indexed by the kind's position in
/// [`BackendKind::ALL`].
pub(crate) struct BackendStats {
    /// Fast-kernel dispatches routed to each backend.
    dispatch: [Counter; 4],
    /// 0/1 selection gauge: exactly one backend reads 1 once any fast
    /// kernel has dispatched.
    active: [Gauge; 4],
    /// Dispatches that fell back because `APF_KERNEL_BACKEND` named an
    /// unknown or unavailable backend.
    invalid_override: Counter,
}

static BACKEND_STATS: OnceLock<BackendStats> = OnceLock::new();
/// Last backend recorded in the `active` gauges (`u8::MAX` = none yet),
/// so steady-state dispatches cost one counter bump + one atomic compare.
static LAST_ACTIVE: AtomicU8 = AtomicU8::new(u8::MAX);

impl BackendStats {
    fn register(tel: &Telemetry) -> Self {
        let series = |kind: BackendKind| vec![("backend", kind.name().to_string())];
        BackendStats {
            dispatch: BackendKind::ALL.map(|kind| {
                tel.counter_with(
                    "apf_tensor_backend_dispatch_total",
                    series(kind),
                    "Fast-kernel dispatches per micro-kernel backend",
                )
            }),
            active: BackendKind::ALL.map(|kind| {
                tel.gauge_with(
                    "apf_tensor_backend_active",
                    series(kind),
                    "1 for the currently selected micro-kernel backend, else 0",
                )
            }),
            invalid_override: tel.counter(
                "apf_tensor_backend_override_invalid_total",
                "Dispatches that ignored an invalid APF_KERNEL_BACKEND override",
            ),
        }
    }
}

fn backend_stats() -> Option<&'static BackendStats> {
    if let Some(s) = BACKEND_STATS.get() {
        return Some(s);
    }
    let tel = Telemetry::global()?;
    Some(BACKEND_STATS.get_or_init(|| BackendStats::register(tel)))
}

/// Records one fast-kernel dispatch to `kind`, refreshing the selection
/// gauges when the active backend changes (first dispatch, or a test
/// forcing a different backend mid-process).
pub(crate) fn record_backend_dispatch(kind: BackendKind) {
    let Some(stats) = backend_stats() else { return };
    let idx = BackendKind::ALL.iter().position(|&k| k == kind).unwrap();
    stats.dispatch[idx].inc();
    if LAST_ACTIVE.swap(idx as u8, Ordering::Relaxed) != idx as u8 {
        for (i, gauge) in stats.active.iter().enumerate() {
            gauge.set(if i == idx { 1.0 } else { 0.0 });
        }
    }
}

/// Records a dispatch that had to ignore an invalid `APF_KERNEL_BACKEND`.
pub(crate) fn record_invalid_override() {
    if let Some(stats) = backend_stats() {
        stats.invalid_override.inc();
    }
}
