//! Kernel-level telemetry counters.
//!
//! Kernels are free functions with no struct to hang a [`Telemetry`] handle
//! on, so they report through the process-global registry
//! ([`Telemetry::global`]) when one has been installed. Until then every
//! call site costs one relaxed atomic load and records nothing — the
//! kernels stay pure and dependency-light.

use std::sync::OnceLock;

use apf_telemetry::{Counter, Telemetry};

/// Lazily-registered counter handles for the fast-kernel dispatch sites.
pub(crate) struct KernelCounters {
    /// Packed-SGEMM invocations.
    pub gemm_packed: Counter,
    /// Reference-SGEMM invocations (dispatched, not oracle calls).
    pub gemm_naive: Counter,
    /// B-panels packed by the blocked SGEMM.
    pub packed_panels: Counter,
    /// Macro-tile passes that reused an already-packed B-panel.
    pub packed_panel_reuse: Counter,
    /// Fused streaming-attention forward calls.
    pub fused_attention: Counter,
    /// Fused bias+GELU forward calls.
    pub fused_bias_gelu: Counter,
    /// Fused layernorm forward calls.
    pub fused_layernorm: Counter,
}

static COUNTERS: OnceLock<KernelCounters> = OnceLock::new();

impl KernelCounters {
    fn register(tel: &Telemetry) -> Self {
        KernelCounters {
            gemm_packed: tel.counter("apf_tensor_gemm_packed_total", "Packed SGEMM calls"),
            gemm_naive: tel.counter("apf_tensor_gemm_naive_total", "Reference SGEMM calls"),
            packed_panels: tel.counter("apf_tensor_packed_panels_total", "B-panels packed"),
            packed_panel_reuse: tel.counter(
                "apf_tensor_packed_panel_reuse_total",
                "Macro-tile passes reusing a packed B-panel",
            ),
            fused_attention: tel.counter(
                "apf_tensor_fused_attention_total",
                "Fused streaming-attention forward calls",
            ),
            fused_bias_gelu: tel.counter(
                "apf_tensor_fused_bias_gelu_total",
                "Fused bias+GELU forward calls",
            ),
            fused_layernorm: tel.counter(
                "apf_tensor_fused_layernorm_total",
                "Fused layernorm forward calls",
            ),
        }
    }
}

/// The kernel counters, if a global telemetry has been installed. The
/// handles are registered once, on the first call that observes a global
/// registry; a process that never installs one never registers anything.
pub(crate) fn counters() -> Option<&'static KernelCounters> {
    if let Some(c) = COUNTERS.get() {
        return Some(c);
    }
    let tel = Telemetry::global()?;
    Some(COUNTERS.get_or_init(|| KernelCounters::register(tel)))
}
