//! Streaming (FlashAttention-style) scaled-dot-product attention.
//!
//! [`fused_attention_forward`] computes `softmax(Q K^T * scale + bias) V`
//! per batch-head **without materializing the `Lq x Lk` score matrix**: it
//! walks key tiles with an online softmax (running row max `m`, running
//! denominator `l`, output rescaled by `exp(m_old - m_new)` whenever the
//! max moves) and touches only `q_tile x k_tile` scratch. Alongside the
//! output it returns each row's log-sum-exp `LSE = m + ln(l)`, which is
//! exactly what backward needs to recompute any score tile's softmax
//! probabilities as `exp(s - LSE)` — so [`fused_attention_backward`]
//! re-derives probabilities tile by tile instead of storing them.
//!
//! [`attention_naive`] is the materialized reference (scores buffer +
//! row softmax identical to `Graph::softmax` + a plain weighted sum) used
//! by the differential oracle.
//!
//! Non-finite handling: neither implementation special-cases NaN/inf. Both
//! use the same `max`-fold (which ignores NaN operands) and the same
//! `exp(s - m)` form, so a NaN query/key/value poisons the same output
//! rows in both. Masked keys arrive as a large-negative additive bias
//! (`-1e9`), not `-inf`, so fully-masked rows stay finite.

use rayon::prelude::*;

use super::backend::{self, MicroKernelBackend};
use super::stats;

/// Default query-tile height.
pub const DEFAULT_Q_TILE: usize = 32;
/// Default key-tile width.
pub const DEFAULT_K_TILE: usize = 64;

#[allow(clippy::too_many_arguments)]
fn check_dims(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    key_bias: Option<&[f32]>,
    bh: usize,
    lq: usize,
    lk: usize,
    dh: usize,
) {
    assert!(dh > 0, "attention head dim must be positive");
    assert_eq!(q.len(), bh * lq * dh, "attention: Q size mismatch");
    assert_eq!(k.len(), bh * lk * dh, "attention: K size mismatch");
    assert_eq!(v.len(), bh * lk * dh, "attention: V size mismatch");
    if let Some(bias) = key_bias {
        assert_eq!(bias.len(), bh * lk, "attention: key bias size mismatch");
    }
}

/// Fused attention over `[bh, lq, dh] x [bh, lk, dh]`, writing the output
/// (`[bh, lq, dh]`) and per-row log-sum-exp (`[bh, lq]`). `key_bias`
/// (`[bh, lk]`) is added to every query's scores — the key-padding mask
/// path.
///
/// # Panics
/// Panics on slice-length/shape mismatches or zero tile sizes.
#[allow(clippy::too_many_arguments)]
pub fn fused_attention_forward(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    key_bias: Option<&[f32]>,
    bh: usize,
    lq: usize,
    lk: usize,
    dh: usize,
    scale: f32,
    q_tile: usize,
    k_tile: usize,
    out: &mut [f32],
    lse: &mut [f32],
) {
    check_dims(q, k, v, key_bias, bh, lq, lk, dh);
    assert!(q_tile > 0 && k_tile > 0, "attention tile sizes must be positive");
    assert_eq!(out.len(), bh * lq * dh, "attention: out size mismatch");
    assert_eq!(lse.len(), bh * lq, "attention: lse size mismatch");
    if bh == 0 || lq == 0 {
        return;
    }
    assert!(lk > 0, "attention requires at least one key per query row");
    if let Some(cs) = stats::counters() {
        cs.fused_attention.inc();
    }
    // Resolve the micro-kernel backend once per call, outside the
    // parallel loop, so every batch-head uses the same implementation.
    let bk = backend::active();
    let mut per_bh: Vec<(&mut [f32], &mut [f32])> =
        out.chunks_mut(lq * dh).zip(lse.chunks_mut(lq)).collect();
    per_bh.par_iter_mut().enumerate().for_each(|(b, (outb, lseb))| {
        forward_one(
            bk,
            &q[b * lq * dh..(b + 1) * lq * dh],
            &k[b * lk * dh..(b + 1) * lk * dh],
            &v[b * lk * dh..(b + 1) * lk * dh],
            key_bias.map(|bias| &bias[b * lk..(b + 1) * lk]),
            lq,
            lk,
            dh,
            scale,
            q_tile,
            k_tile,
            outb,
            lseb,
        );
    });
}

/// One batch-head of the streaming forward.
#[allow(clippy::too_many_arguments)]
fn forward_one(
    bk: &dyn MicroKernelBackend,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    bias: Option<&[f32]>,
    lq: usize,
    lk: usize,
    dh: usize,
    scale: f32,
    q_tile: usize,
    k_tile: usize,
    outb: &mut [f32],
    lseb: &mut [f32],
) {
    let kt = transpose_keys(kb, lk, dh);
    let mut s = vec![0.0f32; q_tile * k_tile];
    let mut m_run = vec![0.0f32; q_tile];
    let mut l_run = vec![0.0f32; q_tile];
    let mut o_run = vec![0.0f32; q_tile * dh];
    let mut q0 = 0;
    while q0 < lq {
        let qtb = q_tile.min(lq - q0);
        m_run[..qtb].fill(f32::NEG_INFINITY);
        l_run[..qtb].fill(0.0);
        o_run[..qtb * dh].fill(0.0);
        let mut k0 = 0;
        while k0 < lk {
            let ktb = k_tile.min(lk - k0);
            score_tile(bk, qb, &kt, bias, q0, k0, qtb, ktb, dh, lk, scale, &mut s);
            // Online-softmax bookkeeping: turn the score tile into
            // probabilities in place, rescaling running state when a row's
            // max moves.
            for i in 0..qtb {
                let srow = &mut s[i * ktb..(i + 1) * ktb];
                let row_max = srow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let m_new = m_run[i].max(row_max);
                // exp(-inf - finite) = 0 on the first tile; no special case.
                let corr = (m_run[i] - m_new).exp();
                for o in o_run[i * dh..(i + 1) * dh].iter_mut() {
                    *o *= corr;
                }
                // The hot exp loop goes through the backend (vectorized
                // polynomial exp on SIMD backends, libm on scalar — both
                // inside the oracle's attention tolerance).
                let psum = bk.softmax_exp_row(srow, m_new);
                l_run[i] = l_run[i] * corr + psum;
                m_run[i] = m_new;
            }
            accumulate_pv(
                bk,
                &s,
                &vb[k0 * dh..(k0 + ktb) * dh],
                qtb,
                ktb,
                dh,
                &mut o_run,
            );
            k0 += ktb;
        }
        for i in 0..qtb {
            let inv = 1.0 / l_run[i];
            let orow = &o_run[i * dh..(i + 1) * dh];
            let dst = &mut outb[(q0 + i) * dh..(q0 + i + 1) * dh];
            for (d, &o) in dst.iter_mut().zip(orow.iter()) {
                *d = o * inv;
            }
            lseb[q0 + i] = m_run[i] + l_run[i].ln();
        }
        q0 += qtb;
    }
}

/// `K` transposed to `[dh, lk]` (`kt[p*lk + j] = k[j*dh + p]`), built once
/// per batch-head: it lets [`score_tile`] accumulate over contiguous
/// key-lanes, which is what makes the dot products vectorizable.
fn transpose_keys(kb: &[f32], lk: usize, dh: usize) -> Vec<f32> {
    let mut kt = vec![0.0f32; dh * lk];
    for (j, krow) in kb.chunks_exact(dh).enumerate() {
        for (p, &kv) in krow.iter().enumerate() {
            kt[p * lk + j] = kv;
        }
    }
    kt
}

/// `o[.., dh] += P · V_tile` for the probability tile `p` (`[qtb, ktb]`)
/// and value rows `vt` (`[ktb, dh]`), register-blocked the same way as
/// [`score_tile`]: full `S_MR x S_NR` blocks go through the backend's
/// P·V mini-GEMM, accumulating in registers over the whole key tile
/// before touching `o` once; ragged edges run the plain loops. The
/// per-element sum over `j` stays the ascending-key order on every
/// backend; FMA backends differ from scalar by rounding only.
fn accumulate_pv(
    bk: &dyn MicroKernelBackend,
    p: &[f32],
    vt: &[f32],
    qtb: usize,
    ktb: usize,
    dh: usize,
    o: &mut [f32],
) {
    let mut i0 = 0;
    while i0 < qtb {
        let mr = S_MR.min(qtb - i0);
        let mut d0 = 0;
        while d0 < dh {
            let nr = S_NR.min(dh - d0);
            if mr == S_MR && nr == S_NR {
                let mut acc = [[0.0f32; S_NR]; S_MR];
                bk.attn_pv_4x8(&p[i0 * ktb..], ktb, &vt[d0..], dh, &mut acc);
                for (a, lane) in acc.iter().enumerate() {
                    let orow = &mut o[(i0 + a) * dh + d0..(i0 + a) * dh + d0 + S_NR];
                    for (ov, &av) in orow.iter_mut().zip(lane.iter()) {
                        *ov += av;
                    }
                }
            } else {
                for a in 0..mr {
                    let mut acc = [0.0f32; S_NR];
                    for j in 0..ktb {
                        let pv = p[(i0 + a) * ktb + j];
                        for (c, &vv) in
                            acc[..nr].iter_mut().zip(vt[j * dh + d0..j * dh + d0 + nr].iter())
                        {
                            *c += pv * vv;
                        }
                    }
                    let orow = &mut o[(i0 + a) * dh + d0..(i0 + a) * dh + d0 + nr];
                    for (ov, &av) in orow.iter_mut().zip(acc[..nr].iter()) {
                        *ov += av;
                    }
                }
            }
            d0 += nr;
        }
        i0 += mr;
    }
}

/// Query rows per score micro-block (register accumulators).
const S_MR: usize = 4;
/// Key columns per score micro-block (one vector lane of accumulators).
const S_NR: usize = 8;

/// Fills `s[i*ktb + j] = scale * q_{q0+i} . k_{k0+j} (+ bias_{k0+j})`,
/// reading keys through the transposed copy from [`transpose_keys`].
///
/// Full `S_MR x S_NR` blocks go through the backend's score mini-GEMM
/// (per `p`, broadcast `S_MR` query values against one contiguous
/// `S_NR`-wide key lane — the same shape as the SGEMM micro-kernel);
/// ragged edges fall back to scalar dot products. Each element is the
/// plain `0..dh` sum on every backend; FMA backends differ from the
/// scalar blocks by rounding only.
#[allow(clippy::too_many_arguments)]
fn score_tile(
    bk: &dyn MicroKernelBackend,
    qb: &[f32],
    kt: &[f32],
    bias: Option<&[f32]>,
    q0: usize,
    k0: usize,
    qtb: usize,
    ktb: usize,
    dh: usize,
    lk: usize,
    scale: f32,
    s: &mut [f32],
) {
    let mut i0 = 0;
    while i0 < qtb {
        let mr = S_MR.min(qtb - i0);
        let mut j0 = 0;
        while j0 < ktb {
            let nr = S_NR.min(ktb - j0);
            if mr == S_MR && nr == S_NR {
                let mut acc = [[0.0f32; S_NR]; S_MR];
                bk.attn_score_4x8(&qb[(q0 + i0) * dh..], dh, &kt[k0 + j0..], lk, &mut acc);
                for (a, lane) in acc.iter().enumerate() {
                    s[(i0 + a) * ktb + j0..(i0 + a) * ktb + j0 + S_NR].copy_from_slice(lane);
                }
            } else {
                for a in 0..mr {
                    let qrow = &qb[(q0 + i0 + a) * dh..(q0 + i0 + a + 1) * dh];
                    for b in 0..nr {
                        let mut dot = 0.0f32;
                        for (p, &qv) in qrow.iter().enumerate() {
                            dot += qv * kt[p * lk + k0 + j0 + b];
                        }
                        s[(i0 + a) * ktb + j0 + b] = dot;
                    }
                }
            }
            j0 += nr;
        }
        i0 += mr;
    }
    for i in 0..qtb {
        let srow = &mut s[i * ktb..(i + 1) * ktb];
        match bias {
            Some(bias) => {
                for (j, sv) in srow.iter_mut().enumerate() {
                    *sv = *sv * scale + bias[k0 + j];
                }
            }
            None => {
                for sv in srow.iter_mut() {
                    *sv *= scale;
                }
            }
        }
    }
}

/// Backward of [`fused_attention_forward`]: recomputes each score tile's
/// probabilities from the saved `lse` and accumulates
///
/// ```text
/// D_i  = sum_d dOut[i,d] * Out[i,d]
/// dS   = P o (dOut V^T - D_i)        (o = Hadamard)
/// dQ   = scale * dS K,  dK = scale * dS^T Q,  dV = P^T dOut
/// ```
///
/// `dq`/`dk`/`dv` are overwritten (assign semantics).
///
/// # Panics
/// Panics on slice-length/shape mismatches or zero tile sizes.
#[allow(clippy::too_many_arguments)]
pub fn fused_attention_backward(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    key_bias: Option<&[f32]>,
    out: &[f32],
    lse: &[f32],
    d_out: &[f32],
    bh: usize,
    lq: usize,
    lk: usize,
    dh: usize,
    scale: f32,
    q_tile: usize,
    k_tile: usize,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
) {
    check_dims(q, k, v, key_bias, bh, lq, lk, dh);
    assert!(q_tile > 0 && k_tile > 0, "attention tile sizes must be positive");
    assert_eq!(out.len(), bh * lq * dh, "attention: out size mismatch");
    assert_eq!(lse.len(), bh * lq, "attention: lse size mismatch");
    assert_eq!(d_out.len(), bh * lq * dh, "attention: d_out size mismatch");
    assert_eq!(dq.len(), q.len(), "attention: dq size mismatch");
    assert_eq!(dk.len(), k.len(), "attention: dk size mismatch");
    assert_eq!(dv.len(), v.len(), "attention: dv size mismatch");
    dq.fill(0.0);
    dk.fill(0.0);
    dv.fill(0.0);
    if bh == 0 || lq == 0 || lk == 0 {
        return;
    }
    let bk = backend::active();
    #[allow(clippy::type_complexity)]
    let mut per_bh: Vec<((&mut [f32], &mut [f32]), &mut [f32])> = dq
        .chunks_mut(lq * dh)
        .zip(dk.chunks_mut(lk * dh))
        .zip(dv.chunks_mut(lk * dh))
        .collect();
    per_bh
        .par_iter_mut()
        .enumerate()
        .for_each(|(b, ((dqb, dkb), dvb))| {
            backward_one(
                bk,
                &q[b * lq * dh..(b + 1) * lq * dh],
                &k[b * lk * dh..(b + 1) * lk * dh],
                &v[b * lk * dh..(b + 1) * lk * dh],
                key_bias.map(|bias| &bias[b * lk..(b + 1) * lk]),
                &out[b * lq * dh..(b + 1) * lq * dh],
                &lse[b * lq..(b + 1) * lq],
                &d_out[b * lq * dh..(b + 1) * lq * dh],
                lq,
                lk,
                dh,
                scale,
                q_tile,
                k_tile,
                dqb,
                dkb,
                dvb,
            );
        });
}

/// One batch-head of the tile-recomputing backward.
#[allow(clippy::too_many_arguments)]
fn backward_one(
    bk: &dyn MicroKernelBackend,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    bias: Option<&[f32]>,
    outb: &[f32],
    lseb: &[f32],
    dob: &[f32],
    lq: usize,
    lk: usize,
    dh: usize,
    scale: f32,
    q_tile: usize,
    k_tile: usize,
    dqb: &mut [f32],
    dkb: &mut [f32],
    dvb: &mut [f32],
) {
    // D_i = dOut_i . Out_i (the softmax-Jacobian row correction).
    let mut d_corr = vec![0.0f32; lq];
    for (i, dc) in d_corr.iter_mut().enumerate() {
        let orow = &outb[i * dh..(i + 1) * dh];
        let grow = &dob[i * dh..(i + 1) * dh];
        *dc = orow.iter().zip(grow.iter()).map(|(&o, &g)| o * g).sum();
    }
    let kt = transpose_keys(kb, lk, dh);
    let mut s = vec![0.0f32; q_tile * k_tile];
    let mut q0 = 0;
    while q0 < lq {
        let qtb = q_tile.min(lq - q0);
        let mut k0 = 0;
        while k0 < lk {
            let ktb = k_tile.min(lk - k0);
            score_tile(bk, qb, &kt, bias, q0, k0, qtb, ktb, dh, lk, scale, &mut s);
            for i in 0..qtb {
                let lse_i = lseb[q0 + i];
                let di = d_corr[q0 + i];
                let grow = &dob[(q0 + i) * dh..(q0 + i + 1) * dh];
                let dqrow = &mut dqb[(q0 + i) * dh..(q0 + i + 1) * dh];
                for (j, &sv) in s[i * ktb..(i + 1) * ktb].iter().enumerate() {
                    let p = (sv - lse_i).exp();
                    let vrow = &vb[(k0 + j) * dh..(k0 + j + 1) * dh];
                    let mut dp = 0.0f32;
                    for (&g, &vv) in grow.iter().zip(vrow.iter()) {
                        dp += g * vv;
                    }
                    let ds = p * (dp - di) * scale;
                    let krow = &kb[(k0 + j) * dh..(k0 + j + 1) * dh];
                    for (dqv, &kv) in dqrow.iter_mut().zip(krow.iter()) {
                        *dqv += ds * kv;
                    }
                    let qrow = &qb[(q0 + i) * dh..(q0 + i + 1) * dh];
                    let dkrow = &mut dkb[(k0 + j) * dh..(k0 + j + 1) * dh];
                    for (dkv, &qv) in dkrow.iter_mut().zip(qrow.iter()) {
                        *dkv += ds * qv;
                    }
                    let dvrow = &mut dvb[(k0 + j) * dh..(k0 + j + 1) * dh];
                    for (dvv, &g) in dvrow.iter_mut().zip(grow.iter()) {
                        *dvv += p * g;
                    }
                }
            }
            k0 += ktb;
        }
        q0 += qtb;
    }
}

/// Materialized reference: full `lq x lk` scores, the same row softmax as
/// `Graph::softmax`, then an explicit weighted sum. Serial by design — it
/// is the oracle's ground truth, not a production path.
#[allow(clippy::too_many_arguments)]
pub fn attention_naive(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    key_bias: Option<&[f32]>,
    bh: usize,
    lq: usize,
    lk: usize,
    dh: usize,
    scale: f32,
    out: &mut [f32],
) {
    check_dims(q, k, v, key_bias, bh, lq, lk, dh);
    assert_eq!(out.len(), bh * lq * dh, "attention: out size mismatch");
    let mut scores = vec![0.0f32; lq * lk.max(1)];
    for b in 0..bh {
        let qb = &q[b * lq * dh..(b + 1) * lq * dh];
        let kb = &k[b * lk * dh..(b + 1) * lk * dh];
        let vb = &v[b * lk * dh..(b + 1) * lk * dh];
        let bias = key_bias.map(|bias| &bias[b * lk..(b + 1) * lk]);
        for i in 0..lq {
            let qrow = &qb[i * dh..(i + 1) * dh];
            for j in 0..lk {
                let krow = &kb[j * dh..(j + 1) * dh];
                let mut dot = 0.0f32;
                for (&qv, &kv) in qrow.iter().zip(krow.iter()) {
                    dot += qv * kv;
                }
                scores[i * lk + j] = match bias {
                    Some(bias) => dot * scale + bias[j],
                    None => dot * scale,
                };
            }
        }
        for i in 0..lq {
            let row = &mut scores[i * lk..(i + 1) * lk];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for sv in row.iter_mut() {
                *sv = (*sv - m).exp();
                denom += *sv;
            }
            let inv = 1.0 / denom;
            let orow = &mut out[(b * lq + i) * dh..(b * lq + i + 1) * dh];
            orow.fill(0.0);
            for (j, &p) in row.iter().enumerate() {
                let w = p * inv;
                let vrow = &vb[j * dh..(j + 1) * dh];
                for (o, &vv) in orow.iter_mut().zip(vrow.iter()) {
                    *o += w * vv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn run_both(bh: usize, lq: usize, lk: usize, dh: usize, qt: usize, kt: usize, bias: bool) {
        let q = Tensor::rand_uniform([bh.max(1), lq, dh], -1.5, 1.5, 11).to_vec();
        let k = Tensor::rand_uniform([bh.max(1), lk, dh], -1.5, 1.5, 12).to_vec();
        let v = Tensor::rand_uniform([bh.max(1), lk, dh], -2.0, 2.0, 13).to_vec();
        let q = &q[..bh * lq * dh];
        let k = &k[..bh * lk * dh];
        let v = &v[..bh * lk * dh];
        let bias_vec: Vec<f32> = (0..bh * lk)
            .map(|i| if i % 3 == 0 { -1e9 } else { 0.1 * (i % 5) as f32 })
            .collect();
        let bias = bias.then_some(&bias_vec[..]);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut fast = vec![0.0f32; bh * lq * dh];
        let mut lse = vec![0.0f32; bh * lq];
        fused_attention_forward(q, k, v, bias, bh, lq, lk, dh, scale, qt, kt, &mut fast, &mut lse);
        let mut slow = vec![0.0f32; bh * lq * dh];
        attention_naive(q, k, v, bias, bh, lq, lk, dh, scale, &mut slow);
        for (i, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            assert!((a - b).abs() < 1e-5, "elem {}: fused {} vs naive {}", i, a, b);
        }
    }

    #[test]
    fn fused_matches_naive_across_tilings() {
        run_both(2, 7, 7, 3, 4, 4, false); // ragged multi-tile
        run_both(1, 1, 5, 2, 32, 64, false); // single query row
        run_both(3, 9, 1, 4, 2, 1, false); // single key
        run_both(2, 33, 17, 8, 8, 8, false); // several full tiles + edges
    }

    #[test]
    fn fused_matches_naive_with_key_bias() {
        run_both(2, 6, 6, 4, 3, 2, true);
        run_both(1, 5, 9, 2, 64, 64, true);
    }

    #[test]
    fn zero_batch_is_a_no_op() {
        let mut out = vec![0.0f32; 0];
        let mut lse = vec![0.0f32; 0];
        fused_attention_forward(&[], &[], &[], None, 0, 4, 4, 2, 1.0, 2, 2, &mut out, &mut lse);
        let mut dq = vec![0.0f32; 0];
        let mut dk = vec![0.0f32; 0];
        let mut dv = vec![0.0f32; 0];
        fused_attention_backward(
            &[], &[], &[], None, &[], &[], &[], 0, 4, 4, 2, 1.0, 2, 2, &mut dq, &mut dk, &mut dv,
        );
    }

    #[test]
    fn lse_reproduces_probabilities() {
        // exp(s_ij - lse_i) must sum to 1 per row — the invariant backward
        // leans on when it recomputes tiles.
        let (bh, l, dh) = (2, 6, 3);
        let q = Tensor::rand_uniform([bh, l, dh], -1.0, 1.0, 21).to_vec();
        let k = Tensor::rand_uniform([bh, l, dh], -1.0, 1.0, 22).to_vec();
        let v = Tensor::rand_uniform([bh, l, dh], -1.0, 1.0, 23).to_vec();
        let scale = 0.7;
        let mut out = vec![0.0f32; bh * l * dh];
        let mut lse = vec![0.0f32; bh * l];
        fused_attention_forward(&q, &k, &v, None, bh, l, l, dh, scale, 2, 2, &mut out, &mut lse);
        for b in 0..bh {
            for i in 0..l {
                let mut sum = 0.0f32;
                for j in 0..l {
                    let mut dot = 0.0f32;
                    for d in 0..dh {
                        dot += q[(b * l + i) * dh + d] * k[(b * l + j) * dh + d];
                    }
                    sum += (dot * scale - lse[b * l + i]).exp();
                }
                assert!((sum - 1.0).abs() < 1e-5, "row prob sum {}", sum);
            }
        }
    }
}
