//! 2D pooling kernels (NCHW).

use rayon::prelude::*;

use crate::tensor::Tensor;

/// Max-pool with square window `k`, stride `k` (non-overlapping).
///
/// Returns `(pooled, argmax)` where `argmax[i]` is the flat input offset that
/// produced output element `i` (needed for the backward scatter).
pub fn maxpool2d(x: &Tensor, k: usize) -> (Tensor, Vec<u32>) {
    let d = x.dims();
    assert_eq!(d.len(), 4, "maxpool2d expects NCHW");
    let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
    assert!(h % k == 0 && w % k == 0, "maxpool2d requires divisible extents");
    let ho = h / k;
    let wo = w / k;
    let out_len = ho * wo;
    let mut out = vec![0.0f32; b * c * out_len];
    let mut idx = vec![0u32; b * c * out_len];
    let src = x.data();

    out.par_chunks_mut(out_len)
        .zip(idx.par_chunks_mut(out_len))
        .enumerate()
        .for_each(|(map, (o, ix))| {
            let base = map * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let off = base + (oy * k + ky) * w + ox * k + kx;
                            if src[off] > best {
                                best = src[off];
                                best_at = off;
                            }
                        }
                    }
                    o[oy * wo + ox] = best;
                    ix[oy * wo + ox] = best_at as u32;
                }
            }
        });
    (Tensor::new([b, c, ho, wo], out), idx)
}

/// Backward of [`maxpool2d`]: routes each output gradient to its argmax.
pub fn maxpool2d_backward(grad_out: &Tensor, idx: &[u32], input_numel: usize) -> Vec<f32> {
    assert_eq!(grad_out.numel(), idx.len());
    let mut grad_in = vec![0.0f32; input_numel];
    for (&i, &g) in idx.iter().zip(grad_out.data().iter()) {
        grad_in[i as usize] += g;
    }
    grad_in
}

/// Average-pool with square window `k`, stride `k`.
pub fn avgpool2d(x: &Tensor, k: usize) -> Tensor {
    let d = x.dims();
    assert_eq!(d.len(), 4, "avgpool2d expects NCHW");
    let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
    assert!(h % k == 0 && w % k == 0, "avgpool2d requires divisible extents");
    let ho = h / k;
    let wo = w / k;
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; b * c * ho * wo];
    let src = x.data();
    for map in 0..b * c {
        let base = map * h * w;
        let obase = map * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut s = 0.0;
                for ky in 0..k {
                    for kx in 0..k {
                        s += src[base + (oy * k + ky) * w + ox * k + kx];
                    }
                }
                out[obase + oy * wo + ox] = s * inv;
            }
        }
    }
    Tensor::new([b, c, ho, wo], out)
}

/// Backward of [`avgpool2d`]: spreads each gradient uniformly over its window.
pub fn avgpool2d_backward(grad_out: &Tensor, k: usize, h: usize, w: usize) -> Vec<f32> {
    let d = grad_out.dims();
    let (b, c, ho, wo) = (d[0], d[1], d[2], d[3]);
    assert_eq!(ho * k, h);
    assert_eq!(wo * k, w);
    let inv = 1.0 / (k * k) as f32;
    let mut grad_in = vec![0.0f32; b * c * h * w];
    let go = grad_out.data();
    for map in 0..b * c {
        let base = map * h * w;
        let obase = map * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let g = go[obase + oy * wo + ox] * inv;
                for ky in 0..k {
                    for kx in 0..k {
                        grad_in[base + (oy * k + ky) * w + ox * k + kx] += g;
                    }
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor::new(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let (y, idx) = maxpool2d(&x, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.to_vec(), vec![4., 8., 12., 16.]);
        assert_eq!(idx, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::new([1, 1, 2, 2], vec![1., 9., 2., 3.]);
        let (_, idx) = maxpool2d(&x, 2);
        let go = Tensor::new([1, 1, 1, 1], vec![5.0]);
        let gi = maxpool2d_backward(&go, &idx, 4);
        assert_eq!(gi, vec![0., 5., 0., 0.]);
    }

    #[test]
    fn avgpool_and_backward() {
        let x = Tensor::new([1, 1, 2, 2], vec![1., 3., 5., 7.]);
        let y = avgpool2d(&x, 2);
        assert_eq!(y.to_vec(), vec![4.0]);
        let gi = avgpool2d_backward(&Tensor::new([1, 1, 1, 1], vec![8.0]), 2, 2, 2);
        assert_eq!(gi, vec![2., 2., 2., 2.]);
    }

    #[test]
    fn pools_handle_multichannel_batches() {
        let x = Tensor::rand_uniform([2, 3, 4, 4], -1.0, 1.0, 11);
        let (y, idx) = maxpool2d(&x, 2);
        assert_eq!(y.dims(), &[2, 3, 2, 2]);
        assert_eq!(idx.len(), 2 * 3 * 4);
        // Every argmax offset must fall inside its own window's map.
        for (i, &off) in idx.iter().enumerate() {
            let map = i / 4;
            let lo = map * 16;
            assert!((off as usize) >= lo && (off as usize) < lo + 16);
        }
        let a = avgpool2d(&x, 4);
        assert_eq!(a.dims(), &[2, 3, 1, 1]);
        let m = a.data()[0];
        let manual: f32 = x.data()[..16].iter().sum::<f32>() / 16.0;
        assert!((m - manual).abs() < 1e-5);
    }
}
