//! Dense, contiguous, row-major f32 tensors with cheap `Arc` sharing.
//!
//! [`Tensor`] is the value type flowing through the autograd graph. Clones
//! are O(1); mutation copies on write via [`Arc::make_mut`].

use std::sync::Arc;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::shape::Shape;

/// Elementwise parallelism threshold: below this we stay sequential, since
/// rayon's task overhead dominates for tiny tensors.
pub(crate) const PAR_THRESHOLD: usize = 1 << 14;

/// A dense row-major f32 tensor.
#[derive(Clone)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Creates a tensor from a shape and matching data buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor::new(shape, vec![0.0; n])
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor::new(shape, vec![value; n])
    }

    /// Rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::new(Shape::scalar(), vec![value])
    }

    /// I.i.d. uniform samples in `[lo, hi)` from a seeded ChaCha stream.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::new(shape, data)
    }

    /// I.i.d. normal samples (Box-Muller) from a seeded ChaCha stream.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor::new(shape, data)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (copy-on-write if shared).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Copies the buffer into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.to_vec()
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    /// Panics if `numel() != 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a one-element tensor");
        self.data[0]
    }

    /// Same data viewed under a different shape with equal element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {}",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync + Send) -> Tensor {
        let data: Vec<f32> = if self.numel() >= PAR_THRESHOLD {
            self.data.par_iter().map(|&x| f(x)).collect()
        } else {
            self.data.iter().map(|&x| f(x)).collect()
        };
        Tensor::new(self.shape.clone(), data)
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync + Send) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_with shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let data: Vec<f32> = if self.numel() >= PAR_THRESHOLD {
            self.data
                .par_iter()
                .zip(other.data.par_iter())
                .map(|(&a, &b)| f(a, b))
                .collect()
        } else {
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect()
        };
        Tensor::new(self.shape.clone(), data)
    }

    /// Elementwise sum (same shape).
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference (same shape).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product (same shape).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient (same shape).
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place accumulate: `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        let dst = self.data_mut();
        if dst.len() >= PAR_THRESHOLD {
            dst.par_iter_mut()
                .zip(other.data.par_iter())
                .for_each(|(d, &s)| *d += s);
        } else {
            for (d, &s) in dst.iter_mut().zip(other.data.iter()) {
                *d += s;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        if self.numel() >= PAR_THRESHOLD {
            self.data.par_iter().sum()
        } else {
            self.data.iter().sum()
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaN-ignoring; -inf for empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-ignoring; +inf for empty).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Matrix transpose of the last two dims (copies).
    pub fn transpose_last(&self) -> Tensor {
        let rank = self.shape.rank();
        assert!(rank >= 2, "transpose_last requires rank >= 2");
        let rows = self.shape.dim(rank - 2);
        let cols = self.shape.dim(rank - 1);
        let (batch, _) = self.shape.split_trailing(2);
        let mut out = vec![0.0f32; self.numel()];
        let src = self.data();
        let mat = rows * cols;
        for b in 0..batch {
            let s = &src[b * mat..(b + 1) * mat];
            let d = &mut out[b * mat..(b + 1) * mat];
            for r in 0..rows {
                for c in 0..cols {
                    d[c * rows + r] = s[r * cols + c];
                }
            }
        }
        Tensor::new(self.shape.transpose_last(), out)
    }

    /// Batched matrix product.
    ///
    /// Supports `[.., m, k] x [k, n]` (shared right operand) and
    /// `[b.., m, k] x [b.., k, n]` (matching batch dims).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::kernels::gemm::matmul(self, other)
    }

    /// Concatenates tensors along `axis`. All other dims must match.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let rank = tensors[0].shape.rank();
        assert!(axis < rank, "concat axis out of range");
        for t in tensors {
            assert_eq!(t.shape.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(
                        t.shape.dim(d),
                        tensors[0].shape.dim(d),
                        "concat dim {} mismatch",
                        d
                    );
                }
            }
        }
        let lead: usize = tensors[0].shape.dims()[..axis].iter().product();
        let trail: usize = tensors[0].shape.dims()[axis + 1..].iter().product();
        let total_axis: usize = tensors.iter().map(|t| t.shape.dim(axis)).sum();
        let mut dims = tensors[0].shape.dims().to_vec();
        dims[axis] = total_axis;
        let mut out = Vec::with_capacity(lead * total_axis * trail);
        for l in 0..lead {
            for t in tensors {
                let span = t.shape.dim(axis) * trail;
                let start = l * span;
                out.extend_from_slice(&t.data()[start..start + span]);
            }
        }
        Tensor::new(dims, out)
    }

    /// Splits along `axis` into chunks of the given extents (inverse of
    /// [`Tensor::concat`]).
    pub fn split(&self, axis: usize, extents: &[usize]) -> Vec<Tensor> {
        let rank = self.shape.rank();
        assert!(axis < rank);
        assert_eq!(
            extents.iter().sum::<usize>(),
            self.shape.dim(axis),
            "split extents must sum to axis extent"
        );
        let lead: usize = self.shape.dims()[..axis].iter().product();
        let trail: usize = self.shape.dims()[axis + 1..].iter().product();
        let axis_total = self.shape.dim(axis);
        let mut outputs: Vec<Vec<f32>> = extents
            .iter()
            .map(|&e| Vec::with_capacity(lead * e * trail))
            .collect();
        let src = self.data();
        for l in 0..lead {
            let mut off = l * axis_total * trail;
            for (o, &e) in outputs.iter_mut().zip(extents.iter()) {
                o.extend_from_slice(&src[off..off + e * trail]);
                off += e * trail;
            }
        }
        outputs
            .into_iter()
            .zip(extents.iter())
            .map(|(data, &e)| {
                let mut dims = self.shape.dims().to_vec();
                dims[axis] = e;
                Tensor::new(dims, data)
            })
            .collect()
    }

    /// Index of the maximum element along the last dim, per row.
    pub fn argmax_last(&self) -> Vec<usize> {
        let (_rows, cols) = self.shape.split_trailing(1);
        self.data
            .chunks_exact(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "data={:?})", self.data())
        } else {
            write!(
                f,
                "mean={:.4}, min={:.4}, max={:.4})",
                self.mean(),
                self.min(),
                self.max()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_data_len_panics() {
        Tensor::new([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::new([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::new([2, 2], vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b).to_vec(), vec![11., 22., 33., 44.]);
        assert_eq!(b.sub(&a).to_vec(), vec![9., 18., 27., 36.]);
        assert_eq!(a.mul(&b).to_vec(), vec![10., 40., 90., 160.]);
        assert_eq!(b.div(&a).to_vec(), vec![10., 10., 10., 10.]);
        assert_eq!(a.scale(2.0).to_vec(), vec![2., 4., 6., 8.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::new([4], vec![1., -2., 3., 6.]);
        assert_eq!(a.sum(), 8.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), -2.0);
    }

    #[test]
    fn transpose_last_2d() {
        let a = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose_last();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn transpose_last_batched() {
        let a = Tensor::new([2, 2, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let t = a.transpose_last();
        assert_eq!(t.to_vec(), vec![1., 3., 2., 4., 5., 7., 6., 8.]);
    }

    #[test]
    fn reshape_shares_data() {
        let a = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshape([3, 2]);
        assert_eq!(b.at(&[2, 1]), 6.0);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::new([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::new([2, 1], vec![9., 8.]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1., 2., 9., 3., 4., 8.]);
    }

    #[test]
    fn concat_axis0() {
        let a = Tensor::new([1, 2], vec![1., 2.]);
        let b = Tensor::new([2, 2], vec![3., 4., 5., 6.]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn split_inverts_concat() {
        let a = Tensor::new([2, 3], vec![1., 2., 9., 3., 4., 8.]);
        let parts = a.split(1, &[2, 1]);
        assert_eq!(parts[0].to_vec(), vec![1., 2., 3., 4.]);
        assert_eq!(parts[1].to_vec(), vec![9., 8.]);
    }

    #[test]
    fn argmax_last_rows() {
        let a = Tensor::new([2, 3], vec![0.1, 0.9, 0.2, 5.0, -1.0, 2.0]);
        assert_eq!(a.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn seeded_rand_is_deterministic() {
        let a = Tensor::rand_normal([32], 0.0, 1.0, 42);
        let b = Tensor::rand_normal([32], 0.0, 1.0, 42);
        let c = Tensor::rand_normal([32], 0.0, 1.0, 43);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_ne!(a.to_vec(), c.to_vec());
    }

    #[test]
    fn rand_normal_moments() {
        let a = Tensor::rand_normal([100_000], 0.0, 1.0, 7);
        assert!(a.mean().abs() < 0.02, "mean {}", a.mean());
        let var = a.map(|x| x * x).mean() - a.mean() * a.mean();
        assert!((var - 1.0).abs() < 0.03, "var {}", var);
    }

    #[test]
    fn copy_on_write_isolated() {
        let a = Tensor::zeros([4]);
        let mut b = a.clone();
        b.data_mut()[0] = 5.0;
        assert_eq!(a.data()[0], 0.0);
        assert_eq!(b.data()[0], 5.0);
    }
}
