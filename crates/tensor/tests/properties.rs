//! Property-based tests for tensor laws and kernel invariants.

use apf_tensor::kernels::conv::{col2im, im2col, ConvGeom};
use apf_tensor::prelude::*;
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reshape_preserves_data(dims in small_dims()) {
        let n: usize = dims.iter().product();
        let t = Tensor::rand_uniform(dims.clone(), -1.0, 1.0, 1);
        let r = t.reshape([n]);
        prop_assert_eq!(t.to_vec(), r.to_vec());
    }

    #[test]
    fn transpose_last_is_involution(b in 1usize..4, r in 1usize..6, c in 1usize..6) {
        let t = Tensor::rand_uniform([b, r, c], -1.0, 1.0, 2);
        let back = t.transpose_last().transpose_last();
        prop_assert_eq!(t.to_vec(), back.to_vec());
        prop_assert_eq!(t.dims(), back.dims());
    }

    #[test]
    fn add_commutes_mul_distributes(n in 1usize..32) {
        let a = Tensor::rand_uniform([n], -2.0, 2.0, 3);
        let b = Tensor::rand_uniform([n], -2.0, 2.0, 4);
        let c = Tensor::rand_uniform([n], -2.0, 2.0, 5);
        prop_assert_eq!(a.add(&b).to_vec(), b.add(&a).to_vec());
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        for (x, y) in lhs.to_vec().iter().zip(rhs.to_vec().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn split_concat_round_trip(lead in 1usize..4, e1 in 1usize..4, e2 in 1usize..4, trail in 1usize..4) {
        let t = Tensor::rand_uniform([lead, e1 + e2, trail], -1.0, 1.0, 6);
        let parts = t.split(1, &[e1, e2]);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 1);
        prop_assert_eq!(t.to_vec(), back.to_vec());
    }

    #[test]
    fn matmul_identity(n in 1usize..6, m in 1usize..6) {
        let a = Tensor::rand_uniform([m, n], -1.0, 1.0, 7);
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n { eye[i * n + i] = 1.0; }
        let id = Tensor::new([n, n], eye);
        let out = a.matmul(&id);
        for (x, y) in out.to_vec().iter().zip(a.to_vec().iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_associates_with_scalar(m in 1usize..5, k in 1usize..5, n in 1usize..5, s in -3.0f32..3.0) {
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, 8);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, 9);
        let lhs = a.scale(s).matmul(&b);
        let rhs = a.matmul(&b).scale(s);
        for (x, y) in lhs.to_vec().iter().zip(rhs.to_vec().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one(r in 1usize..6, c in 1usize..8) {
        let t = Tensor::rand_uniform([r, c], -5.0, 5.0, 10);
        let mut g = Graph::new();
        let x = g.constant(t);
        let y = g.softmax(x);
        let out = g.value(y);
        for row in out.data().chunks_exact(c) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn im2col_col2im_adjoint_property(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let g = ConvGeom { kernel: k, stride, pad };
        let ho = g.out_extent(h);
        let wo = g.out_extent(w);
        let x = Tensor::rand_uniform([c, h, w], -1.0, 1.0, 11);
        let y = Tensor::rand_uniform([c * k * k, ho * wo], -1.0, 1.0, 12);
        let mut cx = vec![0.0; c * k * k * ho * wo];
        im2col(x.data(), c, h, w, g, &mut cx);
        let lhs: f32 = cx.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut xy = vec![0.0; c * h * w];
        col2im(y.data(), c, h, w, g, &mut xy);
        let rhs: f32 = x.data().iter().zip(xy.iter()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn sum_axis_matches_full_sum(a in 1usize..4, b in 1usize..4, c in 1usize..4, axis in 0usize..3) {
        let t = Tensor::rand_uniform([a, b, c], -1.0, 1.0, 13);
        let mut g = Graph::new();
        let x = g.constant(t.clone());
        let y = g.sum_axis(x, axis);
        prop_assert!((g.value(y).sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_output_is_normalized(r in 1usize..5, d in 4usize..16) {
        let t = Tensor::rand_uniform([r, d], -3.0, 3.0, 14);
        let mut g = Graph::new();
        let x = g.constant(t);
        let gamma = g.constant(Tensor::ones([d]));
        let beta = g.constant(Tensor::zeros([d]));
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        for row in g.value(y).data().chunks_exact(d) {
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            prop_assert!(mean.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 1e-2);
        }
    }
}

#[test]
fn broadcast_panics_on_non_suffix() {
    let result = std::panic::catch_unwind(|| {
        let mut g = Graph::new();
        let a = g.constant(Tensor::zeros([2, 3]));
        let b = g.constant(Tensor::zeros([2]));
        g.badd(a, b);
    });
    assert!(result.is_err());
}
