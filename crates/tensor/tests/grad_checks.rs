//! Finite-difference verification of every autograd op's backward rule.

use std::sync::Arc;

use apf_tensor::gradcheck::{check_gradient, Tolerance};
use apf_tensor::prelude::*;

fn tol() -> Tolerance {
    Tolerance::default()
}

#[test]
fn grad_add() {
    let x = Tensor::rand_uniform([2, 3], -1.0, 1.0, 1);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([2, 3], -1.0, 1.0, 2));
        let y = g.add(a, b);
        let l = g.mean_all(y);
        (a, l)
    });
}

#[test]
fn grad_sub_rhs() {
    let x = Tensor::rand_uniform([2, 3], -1.0, 1.0, 3);
    check_gradient(&x, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([2, 3], -1.0, 1.0, 4));
        let b = g.leaf(t);
        let y = g.sub(a, b);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (b, l)
    });
}

#[test]
fn grad_mul_both_sides() {
    let x = Tensor::rand_uniform([4], -1.0, 1.0, 5);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.mul(a, a); // tests accumulation of two contributions
        let l = g.sum_all(y);
        (a, l)
    });
}

#[test]
fn grad_div() {
    let x = Tensor::rand_uniform([4], 0.5, 2.0, 6);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([4], 1.0, 3.0, 7));
        let y = g.div(a, b);
        let l = g.sum_all(y);
        (a, l)
    });
    // denominator side
    check_gradient(&x, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([4], 1.0, 3.0, 8));
        let b = g.leaf(t);
        let y = g.div(a, b);
        let l = g.sum_all(y);
        (b, l)
    });
}

#[test]
fn grad_badd_bias() {
    // bias of shape [3] broadcast over [2, 4, 3]
    let x = Tensor::rand_uniform([3], -1.0, 1.0, 9);
    check_gradient(&x, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([2, 4, 3], -1.0, 1.0, 10));
        let b = g.leaf(t);
        let y = g.badd(a, b);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (b, l)
    });
}

#[test]
fn grad_badd_positional_embedding() {
    // [4, 3] broadcast over batch dim of [2, 4, 3]
    let x = Tensor::rand_uniform([4, 3], -1.0, 1.0, 11);
    check_gradient(&x, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([2, 4, 3], -1.0, 1.0, 12));
        let b = g.leaf(t);
        let y = g.badd(a, b);
        let l = g.mean_all(y);
        (b, l)
    });
}

#[test]
fn grad_bmul_both() {
    let x = Tensor::rand_uniform([2, 2, 3], -1.0, 1.0, 13);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([3], 0.5, 1.5, 14));
        let y = g.bmul(a, b);
        let l = g.sum_all(y);
        (a, l)
    });
    let s = Tensor::rand_uniform([3], 0.5, 1.5, 15);
    check_gradient(&s, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([2, 2, 3], -1.0, 1.0, 16));
        let b = g.leaf(t);
        let y = g.bmul(a, b);
        let l = g.sum_all(y);
        (b, l)
    });
}

#[test]
fn grad_scale_add_scalar() {
    let x = Tensor::rand_uniform([5], -1.0, 1.0, 17);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.scale(a, -2.5);
        let y = g.add_scalar(y, 3.0);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
}

#[test]
fn grad_activations() {
    // Offset away from relu's kink at 0 for stable finite differences.
    let x = Tensor::rand_uniform([6], 0.1, 1.0, 18);
    for act in 0..5 {
        check_gradient(&x, tol(), |g, t| {
            let a = g.leaf(t);
            let y = match act {
                0 => g.relu(a),
                1 => g.gelu(a),
                2 => g.sigmoid(a),
                3 => g.tanh(a),
                _ => g.exp(a),
            };
            let l = g.sum_all(y);
            (a, l)
        });
    }
}

#[test]
fn grad_log() {
    let x = Tensor::rand_uniform([6], 0.5, 2.0, 19);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.log(a);
        let l = g.sum_all(y);
        (a, l)
    });
}

#[test]
fn grad_matmul_2d_lhs_rhs() {
    let x = Tensor::rand_uniform([3, 4], -1.0, 1.0, 20);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([4, 2], -1.0, 1.0, 21));
        let y = g.matmul(a, b);
        let l = g.mean_all(y);
        (a, l)
    });
    let w = Tensor::rand_uniform([4, 2], -1.0, 1.0, 22);
    check_gradient(&w, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([3, 4], -1.0, 1.0, 23));
        let b = g.leaf(t);
        let y = g.matmul(a, b);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (b, l)
    });
}

#[test]
fn grad_matmul_batched_shared_rhs() {
    let w = Tensor::rand_uniform([3, 2], -1.0, 1.0, 24);
    check_gradient(&w, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([2, 4, 3], -1.0, 1.0, 25));
        let b = g.leaf(t);
        let y = g.matmul(a, b);
        let l = g.mean_all(y);
        (b, l)
    });
}

#[test]
fn grad_matmul_batched_pairwise() {
    let x = Tensor::rand_uniform([2, 2, 3], -1.0, 1.0, 26);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([2, 3, 2], -1.0, 1.0, 27));
        let y = g.matmul(a, b);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
}

#[test]
fn grad_transpose_reshape() {
    let x = Tensor::rand_uniform([2, 3, 4], -1.0, 1.0, 28);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.transpose_last(a);
        let y = g.reshape(y, [6, 4]);
        let w = g.constant(Tensor::rand_uniform([4, 1], -1.0, 1.0, 29));
        let y = g.matmul(y, w);
        let l = g.sum_all(y);
        (a, l)
    });
}

#[test]
fn grad_softmax() {
    let x = Tensor::rand_uniform([3, 5], -2.0, 2.0, 30);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.softmax(a);
        let w = g.constant(Tensor::rand_uniform([3, 5], -1.0, 1.0, 31));
        let y = g.mul(y, w);
        let l = g.sum_all(y);
        (a, l)
    });
}

#[test]
fn grad_layer_norm_all_inputs() {
    let x = Tensor::rand_uniform([3, 6], -1.0, 1.0, 32);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let gamma = g.constant(Tensor::rand_uniform([6], 0.5, 1.5, 33));
        let beta = g.constant(Tensor::rand_uniform([6], -0.5, 0.5, 34));
        let y = g.layer_norm(a, gamma, beta, 1e-5);
        let w = g.constant(Tensor::rand_uniform([3, 6], -1.0, 1.0, 35));
        let y = g.mul(y, w);
        let l = g.sum_all(y);
        (a, l)
    });
    let gm = Tensor::rand_uniform([6], 0.5, 1.5, 36);
    check_gradient(&gm, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([3, 6], -1.0, 1.0, 37));
        let gamma = g.leaf(t);
        let beta = g.constant(Tensor::rand_uniform([6], -0.5, 0.5, 38));
        let y = g.layer_norm(a, gamma, beta, 1e-5);
        let l = g.sum_all(y);
        (gamma, l)
    });
    let bt = Tensor::rand_uniform([6], -0.5, 0.5, 39);
    check_gradient(&bt, tol(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([3, 6], -1.0, 1.0, 40));
        let gamma = g.constant(Tensor::rand_uniform([6], 0.5, 1.5, 41));
        let beta = g.leaf(t);
        let y = g.layer_norm(a, gamma, beta, 1e-5);
        let w = g.constant(Tensor::rand_uniform([3, 6], -1.0, 1.0, 42));
        let y = g.mul(y, w);
        let l = g.sum_all(y);
        (beta, l)
    });
}

#[test]
fn grad_batch_norm2d() {
    let x = Tensor::rand_uniform([2, 3, 4, 4], -1.0, 1.0, 43);
    check_gradient(&x, Tolerance { rel: 5e-2, abs: 5e-3 }, |g, t| {
        let a = g.leaf(t);
        let gamma = g.constant(Tensor::rand_uniform([3], 0.5, 1.5, 44));
        let beta = g.constant(Tensor::rand_uniform([3], -0.5, 0.5, 45));
        let y = g.batch_norm2d(a, gamma, beta, 1e-5);
        let w = g.constant(Tensor::rand_uniform([2, 3, 4, 4], -1.0, 1.0, 46));
        let y = g.mul(y, w);
        let l = g.sum_all(y);
        (a, l)
    });
}

#[test]
fn grad_reductions() {
    let x = Tensor::rand_uniform([2, 3, 4], -1.0, 1.0, 47);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.sum_axis(a, 1);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (a, l)
    });
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.mean_axis(a, 0);
        let l = g.sum_all(y);
        (a, l)
    });
}

#[test]
fn grad_gather_rows() {
    let x = Tensor::rand_uniform([4, 3], -1.0, 1.0, 48);
    let idx = Arc::new(vec![2u32, 0, 2, 3]); // repeated row tests scatter-add
    check_gradient(&x, tol(), move |g, t| {
        let a = g.leaf(t);
        let y = g.gather_rows(a, idx.clone(), [4, 3]);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
}

#[test]
fn grad_concat() {
    let x = Tensor::rand_uniform([2, 3], -1.0, 1.0, 49);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([2, 2], -1.0, 1.0, 50));
        let y = g.concat(&[a, b], 1);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
}

#[test]
fn grad_conv2d_all_inputs() {
    let geom = ConvGeom { kernel: 3, stride: 1, pad: 1 };
    let x = Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, 51);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let w = g.constant(Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, 52));
        let b = g.constant(Tensor::rand_uniform([3], -0.1, 0.1, 53));
        let y = g.conv2d(a, w, b, geom);
        let l = g.mean_all(y);
        (a, l)
    });
    let wt = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, 54);
    check_gradient(&wt, tol(), |g, t| {
        let x = g.constant(Tensor::rand_uniform([2, 2, 4, 4], -1.0, 1.0, 55));
        let w = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([3], -0.1, 0.1, 56));
        let y = g.conv2d(x, w, b, geom);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (w, l)
    });
    let bias = Tensor::rand_uniform([3], -0.1, 0.1, 57);
    check_gradient(&bias, tol(), |g, t| {
        let x = g.constant(Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, 58));
        let w = g.constant(Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, 59));
        let b = g.leaf(t);
        let y = g.conv2d(x, w, b, geom);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (b, l)
    });
}

/// Gradcheck for the conv fast path at a shape large enough to clear the
/// packed-SGEMM dispatch floor with `cout < 4` — this exercises the
/// transposed im2col lowering (`out^T = col^T . W^T`) rather than the
/// small-problem `gemm` fallback the shapes above take.
#[test]
fn grad_conv2d_fast_path_small_cout() {
    let geom = ConvGeom { kernel: 3, stride: 1, pad: 1 };
    // m=2 (cout), k=27, n=256: 2*27*256 = 13824 >= PACK_FLOPS, m < 4.
    let wt = Tensor::rand_uniform([2, 3, 3, 3], -0.5, 0.5, 151);
    check_gradient(&wt, tol(), |g, t| {
        let x = g.constant(Tensor::rand_uniform([1, 3, 16, 16], -1.0, 1.0, 152));
        let w = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([2], -0.1, 0.1, 153));
        let y = g.conv2d(x, w, b, geom);
        let l = g.mean_all(y);
        (w, l)
    });
    let x = Tensor::rand_uniform([1, 3, 16, 16], -1.0, 1.0, 154);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let w = g.constant(Tensor::rand_uniform([2, 3, 3, 3], -0.5, 0.5, 155));
        let b = g.constant(Tensor::rand_uniform([2], -0.1, 0.1, 156));
        let y = g.conv2d(a, w, b, geom);
        let l = g.mean_all(y);
        (a, l)
    });
}

#[test]
fn grad_conv_transpose2d() {
    let geom = ConvGeom { kernel: 2, stride: 2, pad: 0 };
    let x = Tensor::rand_uniform([1, 2, 3, 3], -1.0, 1.0, 60);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let w = g.constant(Tensor::rand_uniform([2, 3, 2, 2], -0.5, 0.5, 61));
        let b = g.constant(Tensor::rand_uniform([3], -0.1, 0.1, 62));
        let y = g.conv_transpose2d(a, w, b, geom);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (a, l)
    });
    let wt = Tensor::rand_uniform([2, 3, 2, 2], -0.5, 0.5, 63);
    check_gradient(&wt, tol(), |g, t| {
        let x = g.constant(Tensor::rand_uniform([1, 2, 3, 3], -1.0, 1.0, 64));
        let w = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([3], -0.1, 0.1, 65));
        let y = g.conv_transpose2d(x, w, b, geom);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (w, l)
    });
}

#[test]
fn grad_pools() {
    // Max-pool: perturbations must not flip the argmax, so spread values.
    let x = Tensor::new(
        [1, 1, 4, 4],
        (0..16).map(|i| i as f32 * 0.5).collect::<Vec<_>>(),
    );
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.maxpool2d(a, 2);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
    let x2 = Tensor::rand_uniform([2, 2, 4, 4], -1.0, 1.0, 66);
    check_gradient(&x2, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.avgpool2d(a, 2);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
}

#[test]
fn grad_bce_with_logits() {
    let x = Tensor::rand_uniform([3, 4], -2.0, 2.0, 67);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.constant(Tensor::rand_uniform([3, 4], 0.0, 1.0, 68).map(f32::round));
        let l = g.bce_with_logits(a, y);
        (a, l)
    });
}

#[test]
fn grad_softmax_cross_entropy() {
    let x = Tensor::rand_uniform([4, 5], -2.0, 2.0, 69);
    let targets = Arc::new(vec![0u32, 3, 2, 4]);
    check_gradient(&x, tol(), move |g, t| {
        let a = g.leaf(t);
        let l = g.softmax_cross_entropy(a, targets.clone());
        (a, l)
    });
}

#[test]
fn grad_dropout_through_mask() {
    // Same seed -> same mask in every graph construction, so finite
    // differences see a fixed linear map.
    let x = Tensor::rand_uniform([8], -1.0, 1.0, 70);
    check_gradient(&x, tol(), |g, t| {
        let a = g.leaf(t);
        let y = g.dropout(a, 0.5, 1234);
        let sq = g.mul(y, y);
        let l = g.sum_all(sq);
        (a, l)
    });
}

#[test]
fn grad_attention_block_end_to_end() {
    // A miniature single-head attention: checks composition of matmul,
    // transpose, scale, softmax.
    let x = Tensor::rand_uniform([2, 3, 4], -0.5, 0.5, 71);
    check_gradient(&x, Tolerance { rel: 3e-2, abs: 3e-3 }, |g, t| {
        let xin = g.leaf(t);
        let wq = g.constant(Tensor::rand_uniform([4, 4], -0.5, 0.5, 72));
        let wk = g.constant(Tensor::rand_uniform([4, 4], -0.5, 0.5, 73));
        let wv = g.constant(Tensor::rand_uniform([4, 4], -0.5, 0.5, 74));
        let q = g.matmul(xin, wq);
        let k = g.matmul(xin, wk);
        let v = g.matmul(xin, wv);
        let kt = g.transpose_last(k);
        let scores = g.matmul(q, kt);
        let scores = g.scale(scores, 0.5);
        let attn = g.softmax(scores);
        let out = g.matmul(attn, v);
        let sq = g.mul(out, out);
        let l = g.mean_all(sq);
        (xin, l)
    });
}

#[test]
fn backward_skips_non_differentiable_subgraphs() {
    let mut g = Graph::new();
    let a = g.constant(Tensor::rand_uniform([4], -1.0, 1.0, 75));
    let b = g.constant(Tensor::rand_uniform([4], -1.0, 1.0, 76));
    let c = g.add(a, b);
    let l = g.sum_all(c);
    g.backward(l);
    assert!(g.grad(a).is_none());
    assert!(g.grad(b).is_none());
}

#[test]
fn gradient_accumulates_across_multiple_uses() {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::new([2], vec![3.0, 4.0]));
    let y1 = g.scale(x, 2.0);
    let y2 = g.scale(x, 5.0);
    let s = g.add(y1, y2);
    let l = g.sum_all(s);
    g.backward(l);
    assert_eq!(g.grad(x).unwrap().to_vec(), vec![7.0, 7.0]);
}

// --------------------------------------------------------- fused fast ops

/// Shared builder for the fused-attention gradchecks: `which` selects the
/// differentiated input (0 = q, 1 = k, 2 = v); the others are constants.
/// Tiny tiles (4) against L = 7 force ragged multi-tile traversals.
fn check_fused_attention_grad(
    which: usize,
    lq: usize,
    lk: usize,
    key_bias: Option<Arc<Vec<f32>>>,
    seed: u64,
) {
    let (bh, dh) = (2usize, 3usize);
    let shape_q = [bh, lq, dh];
    let shape_kv = [bh, lk, dh];
    let x = if which == 0 {
        Tensor::rand_uniform(shape_q, -1.0, 1.0, seed)
    } else {
        Tensor::rand_uniform(shape_kv, -1.0, 1.0, seed)
    };
    check_gradient(&x, Tolerance::default(), move |g, t| {
        let mut mk = |idx: usize, s: u64, shape: [usize; 3]| {
            if idx == which {
                g.leaf(t.clone())
            } else {
                g.constant(Tensor::rand_uniform(shape, -1.0, 1.0, s))
            }
        };
        let q = mk(0, seed ^ 101, shape_q);
        let k = mk(1, seed ^ 102, shape_kv);
        let v = mk(2, seed ^ 103, shape_kv);
        let leaf = [q, k, v][which];
        let out = g.fused_attention_tiled(q, k, v, 0.6, key_bias.clone(), 4, 4);
        let sq = g.mul(out, out);
        let l = g.mean_all(sq);
        (leaf, l)
    });
}

#[test]
fn grad_fused_attention_q() {
    check_fused_attention_grad(0, 7, 7, None, 81);
}

#[test]
fn grad_fused_attention_k() {
    check_fused_attention_grad(1, 7, 7, None, 82);
}

#[test]
fn grad_fused_attention_v() {
    check_fused_attention_grad(2, 7, 7, None, 83);
}

#[test]
fn grad_fused_attention_with_key_mask() {
    // The serving/padded path: -1e9 bias on some keys (never key 0).
    let (bh, lk) = (2usize, 7usize);
    let mut bias = vec![0.0f32; bh * lk];
    for (i, b) in bias.iter_mut().enumerate() {
        if i % lk != 0 && i % 3 == 0 {
            *b = -1e9;
        }
    }
    let bias = Arc::new(bias);
    for which in 0..3 {
        check_fused_attention_grad(which, 7, 7, Some(bias.clone()), 84 + which as u64);
    }
}

#[test]
fn grad_fused_attention_short_query_prefix() {
    // Fewer queries than keys — the shape class the incremental
    // `forward_prefix` serving path produces (suffix queries over the full
    // key set).
    for which in 0..3 {
        check_fused_attention_grad(which, 3, 9, None, 90 + which as u64);
    }
}

#[test]
fn grad_bias_gelu_x() {
    let x = Tensor::rand_uniform([2, 4, 3], -2.0, 2.0, 95);
    check_gradient(&x, Tolerance::default(), |g, t| {
        let a = g.leaf(t);
        let b = g.constant(Tensor::rand_uniform([3], -1.0, 1.0, 96));
        let y = g.bias_gelu(a, b);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (a, l)
    });
}

#[test]
fn grad_bias_gelu_bias() {
    let x = Tensor::rand_uniform([3], -1.0, 1.0, 97);
    check_gradient(&x, Tolerance::default(), |g, t| {
        let a = g.constant(Tensor::rand_uniform([2, 4, 3], -2.0, 2.0, 98));
        let b = g.leaf(t);
        let y = g.bias_gelu(a, b);
        let sq = g.mul(y, y);
        let l = g.mean_all(sq);
        (b, l)
    });
}
