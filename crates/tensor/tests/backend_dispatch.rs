//! Dispatch-layer tests for the SIMD micro-kernel backends: detection
//! order, override precedence, typed errors for impossible requests, and
//! telemetry visibility of the selected backend.
//!
//! The pure tests drive [`resolve`]/[`best_for`] with synthetic
//! [`CpuFeatures`], so every ordering rule is checked on every host
//! regardless of what the build machine supports. Process-global state
//! (forced backend, forced kernel mode, the global telemetry registry) is
//! only touched inside the single `global_state_precedence_and_telemetry`
//! test so the pure tests can run concurrently with it.

use apf_tensor::kernels::backend::{
    best_for, force_backend, kernel_backend, resolve, BackendError, BackendKind, CpuFeatures,
};
use apf_tensor::kernels::gemm::{gemm, gemm_naive, gemm_packed};
use apf_tensor::kernels::{force_kernel_mode, KernelMode};
use apf_tensor::prelude::*;
use apf_telemetry::Telemetry;

const ALL_NAMES: [&str; 4] = ["avx2", "sse2", "neon", "scalar"];

#[test]
fn detection_order_prefers_widest_vector_unit() {
    // x86 ladder: avx2 beats sse2 beats scalar.
    let avx2 = CpuFeatures { avx2: true, sse2: true, neon: false };
    assert_eq!(best_for(avx2), BackendKind::Avx2);
    let sse2 = CpuFeatures { avx2: false, sse2: true, neon: false };
    assert_eq!(best_for(sse2), BackendKind::Sse2);
    // aarch64 ladder: neon beats scalar.
    let neon = CpuFeatures { avx2: false, sse2: false, neon: true };
    assert_eq!(best_for(neon), BackendKind::Neon);
    // No SIMD at all: the universal floor.
    assert_eq!(best_for(CpuFeatures::default()), BackendKind::Scalar);
}

#[test]
fn backend_names_parse_case_insensitively() {
    for (name, kind) in ALL_NAMES.iter().zip(BackendKind::ALL) {
        assert_eq!(BackendKind::parse(name).unwrap(), kind);
        assert_eq!(BackendKind::parse(&name.to_uppercase()).unwrap(), kind);
        assert_eq!(BackendKind::parse(&format!("  {} ", name)).unwrap(), kind);
        assert_eq!(name.parse::<BackendKind>().unwrap(), kind);
    }
}

#[test]
fn unknown_backend_name_is_a_typed_error_not_a_fallback() {
    let err = BackendKind::parse("avx512").unwrap_err();
    let BackendError::UnknownBackend { ref name } = err else {
        panic!("expected UnknownBackend, got {:?}", err);
    };
    assert_eq!(name, "avx512");
    // The message must list the valid spellings so the error is actionable.
    let msg = err.to_string();
    for valid in ALL_NAMES {
        assert!(msg.contains(valid), "error message {:?} must list {:?}", msg, valid);
    }

    // resolve() with an unknown env override must surface the error, never
    // silently fall back to detection.
    let feats = CpuFeatures { avx2: true, sse2: true, neon: false };
    let err = resolve(None, Some("fastest"), feats).unwrap_err();
    assert!(matches!(err, BackendError::UnknownBackend { .. }));
}

#[test]
fn resolve_precedence_is_force_then_env_then_detection() {
    let feats = CpuFeatures { avx2: true, sse2: true, neon: false };
    // No overrides: detection wins.
    assert_eq!(resolve(None, None, feats).unwrap(), BackendKind::Avx2);
    // Env override beats detection.
    assert_eq!(resolve(None, Some("sse2"), feats).unwrap(), BackendKind::Sse2);
    // Programmatic force beats the env override.
    assert_eq!(
        resolve(Some(BackendKind::Scalar), Some("sse2"), feats).unwrap(),
        BackendKind::Scalar
    );
    // Empty / whitespace-only env values are treated as unset.
    assert_eq!(resolve(None, Some(""), feats).unwrap(), BackendKind::Avx2);
    assert_eq!(resolve(None, Some("   "), feats).unwrap(), BackendKind::Avx2);
}

#[test]
fn unavailable_backend_is_a_typed_error() {
    // A backend the CPU lacks: compiled on this arch (or not), but the
    // synthetic feature set can never satisfy avx2 here.
    let no_simd = CpuFeatures::default();
    let err = resolve(Some(BackendKind::Avx2), None, no_simd).unwrap_err();
    assert!(matches!(err, BackendError::Unavailable { kind: BackendKind::Avx2, .. }));

    // At least one of the four kinds is never compiled for the current
    // architecture (neon on x86-64, the x86 pair on aarch64); forcing it
    // must fail with the typed error even if features claim support.
    let not_compiled = BackendKind::ALL
        .into_iter()
        .find(|k| !k.compiled())
        .expect("no architecture compiles all four backends");
    let generous = CpuFeatures { avx2: true, sse2: true, neon: true };
    let err = resolve(Some(not_compiled), None, generous).unwrap_err();
    assert!(matches!(err, BackendError::Unavailable { .. }));
    assert!(err.to_string().contains("not compiled"));
}

#[test]
fn scalar_backend_is_always_compiled_and_detected() {
    assert!(BackendKind::Scalar.compiled());
    assert!(BackendKind::Scalar.available());
    let detected = BackendKind::detected();
    assert!(!detected.is_empty());
    assert_eq!(*detected.last().unwrap(), BackendKind::Scalar, "scalar is the floor");
    // Detected list is best-first: its head is what detection alone picks.
    assert_eq!(detected[0], best_for(CpuFeatures::detect()));
    // Every detected backend hands out a usable instance.
    for kind in detected {
        let bk = kind.instance().expect("detected backend must instantiate");
        assert_eq!(bk.kind(), kind);
    }
}

/// Sum of the per-backend dispatch counters in a snapshot.
fn total_dispatches(tel: &Telemetry) -> u64 {
    tel.snapshot()
        .metrics
        .iter()
        .filter(|m| m.name == "apf_tensor_backend_dispatch_total")
        .map(|m| m.value as u64)
        .sum()
}

/// Dispatch count for one backend label.
fn dispatches_for(tel: &Telemetry, kind: BackendKind) -> u64 {
    tel.snapshot()
        .get("apf_tensor_backend_dispatch_total", &[("backend", kind.name())])
        .map_or(0, |m| m.value as u64)
}

/// Active-selection gauge for one backend label.
fn active_gauge(tel: &Telemetry, kind: BackendKind) -> Option<f64> {
    tel.snapshot()
        .get("apf_tensor_backend_active", &[("backend", kind.name())])
        .map(|m| m.value)
}

/// All process-global interactions in one sequential test: forced backend
/// visible in `kernel_backend()` and the telemetry counters, and the
/// mode-vs-backend precedence (naive mode never enters the backend layer).
#[test]
fn global_state_precedence_and_telemetry() {
    // First install wins; if another test binary's process installed one
    // already this is still our handle because tests share the process.
    Telemetry::install_global(Telemetry::enabled());
    let tel = Telemetry::global().expect("global telemetry just installed");

    let m = 16;
    let k = 64;
    let n = 16; // 16*64*16 = 16384 >= PACK_FLOPS, m >= 4: gemm() goes packed
    let a = Tensor::rand_uniform([m, k], -1.0, 1.0, 7).to_vec();
    let b = Tensor::rand_uniform([k, n], -1.0, 1.0, 8).to_vec();
    let mut c = vec![0.0f32; m * n];

    // 1. Forcing scalar routes dispatches to the scalar series.
    force_backend(Some(BackendKind::Scalar)).unwrap();
    assert_eq!(kernel_backend().unwrap(), BackendKind::Scalar);
    let before = dispatches_for(tel, BackendKind::Scalar);
    gemm_packed(&a, &b, &mut c, m, k, n);
    assert!(dispatches_for(tel, BackendKind::Scalar) > before);
    assert_eq!(active_gauge(tel, BackendKind::Scalar), Some(1.0));

    // 2. Forcing the best-detected backend moves the counters and flips
    //    the selection gauges.
    let best = BackendKind::detected()[0];
    force_backend(Some(best)).unwrap();
    assert_eq!(kernel_backend().unwrap(), best);
    let before = dispatches_for(tel, best);
    gemm_packed(&a, &b, &mut c, m, k, n);
    assert!(dispatches_for(tel, best) > before);
    assert_eq!(active_gauge(tel, best), Some(1.0));
    if best != BackendKind::Scalar {
        assert_eq!(active_gauge(tel, BackendKind::Scalar), Some(0.0));
    }

    // 3. Forcing an impossible backend is rejected up front and leaves the
    //    previous selection in place.
    let not_compiled = BackendKind::ALL.into_iter().find(|kd| !kd.compiled()).unwrap();
    assert!(force_backend(Some(not_compiled)).is_err());
    assert_eq!(kernel_backend().unwrap(), best);

    // 4. Mode beats backend: in naive kernel mode the dispatcher takes
    //    gemm_naive and the backend layer is never consulted.
    force_kernel_mode(Some(KernelMode::Naive));
    let backend_before = total_dispatches(tel);
    let naive_before = tel
        .snapshot()
        .get("apf_tensor_gemm_naive_total", &[])
        .map_or(0, |ms| ms.value as u64);
    gemm(&a, &b, &mut c, m, k, n);
    let naive_after = tel
        .snapshot()
        .get("apf_tensor_gemm_naive_total", &[])
        .map_or(0, |ms| ms.value as u64);
    assert!(naive_after > naive_before, "naive mode must dispatch gemm_naive");
    assert_eq!(
        total_dispatches(tel),
        backend_before,
        "naive mode must never enter the SIMD backend layer"
    );

    // 5. Back to fast mode: the same shape goes packed again.
    force_kernel_mode(None);
    let backend_before = total_dispatches(tel);
    gemm(&a, &b, &mut c, m, k, n);
    assert!(total_dispatches(tel) > backend_before);

    // Sanity: forced-backend results agree with the reference.
    let mut reference = vec![0.0f32; m * n];
    gemm_naive(&a, &b, &mut reference, m, k, n);
    for (i, (&f, &r)) in c.iter().zip(reference.iter()).enumerate() {
        assert!((f - r).abs() <= 1e-4, "elem {}: {} vs {}", i, f, r);
    }

    force_backend(None).unwrap();
}
