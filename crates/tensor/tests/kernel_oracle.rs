//! Differential kernel-oracle suite: every fast-path kernel is checked
//! against its naive reference over ragged shapes and adversarial values.
//!
//! # Error-bound policy
//!
//! - **SGEMM** (`gemm_packed` vs `gemm_naive`): blocking reassociates the
//!   k-reduction, so results may differ by rounding. The bound is
//!   per-element: `|fast - naive| <= REL_TOL * absprod + ABS_TOL`, where
//!   `absprod = |A| . |B|` (the same contraction over absolute values) is
//!   the natural magnitude scale of the dot product. With f32 and k <= 1024
//!   the reassociation error is far below `REL_TOL = 1e-5`.
//! - **Fused attention** vs the materialized reference: online softmax
//!   reassociates both the max/denominator scan and the value accumulation;
//!   outputs are convex combinations of `v` rows, so an absolute tolerance
//!   of `1e-5` at unit-scale inputs is ample.
//! - **Fused bias+GELU and layernorm** fuse traversals, not arithmetic:
//!   the oracle demands **bit-identical** outputs.
//! - Non-finite values must never be silently laundered: wherever the naive
//!   kernel produces NaN/inf, the fast kernel must produce a non-finite
//!   value too (and vice versa).

use apf_tensor::kernels::attention::{attention_naive, fused_attention_forward};
use apf_tensor::kernels::fused::{
    bias_gelu_forward, gelu_fwd, layernorm_forward, layernorm_naive,
};
use apf_tensor::kernels::gemm::{gemm, gemm_naive, gemm_packed};
use apf_tensor::prelude::*;
use proptest::prelude::*;

const REL_TOL: f32 = 1e-5;
const ABS_TOL: f32 = 1e-5;

/// Sprinkles "hard" values (signed zeros and denormals) into `data` at
/// seed-determined positions, replacing roughly one element in eight.
fn inject_specials(data: &mut [f32], seed: u64) {
    const SPECIALS: [f32; 4] = [0.0, -0.0, 1.0e-41, -1.0e-41];
    let mut state = seed | 1;
    for v in data.iter_mut() {
        // xorshift64 keeps the injection independent of the data values.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if state.is_multiple_of(8) {
            *v = SPECIALS[(state >> 8) as usize % SPECIALS.len()];
        }
    }
}

/// Asserts `fast` within the SGEMM error bound of `naive`, with non-finite
/// positions required to agree in kind.
fn assert_gemm_close(fast: &[f32], naive: &[f32], absprod: &[f32]) {
    assert_eq!(fast.len(), naive.len());
    for (i, ((&f, &n), &ap)) in fast.iter().zip(naive.iter()).zip(absprod.iter()).enumerate() {
        if !n.is_finite() || !f.is_finite() {
            assert!(
                !n.is_finite() && !f.is_finite(),
                "elem {}: finiteness mismatch (fast {}, naive {})",
                i,
                f,
                n
            );
            continue;
        }
        let tol = REL_TOL * ap + ABS_TOL;
        assert!(
            (f - n).abs() <= tol,
            "elem {}: fast {} vs naive {} (tol {})",
            i,
            f,
            n,
            tol
        );
    }
}

/// Runs both GEMM implementations on the same inputs and checks the bound.
fn check_gemm_pair(m: usize, k: usize, n: usize, seed: u64) {
    let mut a = Tensor::rand_uniform([m.max(1), k.max(1)], -2.0, 2.0, seed).to_vec();
    let mut b = Tensor::rand_uniform([k.max(1), n.max(1)], -2.0, 2.0, seed ^ 0x9e37).to_vec();
    a.truncate(m * k);
    b.truncate(k * n);
    inject_specials(&mut a, seed ^ 0xabc);
    inject_specials(&mut b, seed ^ 0xdef);

    let mut fast = vec![f32::NAN; m * n]; // NaN prefill proves full overwrite
    let mut naive = vec![0.0f32; m * n];
    gemm_packed(&a, &b, &mut fast, m, k, n);
    gemm_naive(&a, &b, &mut naive, m, k, n);

    let abs_a: Vec<f32> = a.iter().map(|v| v.abs()).collect();
    let abs_b: Vec<f32> = b.iter().map(|v| v.abs()).collect();
    let mut absprod = vec![0.0f32; m * n];
    gemm_naive(&abs_a, &abs_b, &mut absprod, m, k, n);

    assert_gemm_close(&fast, &naive, &absprod);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_packed_matches_naive(m in 1usize..70, k in 1usize..70, n in 1usize..70, seed in 0u64..1_000_000) {
        check_gemm_pair(m, k, n, seed);
    }

    #[test]
    fn gemm_degenerate_dims(dim in prop_oneof![Just(1usize), Just(2usize)], which in 0usize..3, seed in 0u64..1_000_000) {
        // Pin one of m/k/n to 1 or 2 while the others stay ragged.
        let (mut m, mut k, mut n) = (17, 23, 19);
        match which { 0 => m = dim, 1 => k = dim, _ => n = dim }
        check_gemm_pair(m, k, n, seed);
    }

    #[test]
    fn attention_fused_matches_naive(
        bh in 1usize..4,
        lq in 1usize..24,
        lk in 1usize..24,
        dh in 1usize..9,
        q_tile in 1usize..8,
        k_tile in 1usize..8,
        masked in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1_000_000,
    ) {
        let q = Tensor::rand_uniform([bh, lq, dh], -1.5, 1.5, seed).to_vec();
        let k = Tensor::rand_uniform([bh, lk, dh], -1.5, 1.5, seed ^ 1).to_vec();
        let v = Tensor::rand_uniform([bh, lk, dh], -1.5, 1.5, seed ^ 2).to_vec();
        // Key bias: the padding mask as used by the transformer (-1e9 on
        // masked keys), never masking key 0 so every row has a survivor.
        let bias: Option<Vec<f32>> = if masked {
            let mut b = vec![0.0f32; bh * lk];
            let mut state = seed | 1;
            for (i, slot) in b.iter_mut().enumerate() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if i % lk != 0 && state % 3 == 0 {
                    *slot = -1e9;
                }
            }
            Some(b)
        } else {
            None
        };
        let scale = 1.0 / (dh as f32).sqrt();

        let mut fast = vec![f32::NAN; bh * lq * dh];
        let mut lse = vec![f32::NAN; bh * lq];
        fused_attention_forward(
            &q, &k, &v, bias.as_deref(), bh, lq, lk, dh, scale, q_tile, k_tile, &mut fast, &mut lse,
        );
        let mut naive = vec![0.0f32; bh * lq * dh];
        attention_naive(&q, &k, &v, bias.as_deref(), bh, lq, lk, dh, scale, &mut naive);

        for (i, (&f, &n)) in fast.iter().zip(naive.iter()).enumerate() {
            prop_assert!((f - n).abs() < 1e-5, "elem {}: fused {} vs naive {}", i, f, n);
        }
        prop_assert!(lse.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn bias_gelu_is_bit_identical_to_unfused(rows in 1usize..12, d in 1usize..24, seed in 0u64..1_000_000) {
        let mut x = Tensor::rand_uniform([rows, d], -4.0, 4.0, seed).to_vec();
        let mut b = Tensor::rand_uniform([d], -1.0, 1.0, seed ^ 7).to_vec();
        inject_specials(&mut x, seed ^ 0x11);
        inject_specials(&mut b, seed ^ 0x22);
        let mut fused = vec![0.0f32; rows * d];
        bias_gelu_forward(&x, &b, &mut fused);
        for (i, &f) in fused.iter().enumerate() {
            let reference = gelu_fwd(x[i] + b[i % d]);
            prop_assert_eq!(reference.to_bits(), f.to_bits(), "elem {}", i);
        }
    }

    #[test]
    fn layernorm_is_bit_identical_to_naive(rows in 1usize..12, d in 1usize..24, seed in 0u64..1_000_000) {
        let mut x = Tensor::rand_uniform([rows, d], -3.0, 3.0, seed).to_vec();
        inject_specials(&mut x, seed ^ 0x33);
        let gamma = Tensor::rand_uniform([d], 0.5, 1.5, seed ^ 8).to_vec();
        let beta = Tensor::rand_uniform([d], -0.5, 0.5, seed ^ 9).to_vec();
        let mut of = vec![0.0f32; rows * d];
        let mut mf = vec![0.0f32; rows];
        let mut sf = vec![0.0f32; rows];
        layernorm_forward(&x, &gamma, &beta, 1e-5, rows, d, &mut of, &mut mf, &mut sf);
        let mut on = vec![0.0f32; rows * d];
        let mut mn = vec![0.0f32; rows];
        let mut sn = vec![0.0f32; rows];
        layernorm_naive(&x, &gamma, &beta, 1e-5, rows, d, &mut on, &mut mn, &mut sn);
        prop_assert_eq!(
            of.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            on.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            mf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            mn.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            sn.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn gemm_zero_sized_dims_are_consistent() {
    // k == 0: both must zero the output (empty contraction).
    let mut fast = vec![f32::NAN; 6];
    let mut naive = vec![f32::NAN; 6];
    gemm_packed(&[], &[], &mut fast, 2, 0, 3);
    gemm_naive(&[], &[], &mut naive, 2, 0, 3);
    assert!(fast.iter().all(|&v| v == 0.0));
    assert!(naive.iter().all(|&v| v == 0.0));

    // m == 0 and n == 0: no output at all, must not panic.
    gemm_packed(&[], &[1.0, 2.0], &mut [], 0, 1, 2);
    gemm_naive(&[], &[1.0, 2.0], &mut [], 0, 1, 2);
    gemm_packed(&[1.0, 2.0], &[], &mut [], 2, 1, 0);
    gemm_naive(&[1.0, 2.0], &[], &mut [], 2, 1, 0);
}

#[test]
fn attention_zero_batch_is_a_no_op() {
    let mut out: Vec<f32> = vec![];
    let mut lse: Vec<f32> = vec![];
    fused_attention_forward(&[], &[], &[], None, 0, 3, 4, 2, 1.0, 4, 4, &mut out, &mut lse);
    attention_naive(&[], &[], &[], None, 0, 3, 4, 2, 1.0, &mut []);
}

/// Regression for the old `gemm_row` zero-skip branch: `if av == 0.0 {
/// continue }` silently turned `0.0 * NaN` and `0.0 * inf` into `0.0`.
/// Both kernels must propagate NaN through a zero row.
#[test]
fn zero_times_nonfinite_propagates_nan() {
    let m = 3;
    let k = 4;
    let n = 5;
    let a = vec![0.0f32; m * k]; // entire A is zeros
    let mut b = vec![1.0f32; k * n];
    b[0] = f32::NAN; // column 0 sees NaN
    b[1] = f32::INFINITY; // column 1 sees 0 * inf = NaN

    for run_fast in [false, true] {
        let mut c = vec![0.0f32; m * n];
        if run_fast {
            gemm_packed(&a, &b, &mut c, m, k, n);
        } else {
            gemm_naive(&a, &b, &mut c, m, k, n);
        }
        for row in 0..m {
            assert!(
                c[row * n].is_nan(),
                "0*NaN must stay NaN (fast={}, row {})",
                run_fast,
                row
            );
            assert!(
                c[row * n + 1].is_nan(),
                "0*inf must stay NaN (fast={}, row {})",
                run_fast,
                row
            );
            for col in 2..n {
                assert_eq!(c[row * n + col], 0.0, "finite columns stay exact");
            }
        }
    }

    // The public dispatcher must agree regardless of mode heuristics.
    let mut c = vec![0.0f32; m * n];
    gemm(&a, &b, &mut c, m, k, n);
    assert!(c[0].is_nan() && c[1].is_nan());
}

/// Attention must not launder NaN queries: a NaN in `q` poisons the whole
/// output row in both implementations.
#[test]
fn attention_propagates_nan_query() {
    let (bh, lq, lk, dh) = (1usize, 3usize, 5usize, 2usize);
    let mut q = Tensor::rand_uniform([bh, lq, dh], -1.0, 1.0, 77).to_vec();
    let k = Tensor::rand_uniform([bh, lk, dh], -1.0, 1.0, 78).to_vec();
    let v = Tensor::rand_uniform([bh, lk, dh], -1.0, 1.0, 79).to_vec();
    q[dh] = f32::NAN; // poison query row 1

    let mut fast = vec![0.0f32; bh * lq * dh];
    let mut lse = vec![0.0f32; bh * lq];
    fused_attention_forward(&q, &k, &v, None, bh, lq, lk, dh, 1.0, 2, 2, &mut fast, &mut lse);
    let mut naive = vec![0.0f32; bh * lq * dh];
    attention_naive(&q, &k, &v, None, bh, lq, lk, dh, 1.0, &mut naive);

    for i in 0..dh {
        assert!(fast[dh + i].is_nan(), "fused must propagate NaN, got {}", fast[dh + i]);
        assert!(naive[dh + i].is_nan(), "naive must propagate NaN, got {}", naive[dh + i]);
        // Rows 0 and 2 stay clean and must still match to tolerance.
        assert!((fast[i] - naive[i]).abs() < 1e-5);
        assert!((fast[2 * dh + i] - naive[2 * dh + i]).abs() < 1e-5);
    }
}
