//! Differential kernel-oracle suite: every fast-path kernel is checked
//! against its naive reference over ragged shapes and adversarial values,
//! and every property runs once per compiled-and-detected SIMD backend
//! via forced dispatch (the per-backend matrix at the bottom).
//!
//! # Error-bound policy
//!
//! - **SGEMM** (`gemm_packed` vs `gemm_naive`): blocking reassociates the
//!   k-reduction and FMA backends contract multiply+add, so results may
//!   differ by rounding. The bound is per-element: `|fast - naive| <=
//!   REL_TOL * absprod + ABS_TOL`, where `absprod = |A| . |B|` (the same
//!   contraction over absolute values) is the natural magnitude scale of
//!   the dot product. With f32 and k <= 1024 the reassociation + FMA
//!   error is far below `REL_TOL = 1e-5`.
//! - **Fused attention** vs the materialized reference: online softmax
//!   reassociates both the max/denominator scan and the value accumulation;
//!   outputs are convex combinations of `v` rows, so an absolute tolerance
//!   of `1e-5` at unit-scale inputs is ample.
//! - **im2col conv** vs the direct quadruple loop: same contraction-shaped
//!   bound as SGEMM, with the magnitude scale computed by running the
//!   direct conv over absolute values.
//! - **Fused bias+GELU and layernorm** fuse traversals, not arithmetic:
//!   the oracle demands **bit-identical** outputs on *every* backend (the
//!   trait contract forbids FMA in these loops).
//! - Non-finite values must never be silently laundered: wherever the naive
//!   kernel produces NaN/inf, the fast kernel must produce a non-finite
//!   value too (and vice versa).

use apf_tensor::kernels::attention::{attention_naive, fused_attention_forward};
use apf_tensor::kernels::backend::{force_backend, kernel_backend, BackendKind};
use apf_tensor::kernels::conv::{conv2d, conv2d_direct, ConvGeom};
use apf_tensor::kernels::fused::{
    bias_gelu_forward, gelu_fwd, layernorm_forward, layernorm_naive,
};
use apf_tensor::kernels::gemm::{gemm, gemm_naive, gemm_packed};
use apf_tensor::prelude::*;
use proptest::prelude::*;

const REL_TOL: f32 = 1e-5;
const ABS_TOL: f32 = 1e-5;

/// Sprinkles "hard" values (signed zeros and denormals) into `data` at
/// seed-determined positions, replacing roughly one element in eight.
fn inject_specials(data: &mut [f32], seed: u64) {
    const SPECIALS: [f32; 4] = [0.0, -0.0, 1.0e-41, -1.0e-41];
    let mut state = seed | 1;
    for v in data.iter_mut() {
        // xorshift64 keeps the injection independent of the data values.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if state.is_multiple_of(8) {
            *v = SPECIALS[(state >> 8) as usize % SPECIALS.len()];
        }
    }
}

/// Asserts `fast` within the SGEMM error bound of `naive`, with non-finite
/// positions required to agree in kind.
fn assert_gemm_close(fast: &[f32], naive: &[f32], absprod: &[f32]) {
    assert_eq!(fast.len(), naive.len());
    for (i, ((&f, &n), &ap)) in fast.iter().zip(naive.iter()).zip(absprod.iter()).enumerate() {
        if !n.is_finite() || !f.is_finite() {
            assert!(
                !n.is_finite() && !f.is_finite(),
                "elem {}: finiteness mismatch (fast {}, naive {})",
                i,
                f,
                n
            );
            continue;
        }
        let tol = REL_TOL * ap + ABS_TOL;
        assert!(
            (f - n).abs() <= tol,
            "elem {}: fast {} vs naive {} (tol {})",
            i,
            f,
            n,
            tol
        );
    }
}

/// Runs both GEMM implementations on the same inputs and checks the bound.
fn check_gemm_pair(m: usize, k: usize, n: usize, seed: u64) {
    let mut a = Tensor::rand_uniform([m.max(1), k.max(1)], -2.0, 2.0, seed).to_vec();
    let mut b = Tensor::rand_uniform([k.max(1), n.max(1)], -2.0, 2.0, seed ^ 0x9e37).to_vec();
    a.truncate(m * k);
    b.truncate(k * n);
    inject_specials(&mut a, seed ^ 0xabc);
    inject_specials(&mut b, seed ^ 0xdef);

    let mut fast = vec![f32::NAN; m * n]; // NaN prefill proves full overwrite
    let mut naive = vec![0.0f32; m * n];
    gemm_packed(&a, &b, &mut fast, m, k, n);
    gemm_naive(&a, &b, &mut naive, m, k, n);

    let abs_a: Vec<f32> = a.iter().map(|v| v.abs()).collect();
    let abs_b: Vec<f32> = b.iter().map(|v| v.abs()).collect();
    let mut absprod = vec![0.0f32; m * n];
    gemm_naive(&abs_a, &abs_b, &mut absprod, m, k, n);

    assert_gemm_close(&fast, &naive, &absprod);
}

/// Runs fused vs materialized attention and checks the 1e-5 bound.
#[allow(clippy::too_many_arguments)]
fn check_attention_pair(
    bh: usize,
    lq: usize,
    lk: usize,
    dh: usize,
    q_tile: usize,
    k_tile: usize,
    masked: bool,
    seed: u64,
) {
    let q = Tensor::rand_uniform([bh, lq, dh], -1.5, 1.5, seed).to_vec();
    let k = Tensor::rand_uniform([bh, lk, dh], -1.5, 1.5, seed ^ 1).to_vec();
    let v = Tensor::rand_uniform([bh, lk, dh], -1.5, 1.5, seed ^ 2).to_vec();
    // Key bias: the padding mask as used by the transformer (-1e9 on
    // masked keys), never masking key 0 so every row has a survivor.
    let bias: Option<Vec<f32>> = if masked {
        let mut b = vec![0.0f32; bh * lk];
        let mut state = seed | 1;
        for (i, slot) in b.iter_mut().enumerate() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if i % lk != 0 && state.is_multiple_of(3) {
                *slot = -1e9;
            }
        }
        Some(b)
    } else {
        None
    };
    let scale = 1.0 / (dh as f32).sqrt();

    let mut fast = vec![f32::NAN; bh * lq * dh];
    let mut lse = vec![f32::NAN; bh * lq];
    fused_attention_forward(
        &q, &k, &v, bias.as_deref(), bh, lq, lk, dh, scale, q_tile, k_tile, &mut fast, &mut lse,
    );
    let mut naive = vec![0.0f32; bh * lq * dh];
    attention_naive(&q, &k, &v, bias.as_deref(), bh, lq, lk, dh, scale, &mut naive);

    for (i, (&f, &n)) in fast.iter().zip(naive.iter()).enumerate() {
        assert!((f - n).abs() < 1e-5, "elem {}: fused {} vs naive {}", i, f, n);
    }
    assert!(lse.iter().all(|l| l.is_finite()));
}

/// Fused bias+GELU must match the unfused scalar form bit-for-bit.
fn check_bias_gelu_bits(rows: usize, d: usize, seed: u64) {
    let mut x = Tensor::rand_uniform([rows, d], -4.0, 4.0, seed).to_vec();
    let mut b = Tensor::rand_uniform([d], -1.0, 1.0, seed ^ 7).to_vec();
    inject_specials(&mut x, seed ^ 0x11);
    inject_specials(&mut b, seed ^ 0x22);
    let mut fused = vec![0.0f32; rows * d];
    bias_gelu_forward(&x, &b, &mut fused);
    for (i, &f) in fused.iter().enumerate() {
        let reference = gelu_fwd(x[i] + b[i % d]);
        assert_eq!(reference.to_bits(), f.to_bits(), "elem {}", i);
    }
}

/// Fast layernorm must match the naive reference bit-for-bit.
fn check_layernorm_bits(rows: usize, d: usize, seed: u64) {
    let mut x = Tensor::rand_uniform([rows, d], -3.0, 3.0, seed).to_vec();
    inject_specials(&mut x, seed ^ 0x33);
    let gamma = Tensor::rand_uniform([d], 0.5, 1.5, seed ^ 8).to_vec();
    let beta = Tensor::rand_uniform([d], -0.5, 0.5, seed ^ 9).to_vec();
    let mut of = vec![0.0f32; rows * d];
    let mut mf = vec![0.0f32; rows];
    let mut sf = vec![0.0f32; rows];
    layernorm_forward(&x, &gamma, &beta, 1e-5, rows, d, &mut of, &mut mf, &mut sf);
    let mut on = vec![0.0f32; rows * d];
    let mut mn = vec![0.0f32; rows];
    let mut sn = vec![0.0f32; rows];
    layernorm_naive(&x, &gamma, &beta, 1e-5, rows, d, &mut on, &mut mn, &mut sn);
    assert_eq!(
        of.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        on.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(
        mf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        mn.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(
        sf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        sn.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

/// im2col+SGEMM conv vs the direct quadruple loop, bounded by the
/// contraction over absolute values (the conv analogue of the GEMM
/// absprod bound).
#[allow(clippy::too_many_arguments)]
fn check_conv_pair(
    b: usize,
    cin: usize,
    cout: usize,
    h: usize,
    w: usize,
    g: ConvGeom,
    with_bias: bool,
    seed: u64,
) {
    let x = Tensor::rand_uniform([b, cin, h, w], -1.5, 1.5, seed);
    let wt = Tensor::rand_uniform([cout, cin, g.kernel, g.kernel], -1.0, 1.0, seed ^ 0x51);
    let bias = with_bias.then(|| Tensor::rand_uniform([cout], -0.5, 0.5, seed ^ 0x52));

    let fast = conv2d(&x, &wt, bias.as_ref(), g);
    let slow = conv2d_direct(&x, &wt, bias.as_ref(), g);
    assert_eq!(fast.dims(), slow.dims());

    // Magnitude scale: the same conv over |x|, |w|, |bias|.
    let xa = Tensor::new(x.shape().clone(), x.data().iter().map(|v| v.abs()).collect::<Vec<_>>());
    let wa = Tensor::new(
        wt.shape().clone(),
        wt.data().iter().map(|v| v.abs()).collect::<Vec<_>>(),
    );
    let ba = bias
        .as_ref()
        .map(|bb| Tensor::new([cout], bb.data().iter().map(|v| v.abs()).collect::<Vec<_>>()));
    let absconv = conv2d_direct(&xa, &wa, ba.as_ref(), g);

    for (i, ((&f, &n), &ap)) in fast
        .data()
        .iter()
        .zip(slow.data().iter())
        .zip(absconv.data().iter())
        .enumerate()
    {
        let tol = REL_TOL * ap + ABS_TOL;
        assert!(
            (f - n).abs() <= tol,
            "conv elem {}: fast {} vs direct {} (tol {}, geom {:?})",
            i,
            f,
            n,
            tol,
            g
        );
    }
}

/// The 0·NaN / 0·inf laundering regression, parameterized so the
/// per-backend matrix can re-run it under forced dispatch.
fn check_zero_times_nonfinite() {
    let m = 3;
    let k = 4;
    let n = 5;
    let a = vec![0.0f32; m * k]; // entire A is zeros
    let mut b = vec![1.0f32; k * n];
    b[0] = f32::NAN; // column 0 sees NaN
    b[1] = f32::INFINITY; // column 1 sees 0 * inf = NaN

    for run_fast in [false, true] {
        let mut c = vec![0.0f32; m * n];
        if run_fast {
            gemm_packed(&a, &b, &mut c, m, k, n);
        } else {
            gemm_naive(&a, &b, &mut c, m, k, n);
        }
        for row in 0..m {
            assert!(
                c[row * n].is_nan(),
                "0*NaN must stay NaN (fast={}, row {})",
                run_fast,
                row
            );
            assert!(
                c[row * n + 1].is_nan(),
                "0*inf must stay NaN (fast={}, row {})",
                run_fast,
                row
            );
            for col in 2..n {
                assert_eq!(c[row * n + col], 0.0, "finite columns stay exact");
            }
        }
    }

    // The public dispatcher must agree regardless of mode heuristics.
    let mut c = vec![0.0f32; m * n];
    gemm(&a, &b, &mut c, m, k, n);
    assert!(c[0].is_nan() && c[1].is_nan());
}

/// NaN-query propagation, parameterized for the per-backend matrix.
fn check_attention_nan_query() {
    let (bh, lq, lk, dh) = (1usize, 3usize, 5usize, 2usize);
    let mut q = Tensor::rand_uniform([bh, lq, dh], -1.0, 1.0, 77).to_vec();
    let k = Tensor::rand_uniform([bh, lk, dh], -1.0, 1.0, 78).to_vec();
    let v = Tensor::rand_uniform([bh, lk, dh], -1.0, 1.0, 79).to_vec();
    q[dh] = f32::NAN; // poison query row 1

    let mut fast = vec![0.0f32; bh * lq * dh];
    let mut lse = vec![0.0f32; bh * lq];
    fused_attention_forward(&q, &k, &v, None, bh, lq, lk, dh, 1.0, 2, 2, &mut fast, &mut lse);
    let mut naive = vec![0.0f32; bh * lq * dh];
    attention_naive(&q, &k, &v, None, bh, lq, lk, dh, 1.0, &mut naive);

    for i in 0..dh {
        assert!(fast[dh + i].is_nan(), "fused must propagate NaN, got {}", fast[dh + i]);
        assert!(naive[dh + i].is_nan(), "naive must propagate NaN, got {}", naive[dh + i]);
        // Rows 0 and 2 stay clean and must still match to tolerance.
        assert!((fast[i] - naive[i]).abs() < 1e-5);
        assert!((fast[2 * dh + i] - naive[2 * dh + i]).abs() < 1e-5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_packed_matches_naive(m in 1usize..70, k in 1usize..70, n in 1usize..70, seed in 0u64..1_000_000) {
        check_gemm_pair(m, k, n, seed);
    }

    #[test]
    fn gemm_degenerate_dims(dim in prop_oneof![Just(1usize), Just(2usize)], which in 0usize..3, seed in 0u64..1_000_000) {
        // Pin one of m/k/n to 1 or 2 while the others stay ragged.
        let (mut m, mut k, mut n) = (17, 23, 19);
        match which { 0 => m = dim, 1 => k = dim, _ => n = dim }
        check_gemm_pair(m, k, n, seed);
    }

    #[test]
    fn attention_fused_matches_naive(
        bh in 1usize..4,
        lq in 1usize..24,
        lk in 1usize..24,
        dh in 1usize..9,
        q_tile in 1usize..8,
        k_tile in 1usize..8,
        masked in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1_000_000,
    ) {
        check_attention_pair(bh, lq, lk, dh, q_tile, k_tile, masked, seed);
    }

    #[test]
    fn bias_gelu_is_bit_identical_to_unfused(rows in 1usize..12, d in 1usize..24, seed in 0u64..1_000_000) {
        check_bias_gelu_bits(rows, d, seed);
    }

    #[test]
    fn layernorm_is_bit_identical_to_naive(rows in 1usize..12, d in 1usize..24, seed in 0u64..1_000_000) {
        check_layernorm_bits(rows, d, seed);
    }

    #[test]
    fn conv_im2col_matches_direct(
        b in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..6,
        kernel in 1usize..5,
        stride in 1usize..4,
        pad in 0usize..3,
        extra in 0usize..8,
        with_bias in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1_000_000,
    ) {
        // h, w >= kernel so the geometry is always valid, even at pad 0.
        let g = ConvGeom { kernel, stride, pad };
        let h = kernel + extra;
        let w = kernel + extra / 2;
        check_conv_pair(b, cin, cout, h, w, g, with_bias, seed);
    }
}

#[test]
fn gemm_zero_sized_dims_are_consistent() {
    // k == 0: both must zero the output (empty contraction).
    let mut fast = vec![f32::NAN; 6];
    let mut naive = vec![f32::NAN; 6];
    gemm_packed(&[], &[], &mut fast, 2, 0, 3);
    gemm_naive(&[], &[], &mut naive, 2, 0, 3);
    assert!(fast.iter().all(|&v| v == 0.0));
    assert!(naive.iter().all(|&v| v == 0.0));

    // m == 0 and n == 0: no output at all, must not panic.
    gemm_packed(&[], &[1.0, 2.0], &mut [], 0, 1, 2);
    gemm_naive(&[], &[1.0, 2.0], &mut [], 0, 1, 2);
    gemm_packed(&[1.0, 2.0], &[], &mut [], 2, 1, 0);
    gemm_naive(&[1.0, 2.0], &[], &mut [], 2, 1, 0);
}

#[test]
fn attention_zero_batch_is_a_no_op() {
    let mut out: Vec<f32> = vec![];
    let mut lse: Vec<f32> = vec![];
    fused_attention_forward(&[], &[], &[], None, 0, 3, 4, 2, 1.0, 4, 4, &mut out, &mut lse);
    attention_naive(&[], &[], &[], None, 0, 3, 4, 2, 1.0, &mut []);
}

/// Regression for the old `gemm_row` zero-skip branch: `if av == 0.0 {
/// continue }` silently turned `0.0 * NaN` and `0.0 * inf` into `0.0`.
/// Both kernels must propagate NaN through a zero row.
#[test]
fn zero_times_nonfinite_propagates_nan() {
    check_zero_times_nonfinite();
}

/// Attention must not launder NaN queries: a NaN in `q` poisons the whole
/// output row in both implementations.
#[test]
fn attention_propagates_nan_query() {
    check_attention_nan_query();
}

/// One-cut conv edge cases the proptest strategy reaches rarely:
/// 1x1 kernels (pure channel mix), single-channel in/out, kernel == image.
#[test]
fn conv_edge_geometries_match_direct() {
    // 1x1 kernel, stride 2.
    check_conv_pair(2, 3, 4, 7, 7, ConvGeom { kernel: 1, stride: 2, pad: 0 }, true, 0xA1);
    // Single input and output channel.
    check_conv_pair(1, 1, 1, 9, 6, ConvGeom { kernel: 3, stride: 1, pad: 1 }, false, 0xA2);
    // Kernel covering the whole (padded) image: one output pixel.
    check_conv_pair(1, 2, 3, 5, 5, ConvGeom { kernel: 5, stride: 1, pad: 0 }, true, 0xA3);
    // Pad larger than half the kernel, stride 3.
    check_conv_pair(1, 2, 2, 6, 8, ConvGeom { kernel: 3, stride: 3, pad: 2 }, false, 0xA4);
    // Small-cout head shape big enough for the transposed packed path.
    check_conv_pair(1, 3, 2, 16, 16, ConvGeom { kernel: 3, stride: 1, pad: 1 }, true, 0xA5);
}

/// The per-backend differential matrix (the tentpole's lock): every
/// oracle property above re-runs once per compiled-and-detected backend
/// with dispatch forced to it. Forcing is process-global, so all backends
/// run inside this single `#[test]`, sequentially; concurrent tests in
/// this binary stay correct because every backend must satisfy the exact
/// same bounds these assertions encode.
#[test]
fn per_backend_differential_matrix() {
    let detected = BackendKind::detected();
    assert!(detected.contains(&BackendKind::Scalar), "scalar must always be detected");
    for &kind in &detected {
        force_backend(Some(kind)).unwrap();
        assert_eq!(kernel_backend().unwrap(), kind, "forced backend must be selected");

        // SGEMM: ragged, degenerate, below-dispatch-floor, multi-KC-deep.
        for &(m, k, n, seed) in &[
            (67usize, 33usize, 129usize, 1u64), // every ragged edge
            (8, 8, 8, 2),                       // exactly one micro-tile
            (1, 17, 9, 3),                      // m = 1 degenerate
            (23, 1, 8, 4),                      // k = 1 degenerate
            (16, 300, 24, 5),                   // k > KC: multi-block depth
            (70, 40, 70, 6),                    // multi-MC rows
        ] {
            check_gemm_pair(m, k, n, seed);
        }
        check_zero_times_nonfinite();

        // Attention: ragged tiles, single key, bias mask, full tiles.
        check_attention_pair(2, 7, 7, 3, 4, 4, false, 21);
        check_attention_pair(3, 9, 1, 4, 2, 1, false, 22);
        check_attention_pair(2, 6, 6, 4, 3, 2, true, 23);
        check_attention_pair(2, 33, 17, 8, 8, 8, true, 24);
        check_attention_nan_query();

        // Traversal-only fusions: exact bits on every backend.
        check_bias_gelu_bits(9, 13, 31);
        check_bias_gelu_bits(3, 37, 32); // d > one vector width, ragged tail
        check_layernorm_bits(9, 13, 33);
        check_layernorm_bits(4, 67, 34); // ragged tail after 8-wide lanes

        // Conv lowering, including the small-cout transposed path.
        check_conv_pair(1, 2, 3, 8, 8, ConvGeom { kernel: 3, stride: 1, pad: 1 }, true, 41);
        check_conv_pair(1, 3, 2, 16, 16, ConvGeom { kernel: 3, stride: 1, pad: 1 }, false, 42);
    }
    force_backend(None).unwrap();
}
