//! Seeded value noise and fractional Brownian motion (fBm).
//!
//! The synthetic pathology generator layers several octaves of value noise to
//! produce tissue-like textures whose detail is spatially non-uniform — the
//! statistical property APF's quadtree exploits.

/// Deterministic lattice hash -> [0, 1).
#[inline]
fn lattice(seed: u64, ix: i64, iy: i64) -> f32 {
    // SplitMix64-style mixing of the lattice coordinates and seed.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ix as u64 ^ 0xDEAD_BEEF))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(iy as u64 ^ 0x1234_5678));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

#[inline]
fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Bilinear value noise at continuous coordinates, period `scale` pixels.
pub fn value_noise(seed: u64, x: f32, y: f32, scale: f32) -> f32 {
    let fx = x / scale;
    let fy = y / scale;
    let ix = fx.floor() as i64;
    let iy = fy.floor() as i64;
    let tx = smoothstep(fx - ix as f32);
    let ty = smoothstep(fy - iy as f32);
    let v00 = lattice(seed, ix, iy);
    let v10 = lattice(seed, ix + 1, iy);
    let v01 = lattice(seed, ix, iy + 1);
    let v11 = lattice(seed, ix + 1, iy + 1);
    v00 * (1.0 - tx) * (1.0 - ty) + v10 * tx * (1.0 - ty) + v01 * (1.0 - tx) * ty + v11 * tx * ty
}

/// Fractional Brownian motion: `octaves` layers of value noise, each with
/// doubled frequency and `gain`-scaled amplitude. Output is normalized to
/// roughly `[0, 1]`.
pub fn fbm(seed: u64, x: f32, y: f32, base_scale: f32, octaves: usize, gain: f32) -> f32 {
    let mut amp = 1.0f32;
    let mut scale = base_scale;
    let mut sum = 0.0f32;
    let mut norm = 0.0f32;
    for o in 0..octaves {
        sum += amp * value_noise(seed.wrapping_add(o as u64 * 7919), x, y, scale);
        norm += amp;
        amp *= gain;
        scale *= 0.5;
    }
    sum / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(value_noise(1, 10.3, 4.7, 8.0), value_noise(1, 10.3, 4.7, 8.0));
        assert_ne!(value_noise(1, 10.3, 4.7, 8.0), value_noise(2, 10.3, 4.7, 8.0));
    }

    #[test]
    fn noise_in_unit_range() {
        for i in 0..1000 {
            let v = value_noise(42, i as f32 * 0.37, i as f32 * 0.71, 5.0);
            assert!((0.0..=1.0).contains(&v), "{}", v);
        }
    }

    #[test]
    fn noise_is_continuous() {
        // Adjacent samples must be close (no lattice discontinuities).
        let mut prev = value_noise(7, 0.0, 3.3, 16.0);
        for i in 1..500 {
            let v = value_noise(7, i as f32 * 0.1, 3.3, 16.0);
            assert!((v - prev).abs() < 0.05, "jump at {}: {} -> {}", i, prev, v);
            prev = v;
        }
    }

    #[test]
    fn fbm_in_unit_range_and_rougher_with_octaves() {
        let roughness = |oct: usize| {
            let mut acc = 0.0;
            let mut prev = fbm(3, 0.0, 0.0, 64.0, oct, 0.7);
            for i in 1..256 {
                let v = fbm(3, i as f32, 0.0, 64.0, oct, 0.7);
                assert!((-0.01..=1.01).contains(&v));
                acc += (v - prev).abs();
                prev = v;
            }
            acc
        };
        assert!(roughness(6) > roughness(1) * 1.5);
    }
}
