//! Summed-area table for O(1) rectangle sums.
//!
//! The quadtree's split criterion (Eq. 6 of the paper) counts edge pixels
//! inside a quadrant; with an integral image every split decision is O(1),
//! making the whole quadtree build O(P log P) in the number of pixels.

use crate::image::GrayImage;

/// Summed-area table over an image. Entry `(x, y)` stores the sum of all
/// pixels in `[0, x) x [0, y)` (exclusive), in `f64` to avoid cancellation on
/// 64K² images.
pub struct IntegralImage {
    width: usize,
    height: usize,
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table in one pass.
    pub fn new(img: &GrayImage) -> Self {
        let w = img.width();
        let h = img.height();
        let tw = w + 1;
        let mut table = vec![0.0f64; tw * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += img.get(x, y) as f64;
                table[(y + 1) * tw + x + 1] = table[y * tw + x + 1] + row_sum;
            }
        }
        IntegralImage { width: w, height: h, table }
    }

    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of pixels in the rectangle starting at `(x, y)` with size
    /// `(w, h)`. The rectangle must lie inside the image.
    pub fn rect_sum(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "rect_sum out of bounds: ({}, {}) + ({}, {}) in {}x{}",
            x,
            y,
            w,
            h,
            self.width,
            self.height
        );
        let tw = self.width + 1;
        let a = self.table[y * tw + x];
        let b = self.table[y * tw + x + w];
        let c = self.table[(y + h) * tw + x];
        let d = self.table[(y + h) * tw + x + w];
        d - b - c + a
    }

    /// Mean pixel value over the rectangle.
    pub fn rect_mean(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        self.rect_sum(x, y, w, h) / (w * h) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(img: &GrayImage, x: usize, y: usize, w: usize, h: usize) -> f64 {
        let mut s = 0.0f64;
        for yy in y..y + h {
            for xx in x..x + w {
                s += img.get(xx, yy) as f64;
            }
        }
        s
    }

    #[test]
    fn rect_sums_match_brute_force() {
        let img = GrayImage::from_fn(13, 9, |x, y| ((x * 7 + y * 3) % 5) as f32 * 0.25);
        let ii = IntegralImage::new(&img);
        for (x, y, w, h) in [(0, 0, 13, 9), (0, 0, 1, 1), (3, 2, 5, 4), (12, 8, 1, 1), (6, 0, 7, 9)] {
            let fast = ii.rect_sum(x, y, w, h);
            let slow = brute(&img, x, y, w, h);
            assert!((fast - slow).abs() < 1e-6, "({},{},{},{}): {} vs {}", x, y, w, h, fast, slow);
        }
    }

    #[test]
    fn rect_mean_of_constant() {
        let img = GrayImage::from_raw(8, 8, vec![0.25; 64]);
        let ii = IntegralImage::new(&img);
        assert!((ii.rect_mean(2, 3, 4, 2) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_rect_panics() {
        let ii = IntegralImage::new(&GrayImage::new(4, 4));
        ii.rect_sum(2, 2, 3, 3);
    }
}
