//! Image rescaling: box-filter (area-average) downscale, nearest and
//! bilinear resampling.
//!
//! APF projects every quadtree leaf — whatever its size — onto a single
//! minimal patch size `P_m`; area averaging is the natural projection for
//! downscale factors > 1 and is also used to derive lower-resolution dataset
//! variants from high-resolution sources.

use rayon::prelude::*;

use crate::image::GrayImage;

/// Area-average resample to an arbitrary target size.
///
/// Each output pixel averages the axis-aligned source rectangle it covers
/// (exact box filter, fractional edges included). For integer upscales this
/// degenerates to nearest-neighbour replication.
pub fn resize_area(img: &GrayImage, out_w: usize, out_h: usize) -> GrayImage {
    assert!(out_w > 0 && out_h > 0, "resize to zero size");
    if out_w == img.width() && out_h == img.height() {
        return img.clone();
    }
    let sx = img.width() as f64 / out_w as f64;
    let sy = img.height() as f64 / out_h as f64;
    let mut out = vec![0.0f32; out_w * out_h];
    out.par_chunks_mut(out_w).enumerate().for_each(|(oy, row)| {
        let y0 = oy as f64 * sy;
        let y1 = (oy + 1) as f64 * sy;
        for (ox, o) in row.iter_mut().enumerate() {
            let x0 = ox as f64 * sx;
            let x1 = (ox + 1) as f64 * sx;
            *o = box_average(img, x0, y0, x1, y1);
        }
    });
    GrayImage::from_raw(out_w, out_h, out)
}

/// Average of the (fractional) source rectangle `[x0, x1) x [y0, y1)`.
fn box_average(img: &GrayImage, x0: f64, y0: f64, x1: f64, y1: f64) -> f32 {
    let ix0 = x0.floor() as usize;
    let iy0 = y0.floor() as usize;
    let ix1 = (x1.ceil() as usize).min(img.width());
    let iy1 = (y1.ceil() as usize).min(img.height());
    let mut acc = 0.0f64;
    let mut area = 0.0f64;
    for y in iy0..iy1 {
        let wy = overlap(y as f64, y as f64 + 1.0, y0, y1);
        if wy <= 0.0 {
            continue;
        }
        for x in ix0..ix1 {
            let wx = overlap(x as f64, x as f64 + 1.0, x0, x1);
            if wx <= 0.0 {
                continue;
            }
            acc += (img.get(x, y) as f64) * wx * wy;
            area += wx * wy;
        }
    }
    if area > 0.0 {
        (acc / area) as f32
    } else {
        0.0
    }
}

#[inline]
fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Nearest-neighbour resample (used for label masks, where averaging would
/// invent classes).
pub fn resize_nearest(img: &GrayImage, out_w: usize, out_h: usize) -> GrayImage {
    assert!(out_w > 0 && out_h > 0, "resize to zero size");
    let sx = img.width() as f64 / out_w as f64;
    let sy = img.height() as f64 / out_h as f64;
    GrayImage::from_fn(out_w, out_h, |x, y| {
        let srcx = (((x as f64 + 0.5) * sx) as usize).min(img.width() - 1);
        let srcy = (((y as f64 + 0.5) * sy) as usize).min(img.height() - 1);
        img.get(srcx, srcy)
    })
}

/// Bilinear resample (used for qualitative figure rendering).
pub fn resize_bilinear(img: &GrayImage, out_w: usize, out_h: usize) -> GrayImage {
    assert!(out_w > 0 && out_h > 0, "resize to zero size");
    let sx = (img.width().max(2) - 1) as f32 / (out_w.max(2) - 1) as f32;
    let sy = (img.height().max(2) - 1) as f32 / (out_h.max(2) - 1) as f32;
    GrayImage::from_fn(out_w, out_h, |x, y| {
        let fx = x as f32 * sx;
        let fy = y as f32 * sy;
        let x0 = fx.floor() as isize;
        let y0 = fy.floor() as isize;
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let p00 = img.get_clamped(x0, y0);
        let p10 = img.get_clamped(x0 + 1, y0);
        let p01 = img.get_clamped(x0, y0 + 1);
        let p11 = img.get_clamped(x0 + 1, y0 + 1);
        p00 * (1.0 - tx) * (1.0 - ty) + p10 * tx * (1.0 - ty) + p01 * (1.0 - tx) * ty + p11 * tx * ty
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_downscale_by_two_averages_blocks() {
        let img = GrayImage::from_raw(4, 2, vec![0., 1., 2., 3., 4., 5., 6., 7.]);
        let half = resize_area(&img, 2, 1);
        assert_eq!(half.data(), &[(0. + 1. + 4. + 5.) / 4.0, (2. + 3. + 6. + 7.) / 4.0]);
    }

    #[test]
    fn area_resize_preserves_mean() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 31 + y * 17) % 7) as f32 / 6.0);
        let small = resize_area(&img, 5, 3); // non-integer factor
        assert!((img.mean() - small.mean()).abs() < 0.02);
    }

    #[test]
    fn identity_resize_is_noop() {
        let img = GrayImage::from_fn(7, 5, |x, y| (x + y) as f32);
        assert_eq!(resize_area(&img, 7, 5), img);
    }

    #[test]
    fn nearest_keeps_label_values() {
        // A 2-class mask must stay binary through nearest resize.
        let img = GrayImage::from_fn(9, 9, |x, _| if x > 4 { 1.0 } else { 0.0 });
        let r = resize_nearest(&img, 4, 4);
        for &v in r.data() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let img = GrayImage::from_raw(2, 1, vec![0.0, 1.0]);
        let up = resize_bilinear(&img, 3, 1);
        assert!((up.get(1, 0) - 0.5).abs() < 1e-5);
    }
}
