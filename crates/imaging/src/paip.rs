//! Synthetic PAIP-like pathology sample generator.
//!
//! The real PAIP 2019 dataset (liver-cancer whole-slide images, up to ~64K²)
//! is access-gated, so this module procedurally generates samples with the
//! *statistical structure APF exploits*:
//!
//! - a mostly-empty bright background (glass slide),
//! - a large tissue region with smooth mid-frequency texture,
//! - dark vessel-like ridges inside the tissue,
//! - lesion blobs with irregular boundaries and *finer* texture than the
//!   surrounding tissue (higher-octave noise), which serve as the
//!   segmentation targets.
//!
//! Detail (hence Canny edge density) is concentrated at tissue/vessel/lesion
//! boundaries: adaptive patching collapses the background into a handful of
//! large patches while keeping small patches around detail — exactly the
//! regime the paper evaluates. The number of noise octaves grows with
//! resolution, so higher-resolution renders genuinely contain more detail
//! (like real WSIs) rather than being smooth upsamples.
//!
//! All sampling is deterministic in `(seed, sample_index)`.

use rayon::prelude::*;

use crate::image::GrayImage;
use crate::noise::{fbm, value_noise};

/// Configuration for the PAIP-like generator.
#[derive(Debug, Clone)]
pub struct PaipConfig {
    /// Square image resolution Z (image is Z x Z).
    pub resolution: usize,
    /// Number of lesion blobs per sample.
    pub lesions: usize,
    /// Master seed; combined with the sample index.
    pub seed: u64,
    /// Texture octave count (more octaves = more fine detail). Chosen from
    /// the resolution by [`PaipConfig::at_resolution`].
    pub octaves: usize,
    /// Approximate fraction of the image diagonal occupied by the tissue
    /// blob (0.3 - 0.5 is realistic).
    pub tissue_extent: f32,
}

impl PaipConfig {
    /// Sensible defaults for a given resolution, with octave count growing
    /// logarithmically so detail scales like a real slide scan.
    pub fn at_resolution(resolution: usize) -> Self {
        assert!(resolution >= 32, "resolution too small to be meaningful");
        let octaves = ((resolution as f32).log2() as usize).saturating_sub(4).clamp(3, 10);
        PaipConfig {
            resolution,
            lesions: 4,
            seed: 0x9A19,
            octaves,
            tissue_extent: 0.42,
        }
    }

    /// Same configuration with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One generated sample: the slide image and its binary lesion mask.
#[derive(Debug, Clone)]
pub struct PaipSample {
    /// Grayscale slide image in `[0, 1]`.
    pub image: GrayImage,
    /// Binary lesion mask (1.0 inside lesions).
    pub mask: GrayImage,
}

/// Lesion blob description in normalized (0..1000) slide coordinates.
#[derive(Debug, Clone, Copy)]
struct Blob {
    cx: f32,
    cy: f32,
    r: f32,
    seed: u64,
}

impl Blob {
    /// Signed distance-like inclusion test with an fBm-perturbed boundary.
    #[inline]
    fn contains(&self, u: f32, v: f32) -> bool {
        let dx = u - self.cx;
        let dy = v - self.cy;
        let d = (dx * dx + dy * dy).sqrt();
        if d > self.r * 1.45 {
            return false;
        }
        let wobble = (fbm(self.seed, u, v, self.r * 0.9, 3, 0.55) - 0.5) * 0.7 * self.r;
        d < self.r + wobble
    }
}

/// Deterministic generator of PAIP-like samples.
pub struct PaipGenerator {
    cfg: PaipConfig,
}

impl PaipGenerator {
    /// Creates a generator from a configuration.
    pub fn new(cfg: PaipConfig) -> Self {
        PaipGenerator { cfg }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &PaipConfig {
        &self.cfg
    }

    /// Generates sample `index` (image + lesion mask).
    pub fn generate(&self, index: usize) -> PaipSample {
        self.generate_textured(index, 0)
    }

    /// Generates sample `index` with a texture-class offset; class 0 is the
    /// segmentation dataset, classes 0..6 form the classification dataset
    /// (Table V divides PAIP into six organ categories by texture).
    pub fn generate_textured(&self, index: usize, class: usize) -> PaipSample {
        let z = self.cfg.resolution;
        self.generate_region(index, class, 0, 0, z, z)
    }

    /// Generates only the `w x h` window of sample `index` whose top-left
    /// corner sits at `(x0, y0)` in full-slide pixel coordinates.
    ///
    /// Every pixel is shaded from its *absolute* slide coordinate, so the
    /// output is bit-identical to cropping [`PaipGenerator::generate_textured`]
    /// at the same rectangle. This is what lets the out-of-core tile store
    /// stream a 16K²+ slide one tile at a time (peak memory = one tile)
    /// without ever materializing the dense image.
    ///
    /// # Panics
    /// Panics if the window exceeds the configured resolution.
    pub fn generate_region(
        &self,
        index: usize,
        class: usize,
        x0: usize,
        y0: usize,
        w: usize,
        h: usize,
    ) -> PaipSample {
        let z = self.cfg.resolution;
        assert!(
            x0 + w <= z && y0 + h <= z,
            "region {}x{}+{}+{} exceeds slide resolution {}",
            w,
            h,
            x0,
            y0,
            z
        );
        let sample_seed = self
            .cfg
            .seed
            .wrapping_add(index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((class as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
        let blobs = self.lesion_blobs(sample_seed);
        // Per-class texture signature: frequency and contrast differ per
        // organ category, which is what a classifier must pick up.
        let tissue_scale = 120.0 * (1.0 + class as f32 * 0.35);
        let lesion_scale = 24.0 / (1.0 + class as f32 * 0.2);
        let tissue_dark = 0.52 - class as f32 * 0.03;

        let octaves = self.cfg.octaves;
        let extent = self.cfg.tissue_extent;
        // Slide coordinates are normalized by the *full* resolution, never
        // the window size — region generation must sample the same (u, v)
        // lattice as a dense render.
        let inv = 1000.0 / z as f32;

        let mut img = vec![0.0f32; w * h];
        let mut mask = vec![0.0f32; w * h];
        img.par_chunks_mut(w)
            .zip(mask.par_chunks_mut(w))
            .enumerate()
            .for_each(|(dy, (irow, mrow))| {
                let v = (y0 + dy) as f32 * inv;
                for dx in 0..w {
                    let u = (x0 + dx) as f32 * inv;
                    let (pix, m) = Self::shade(
                        sample_seed,
                        u,
                        v,
                        extent,
                        octaves,
                        tissue_scale,
                        lesion_scale,
                        tissue_dark,
                        &blobs,
                    );
                    irow[dx] = pix;
                    mrow[dx] = m;
                }
            });
        PaipSample {
            image: GrayImage::from_raw(w, h, img),
            mask: GrayImage::from_raw(w, h, mask),
        }
    }

    /// Lesion blob layout for a sample, placed inside the tissue region.
    fn lesion_blobs(&self, sample_seed: u64) -> Vec<Blob> {
        (0..self.cfg.lesions)
            .map(|i| {
                let s = sample_seed.wrapping_add((i as u64).wrapping_mul(6_364_136_223_846_793_005));
                let angle = value_noise(s, 13.7, 71.3, 1.0) * std::f32::consts::TAU;
                let dist = 60.0 + value_noise(s, 99.1, 4.2, 1.0) * 180.0;
                Blob {
                    cx: 500.0 + angle.cos() * dist,
                    cy: 500.0 + angle.sin() * dist,
                    r: 40.0 + value_noise(s, 5.5, 55.5, 1.0) * 70.0,
                    seed: s,
                }
            })
            .collect()
    }

    /// Computes one pixel: returns `(intensity, lesion_mask)`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn shade(
        seed: u64,
        u: f32,
        v: f32,
        extent: f32,
        octaves: usize,
        tissue_scale: f32,
        lesion_scale: f32,
        tissue_dark: f32,
        blobs: &[Blob],
    ) -> (f32, f32) {
        // Tissue region: a big wobbly blob centred on the slide.
        let dx = u - 500.0;
        let dy = v - 500.0;
        let d = (dx * dx + dy * dy).sqrt();
        let tissue_r = extent * 1000.0;
        let tissue_wobble = (fbm(seed ^ 0xA11CE, u, v, 280.0, 3, 0.5) - 0.5) * 220.0;
        let in_tissue = d < tissue_r + tissue_wobble;

        if !in_tissue {
            // Glass background: bright, almost featureless.
            let bg = 0.93 + 0.04 * value_noise(seed ^ 0xB0B, u, v, 300.0);
            return (bg, 0.0);
        }

        // Base tissue texture.
        let t = fbm(seed ^ 0x7155, u, v, tissue_scale, octaves, 0.55);
        let mut pix = tissue_dark + 0.30 * t;

        // Vessels: ridged noise produces thin connected dark curves.
        let ridge = 1.0 - (2.0 * fbm(seed ^ 0xE55E1, u, v, 170.0, 4, 0.5) - 1.0).abs();
        if ridge > 0.965 {
            pix *= 0.45;
        }

        // Lesions: finer texture, slightly darker, irregular boundary.
        let mut in_lesion = false;
        for b in blobs {
            if b.contains(u, v) {
                in_lesion = true;
                break;
            }
        }
        if in_lesion {
            let fine = fbm(seed ^ 0x1E51, u, v, lesion_scale, octaves, 0.6);
            pix = 0.30 + 0.25 * fine + 0.10 * t;
            return (pix.clamp(0.0, 1.0), 1.0);
        }
        (pix.clamp(0.0, 1.0), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let a = gen.generate(3);
        let b = gen.generate(3);
        assert_eq!(a.image.data(), b.image.data());
        assert_eq!(a.mask.data(), b.mask.data());
        let c = gen.generate(4);
        assert_ne!(a.image.data(), c.image.data());
    }

    #[test]
    fn mask_is_binary_and_nonempty() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(128));
        let s = gen.generate(0);
        for &v in s.mask.data() {
            assert!(v == 0.0 || v == 1.0);
        }
        let cov = s.mask.coverage(0.5);
        assert!(cov > 0.005 && cov < 0.6, "lesion coverage {}", cov);
    }

    #[test]
    fn image_values_in_unit_range() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let s = gen.generate(1);
        let (lo, hi) = s.image.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn background_is_smoother_than_lesions() {
        // Average local variation outside tissue should be far below inside
        // lesions — this is the property the quadtree exploits.
        let gen = PaipGenerator::new(PaipConfig::at_resolution(256));
        let s = gen.generate(2);
        let mut bg_var = 0.0f64;
        let mut bg_n = 0usize;
        let mut le_var = 0.0f64;
        let mut le_n = 0usize;
        for y in 1..255 {
            for x in 1..255 {
                let dv = (s.image.get(x, y) - s.image.get(x - 1, y)).abs() as f64;
                // Background = bright pixels far from tissue.
                if s.image.get(x, y) > 0.9 {
                    bg_var += dv;
                    bg_n += 1;
                } else if s.mask.get(x, y) > 0.5 {
                    le_var += dv;
                    le_n += 1;
                }
            }
        }
        assert!(bg_n > 1000 && le_n > 1000);
        let bg = bg_var / bg_n as f64;
        let le = le_var / le_n as f64;
        assert!(le > bg * 3.0, "lesion detail {} vs background {}", le, bg);
    }

    #[test]
    fn region_generation_matches_dense_crop_bitwise() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(128));
        for class in [0usize, 2] {
            let dense = gen.generate_textured(7, class);
            // Tile the slide 32x32 and compare every tile, plus one
            // unaligned interior window.
            for (x0, y0, w, h) in [
                (0, 0, 32, 32),
                (96, 0, 32, 32),
                (32, 64, 32, 32),
                (96, 96, 32, 32),
                (17, 41, 50, 23),
            ] {
                let region = gen.generate_region(7, class, x0, y0, w, h);
                let img_crop = dense.image.crop(x0, y0, w, h);
                let mask_crop = dense.mask.crop(x0, y0, w, h);
                assert_eq!(region.image.data(), img_crop.data(), "image window {x0},{y0}");
                assert_eq!(region.mask.data(), mask_crop.data(), "mask window {x0},{y0}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds slide resolution")]
    fn region_out_of_bounds_panics() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let _ = gen.generate_region(0, 0, 40, 0, 32, 32);
    }

    #[test]
    fn texture_classes_differ() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let a = gen.generate_textured(0, 0);
        let b = gen.generate_textured(0, 3);
        let diff: f32 = a
            .image
            .data()
            .iter()
            .zip(b.image.data())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / (64.0 * 64.0);
        assert!(diff > 0.01, "classes indistinguishable: {}", diff);
    }

    #[test]
    fn resolution_scales_content_not_layout() {
        // The same sample at 2x resolution must have the same gross
        // structure: mask coverage within a small tolerance.
        let lo = PaipGenerator::new(PaipConfig::at_resolution(64)).generate(5);
        let hi = PaipGenerator::new(PaipConfig::at_resolution(128)).generate(5);
        let c1 = lo.mask.coverage(0.5);
        let c2 = hi.mask.coverage(0.5);
        assert!((c1 - c2).abs() < 0.05, "{} vs {}", c1, c2);
    }
}
