//! # apf-imaging
//!
//! Image processing primitives and synthetic dataset generators for the APF
//! reproduction.
//!
//! The processing half implements exactly the pre-processing chain of
//! Algorithm 1 in the paper: [`filter::gaussian_blur`] -> [`canny::canny`],
//! plus the [`integral::IntegralImage`] that makes the quadtree's edge-count
//! split criterion O(1) per quadrant, and the [`resize`] projections used to
//! bring mixed-scale patches to a common size.
//!
//! The generator half substitutes for the access-gated datasets: [`paip`]
//! produces pathology-like slides (detail concentrated at lesion/vessel
//! boundaries) and [`btcv`] produces 13-organ abdominal-CT-like slice stacks.
//! Both are fully deterministic given a seed, so every experiment in the
//! workspace is reproducible bit-for-bit.

pub mod augment;
pub mod btcv;
pub mod canny;
pub mod filter;
pub mod image;
pub mod integral;
pub mod io;
pub mod noise;
pub mod paip;
pub mod resize;

pub use augment::{augment_pairs, Augmentation};
pub use canny::{canny, CannyConfig};
pub use filter::{gaussian_blur, sobel};
pub use image::{GrayImage, ImageError};
pub use integral::IntegralImage;
pub use resize::{resize_area, resize_bilinear, resize_nearest};
