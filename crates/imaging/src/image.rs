//! Grayscale image container used across the workspace.
//!
//! Pixels are `f32` in `[0, 1]`, row-major. High-resolution pathology slides
//! are modeled as single-channel luminance: APF's pre-processing (blur,
//! Canny, quadtree) is defined on grayscale anyway, and the paper normalizes
//! inputs to `[0, 1]`.

/// A dense row-major grayscale image with `f32` pixels.
#[derive(Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Allocates a black (all-zero) image.
    pub fn new(width: usize, height: usize) -> Self {
        GrayImage {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "image buffer size mismatch");
        GrayImage { width, height, data }
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        GrayImage { width, height, data }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds (debug-friendly; use [`GrayImage::get_clamped`]
    /// for edge-tolerant reads).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Reads with coordinates clamped to the image border (replicate
    /// padding), accepting signed coordinates.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Copies the axis-aligned rectangle starting at `(x0, y0)` with the
    /// given size. The rectangle must lie inside the image.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> GrayImage {
        assert!(x0 + w <= self.width && y0 + h <= self.height, "crop out of bounds");
        let mut out = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            out.extend_from_slice(&self.data[y * self.width + x0..y * self.width + x0 + w]);
        }
        GrayImage::from_raw(w, h, out)
    }

    /// Minimum and maximum pixel value.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Linearly rescales pixel values into `[0, 1]` (no-op on constant
    /// images).
    pub fn normalized(&self) -> GrayImage {
        let (lo, hi) = self.min_max();
        if (hi - lo).abs() < f32::EPSILON {
            return self.clone();
        }
        let inv = 1.0 / (hi - lo);
        GrayImage::from_raw(
            self.width,
            self.height,
            self.data.iter().map(|&v| (v - lo) * inv).collect(),
        )
    }

    /// Fraction of pixels with value above `threshold`.
    pub fn coverage(&self, threshold: f32) -> f32 {
        let n = self.data.iter().filter(|&&v| v > threshold).count();
        n as f32 / self.data.len() as f32
    }
}

impl std::fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lo, hi) = self.min_max();
        write!(
            f,
            "GrayImage({}x{}, min={:.3}, max={:.3}, mean={:.3})",
            self.width,
            self.height,
            lo,
            hi,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 10 + x) as f32);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.data(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    fn clamped_reads_replicate_border() {
        let img = GrayImage::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.get_clamped(-5, 0), 0.0);
        assert_eq!(img.get_clamped(5, 5), 3.0);
    }

    #[test]
    fn crop_extracts_rectangle() {
        let img = GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.data(), &[9., 10., 13., 14.]);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_oob_panics() {
        GrayImage::new(4, 4).crop(3, 3, 2, 2);
    }

    #[test]
    fn normalized_rescales() {
        let img = GrayImage::from_raw(2, 1, vec![2.0, 4.0]);
        let n = img.normalized();
        assert_eq!(n.data(), &[0.0, 1.0]);
    }

    #[test]
    fn coverage_counts_fraction() {
        let img = GrayImage::from_raw(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(img.coverage(0.5), 0.5);
    }
}
