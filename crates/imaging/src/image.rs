//! Grayscale image container used across the workspace.
//!
//! Pixels are `f32` in `[0, 1]`, row-major. High-resolution pathology slides
//! are modeled as single-channel luminance: APF's pre-processing (blur,
//! Canny, quadtree) is defined on grayscale anyway, and the paper normalizes
//! inputs to `[0, 1]`.

/// Typed rejection of an invalid image at the construction boundary.
///
/// Mirrors the PGM reader's diagnostics style: every variant names the
/// offending field and where the problem was found, so bad input is
/// reportable instead of a panic deep inside the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ImageError {
    /// Width or height is zero.
    ZeroDimension {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The pixel buffer length disagrees with `width * height`.
    BufferSizeMismatch {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
        /// `width * height`.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// A pixel is NaN or infinite.
    NonFinitePixel {
        /// Pixel x coordinate.
        x: usize,
        /// Pixel y coordinate.
        y: usize,
        /// The offending value.
        value: f32,
    },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::ZeroDimension { width, height } => {
                write!(f, "image dimensions: {width}x{height} has a zero side")
            }
            ImageError::BufferSizeMismatch { width, height, expected, actual } => write!(
                f,
                "image buffer: {width}x{height} needs {expected} pixels, got {actual}"
            ),
            ImageError::NonFinitePixel { x, y, value } => {
                write!(f, "image pixel ({x}, {y}): non-finite value {value}")
            }
        }
    }
}

impl std::error::Error for ImageError {}

/// A dense row-major grayscale image with `f32` pixels.
#[derive(Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Allocates a black (all-zero) image.
    pub fn new(width: usize, height: usize) -> Self {
        GrayImage {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "image buffer size mismatch");
        GrayImage { width, height, data }
    }

    /// Validating constructor for untrusted buffers (network requests, file
    /// loaders): rejects zero dimensions, length mismatches, and non-finite
    /// pixels with a typed [`ImageError`] instead of panicking.
    pub fn try_from_raw(width: usize, height: usize, data: Vec<f32>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::ZeroDimension { width, height });
        }
        let expected = width * height;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch {
                width,
                height,
                expected,
                actual: data.len(),
            });
        }
        let img = GrayImage { width, height, data };
        img.validate_finite()?;
        Ok(img)
    }

    /// Checks every pixel is finite, reporting the first offender's
    /// coordinates. Cheap (one linear scan) relative to any downstream use.
    pub fn validate_finite(&self) -> Result<(), ImageError> {
        if let Some(i) = self.data.iter().position(|v| !v.is_finite()) {
            return Err(ImageError::NonFinitePixel {
                x: i % self.width,
                y: i / self.width,
                value: self.data[i],
            });
        }
        Ok(())
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        GrayImage { width, height, data }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image, returning its row-major pixel buffer without a
    /// copy (tile writers hand buffers straight to disk).
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds (debug-friendly; use [`GrayImage::get_clamped`]
    /// for edge-tolerant reads).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Reads with coordinates clamped to the image border (replicate
    /// padding), accepting signed coordinates.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Copies the axis-aligned rectangle starting at `(x0, y0)` with the
    /// given size. The rectangle must lie inside the image.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> GrayImage {
        assert!(x0 + w <= self.width && y0 + h <= self.height, "crop out of bounds");
        let mut out = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            out.extend_from_slice(&self.data[y * self.width + x0..y * self.width + x0 + w]);
        }
        GrayImage::from_raw(w, h, out)
    }

    /// Minimum and maximum pixel value.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Linearly rescales pixel values into `[0, 1]` (no-op on constant
    /// images).
    pub fn normalized(&self) -> GrayImage {
        let (lo, hi) = self.min_max();
        if (hi - lo).abs() < f32::EPSILON {
            return self.clone();
        }
        let inv = 1.0 / (hi - lo);
        GrayImage::from_raw(
            self.width,
            self.height,
            self.data.iter().map(|&v| (v - lo) * inv).collect(),
        )
    }

    /// Fraction of pixels with value above `threshold`.
    pub fn coverage(&self, threshold: f32) -> f32 {
        let n = self.data.iter().filter(|&&v| v > threshold).count();
        n as f32 / self.data.len() as f32
    }
}

impl std::fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lo, hi) = self.min_max();
        write!(
            f,
            "GrayImage({}x{}, min={:.3}, max={:.3}, mean={:.3})",
            self.width,
            self.height,
            lo,
            hi,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 10 + x) as f32);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.data(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    fn clamped_reads_replicate_border() {
        let img = GrayImage::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.get_clamped(-5, 0), 0.0);
        assert_eq!(img.get_clamped(5, 5), 3.0);
    }

    #[test]
    fn crop_extracts_rectangle() {
        let img = GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.data(), &[9., 10., 13., 14.]);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_oob_panics() {
        GrayImage::new(4, 4).crop(3, 3, 2, 2);
    }

    #[test]
    fn normalized_rescales() {
        let img = GrayImage::from_raw(2, 1, vec![2.0, 4.0]);
        let n = img.normalized();
        assert_eq!(n.data(), &[0.0, 1.0]);
    }

    #[test]
    fn coverage_counts_fraction() {
        let img = GrayImage::from_raw(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(img.coverage(0.5), 0.5);
    }

    #[test]
    fn try_from_raw_accepts_valid_buffers() {
        let img = GrayImage::try_from_raw(2, 3, vec![0.5; 6]).unwrap();
        assert_eq!(img.width(), 2);
        assert_eq!(img.height(), 3);
    }

    #[test]
    fn try_from_raw_rejects_zero_dims() {
        assert_eq!(
            GrayImage::try_from_raw(0, 4, vec![]),
            Err(ImageError::ZeroDimension { width: 0, height: 4 })
        );
    }

    #[test]
    fn try_from_raw_rejects_length_mismatch() {
        let err = GrayImage::try_from_raw(3, 3, vec![0.0; 8]).unwrap_err();
        assert_eq!(
            err,
            ImageError::BufferSizeMismatch { width: 3, height: 3, expected: 9, actual: 8 }
        );
        assert!(err.to_string().contains("needs 9 pixels"));
    }

    #[test]
    fn try_from_raw_names_first_non_finite_pixel() {
        let mut data = vec![0.0; 9];
        data[5] = f32::NAN; // (x=2, y=1)
        let err = GrayImage::try_from_raw(3, 3, data).unwrap_err();
        match err {
            ImageError::NonFinitePixel { x, y, value } => {
                assert_eq!((x, y), (2, 1));
                assert!(value.is_nan());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn validate_finite_flags_infinities() {
        let mut img = GrayImage::new(4, 2);
        assert!(img.validate_finite().is_ok());
        img.set(3, 1, f32::INFINITY);
        assert!(matches!(
            img.validate_finite(),
            Err(ImageError::NonFinitePixel { x: 3, y: 1, .. })
        ));
    }
}
