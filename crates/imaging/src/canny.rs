//! Canny edge detection (gradient, non-maximum suppression, hysteresis).
//!
//! Follows the classical pipeline of Canny (1986): Sobel gradients,
//! direction-quantized non-maximum suppression, double thresholding with
//! hysteresis linking. Thresholds follow the paper's convention of 8-bit
//! gradient magnitudes (e.g. `[100, 200]`), applied to `[0, 1]` images by
//! scaling magnitudes by 255.

use serde::{Deserialize, Serialize};

use crate::filter::sobel;
use crate::image::GrayImage;

/// Canny configuration: hysteresis thresholds on 8-bit-scaled gradient
/// magnitude.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CannyConfig {
    /// Weak-edge threshold (paper default 100).
    pub low: f32,
    /// Strong-edge threshold (paper default 200).
    pub high: f32,
}

impl Default for CannyConfig {
    fn default() -> Self {
        // The thresholds used throughout the paper's experiments.
        CannyConfig { low: 100.0, high: 200.0 }
    }
}

/// Runs Canny edge detection on a (typically pre-blurred) image.
///
/// Returns a binary image: 1.0 on edge pixels, 0.0 elsewhere.
pub fn canny(img: &GrayImage, cfg: CannyConfig) -> GrayImage {
    assert!(cfg.low <= cfg.high, "canny: low threshold above high");
    let (w, h) = (img.width(), img.height());
    let (gx, gy) = sobel(img);

    // Gradient magnitude scaled to the 8-bit convention.
    let mut mag = vec![0.0f32; w * h];
    for ((m, &x), &y) in mag.iter_mut().zip(gx.data()).zip(gy.data()) {
        *m = (x * x + y * y).sqrt() * 255.0;
    }
    let mag = GrayImage::from_raw(w, h, mag);

    // Non-maximum suppression along the quantized gradient direction.
    let mut nms = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let m = mag.get(x, y);
            if m < cfg.low {
                continue;
            }
            let dx = gx.get(x, y);
            let dy = gy.get(x, y);
            // Quantize direction to one of 4 sectors (0, 45, 90, 135 deg).
            let angle = dy.atan2(dx).to_degrees().rem_euclid(180.0);
            let (ox, oy): (isize, isize) = if !(22.5..157.5).contains(&angle) {
                (1, 0)
            } else if angle < 67.5 {
                (1, 1)
            } else if angle < 112.5 {
                (0, 1)
            } else {
                (-1, 1)
            };
            let m1 = mag.get_clamped(x as isize + ox, y as isize + oy);
            let m2 = mag.get_clamped(x as isize - ox, y as isize - oy);
            if m >= m1 && m >= m2 {
                nms[y * w + x] = m;
            }
        }
    }

    // Double threshold + hysteresis: BFS from strong pixels through weak ones.
    const STRONG: u8 = 2;
    const WEAK: u8 = 1;
    let mut class = vec![0u8; w * h];
    let mut stack = Vec::new();
    for (i, &m) in nms.iter().enumerate() {
        if m >= cfg.high {
            class[i] = STRONG;
            stack.push(i);
        } else if m >= cfg.low {
            class[i] = WEAK;
        }
    }
    let mut out = vec![0.0f32; w * h];
    while let Some(i) = stack.pop() {
        if out[i] == 1.0 {
            continue;
        }
        out[i] = 1.0;
        let (x, y) = (i % w, i / w);
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = x as isize + dx;
                let ny = y as isize + dy;
                if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                    continue;
                }
                let ni = ny as usize * w + nx as usize;
                if class[ni] == WEAK && out[ni] == 0.0 {
                    class[ni] = STRONG;
                    stack.push(ni);
                }
            }
        }
    }
    GrayImage::from_raw(w, h, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::gaussian_blur;

    #[test]
    fn flat_image_has_no_edges() {
        let img = GrayImage::from_raw(16, 16, vec![0.5; 256]);
        let e = canny(&img, CannyConfig::default());
        assert_eq!(e.coverage(0.5), 0.0);
    }

    #[test]
    fn step_edge_is_detected_thin() {
        let img = GrayImage::from_fn(32, 32, |x, _| if x < 16 { 0.0 } else { 1.0 });
        let e = canny(&img, CannyConfig::default());
        // An edge exists near x = 16 in every row...
        for y in 2..30 {
            let hits: usize = (14..19).filter(|&x| e.get(x, y) > 0.5).count();
            assert!(hits >= 1, "row {} missing edge", y);
            // ...and NMS keeps it at most 2 px wide.
            assert!(hits <= 2, "row {} edge too thick: {}", y, hits);
        }
        // Nothing far from the boundary.
        assert_eq!(e.get(4, 16), 0.0);
        assert_eq!(e.get(28, 16), 0.0);
    }

    #[test]
    fn hysteresis_links_weak_to_strong() {
        // A ramp edge whose magnitude varies along the edge: weak segments
        // connected to strong ones must survive.
        let img = GrayImage::from_fn(32, 32, |x, y| {
            let amp = 0.45 + 0.55 * (y as f32 / 31.0);
            if x < 16 {
                0.0
            } else {
                amp
            }
        });
        let e = canny(&img, CannyConfig { low: 60.0, high: 300.0 });
        // Strong at the bottom (high amplitude), weak at top; the column
        // should still be connected through most rows.
        let edge_rows = (0..32)
            .filter(|&y| (14..19).any(|x| e.get(x, y) > 0.5))
            .count();
        assert!(edge_rows > 24, "hysteresis dropped edge: {} rows", edge_rows);
    }

    #[test]
    fn weak_only_noise_is_suppressed() {
        // Shallow step producing only weak responses -> no edges at all.
        let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0.5 } else { 0.56 });
        let e = canny(&img, CannyConfig { low: 100.0, high: 200.0 });
        assert_eq!(e.coverage(0.5), 0.0);
    }

    #[test]
    fn circle_produces_closed_contour() {
        let img = GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as f32 - 32.0;
            let dy = y as f32 - 32.0;
            if (dx * dx + dy * dy).sqrt() < 20.0 {
                1.0
            } else {
                0.0
            }
        });
        let blurred = gaussian_blur(&img, 3, 0.0);
        let e = canny(&blurred, CannyConfig::default());
        // Edge pixel count should approximate the circumference (2*pi*20).
        let count = e.data().iter().filter(|&&v| v > 0.5).count();
        assert!(count > 80 && count < 400, "edge count {}", count);
    }
}
