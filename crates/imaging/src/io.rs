//! Minimal PGM/PPM image I/O for qualitative figures (Fig. 2 renders).

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use crate::image::{GrayImage, ImageError};

/// A typed [`ImageError`] annotated with the field and byte offset at which
/// it was detected, carried as the payload of an `io::Error` so I/O callers
/// (e.g. the gigapixel tile-store generator) get the same field + offset
/// context as every other PGM failure *and* can downcast to the underlying
/// [`ImageError`] via [`std::error::Error::source`].
#[derive(Debug)]
pub struct ImageIoError {
    field: &'static str,
    offset: usize,
    source: ImageError,
}

impl ImageIoError {
    /// The header field or stream section that failed.
    pub fn field(&self) -> &'static str {
        self.field
    }

    /// Byte offset at which the failure was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The underlying typed image error.
    pub fn image_error(&self) -> &ImageError {
        &self.source
    }

    fn into_io(field: &'static str, offset: usize, source: ImageError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, ImageIoError { field, offset, source })
    }
}

impl std::fmt::Display for ImageIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PGM {}: {} (byte offset {})", self.field, self.source, self.offset)
    }
}

impl std::error::Error for ImageIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Writes a grayscale image as binary PGM (P5), mapping `[0, 1]` to 8 bits.
pub fn write_pgm(img: &GrayImage, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "P5\n{} {}\n255", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .data()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    w.write_all(&bytes)
}

/// Writes an RGB overlay as binary PPM (P6): the base image in gray with
/// `mask` blended in red — used to visualize predicted segmentation masks.
pub fn write_ppm_overlay(
    base: &GrayImage,
    mask: &GrayImage,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    if base.width() != mask.width() || base.height() != mask.height() {
        return Err(ImageIoError::into_io(
            "overlay mask",
            0,
            ImageError::BufferSizeMismatch {
                width: base.width(),
                height: base.height(),
                expected: base.width() * base.height(),
                actual: mask.width() * mask.height(),
            },
        ));
    }
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "P6\n{} {}\n255", base.width(), base.height())?;
    let mut bytes = Vec::with_capacity(base.data().len() * 3);
    for (&b, &m) in base.data().iter().zip(mask.data().iter()) {
        let g = (b.clamp(0.0, 1.0) * 255.0) as u8;
        if m > 0.5 {
            bytes.push(g / 2 + 128);
            bytes.push(g / 2);
            bytes.push(g / 2);
        } else {
            bytes.push(g);
            bytes.push(g);
            bytes.push(g);
        }
    }
    w.write_all(&bytes)
}

/// Incremental PGM header parser. Every failure names the offending field
/// and the byte offset at which it was found, so a malformed file is
/// diagnosable instead of a panic or a generic "bad header".
struct PgmHeader<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl<'a> PgmHeader<'a> {
    fn bad(&self, field: &str, detail: impl std::fmt::Display) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("PGM {field}: {detail} (byte offset {})", self.pos),
        )
    }

    /// Skips whitespace and `#` comment lines (legal anywhere in a PNM
    /// header between tokens).
    fn skip_separators(&mut self) {
        while let Some(&b) = self.raw.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while self.raw.get(self.pos).is_some_and(|&c| c != b'\n') {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Next whitespace-delimited token; `field` names it in errors.
    fn token(&mut self, field: &str) -> io::Result<&'a str> {
        self.skip_separators();
        let start = self.pos;
        while self.raw.get(self.pos).is_some_and(|b| !b.is_ascii_whitespace()) {
            self.pos += 1;
        }
        if self.pos == start {
            self.pos = start;
            return Err(self.bad(field, "header ended before field"));
        }
        std::str::from_utf8(&self.raw[start..self.pos]).map_err(|_| {
            self.pos = start;
            self.bad(field, "field is not valid UTF-8")
        })
    }

    fn number(&mut self, field: &str) -> io::Result<usize> {
        let start_of_token = {
            self.skip_separators();
            self.pos
        };
        let tok = self.token(field)?;
        tok.parse().map_err(|_| {
            self.pos = start_of_token;
            self.bad(field, format!("expected a decimal integer, found {tok:?}"))
        })
    }
}

/// Reads a binary PGM (P5) file back into a `[0, 1]` image. Only the subset
/// written by [`write_pgm`] is supported (8-bit, maxval 255), but any
/// malformed header is rejected with an error naming the offending field
/// and byte offset rather than panicking.
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<GrayImage> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let mut hdr = PgmHeader { raw: &raw, pos: 0 };

    let magic = hdr.token("magic")?;
    if magic != "P5" {
        hdr.pos = 0;
        return Err(hdr.bad("magic", format!("expected \"P5\", found {magic:?}")));
    }
    let w = hdr.number("width")?;
    let h = hdr.number("height")?;
    let maxval = hdr.number("maxval")?;
    if maxval != 255 {
        return Err(hdr.bad("maxval", format!("only 255 is supported, found {maxval}")));
    }
    // Exactly one whitespace byte separates the header from the raster.
    match hdr.raw.get(hdr.pos) {
        Some(b) if b.is_ascii_whitespace() => hdr.pos += 1,
        Some(b) => {
            return Err(hdr.bad("raster", format!("expected whitespace before pixel data, found byte {b:#04x}")))
        }
        None => return Err(hdr.bad("raster", "file ended before pixel data")),
    }

    let numel = w
        .checked_mul(h)
        .ok_or_else(|| hdr.bad("dimensions", format!("{w} x {h} overflows")))?;
    let pixels = &raw[hdr.pos..];
    if pixels.len() < numel {
        return Err(hdr.bad(
            "raster",
            format!("need {numel} pixel bytes for {w} x {h}, found {}", pixels.len()),
        ));
    }
    // `try_from_raw` rather than the panicking constructor: a file declaring
    // zero dimensions is malformed input, not a programming error, and must
    // surface as the typed error with field + offset context.
    let offset = hdr.pos;
    GrayImage::try_from_raw(w, h, pixels[..numel].iter().map(|&b| b as f32 / 255.0).collect())
        .map_err(|e| ImageIoError::into_io("raster", offset, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(5, 3, |x, y| ((x + y) % 4) as f32 / 3.0);
        let dir = std::env::temp_dir().join("apf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.width(), 5);
        assert_eq!(back.height(), 3);
        for (a, b) in img.data().iter().zip(back.data().iter()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-4);
        }
    }

    fn read_bytes(name: &str, bytes: &[u8]) -> io::Result<GrayImage> {
        let dir = std::env::temp_dir().join("apf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        read_pgm(&path)
    }

    #[test]
    fn malformed_headers_name_field_and_offset() {
        let err = read_bytes("bad_magic.pgm", b"P6\n2 2\n255\nAAAA").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("magic") && msg.contains("byte offset 0"), "{msg}");

        let err = read_bytes("bad_width.pgm", b"P5\nzz 2\n255\nAAAA").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("width") && msg.contains("byte offset 3"), "{msg}");

        let err = read_bytes("bad_maxval.pgm", b"P5\n2 2\n65535\nAAAA").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("maxval") && msg.contains("65535"), "{msg}");

        let err = read_bytes("no_height.pgm", b"P5\n2").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("height") && msg.contains("ended before"), "{msg}");
    }

    #[test]
    fn truncated_raster_reports_byte_counts() {
        let err = read_bytes("short.pgm", b"P5\n4 4\n255\nAB").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("need 16") && msg.contains("found 2"), "{msg}");
    }

    #[test]
    fn oversized_dims_do_not_overflow() {
        let huge = format!("P5\n{} {}\n255\nAA", usize::MAX, 2);
        let err = read_bytes("huge.pgm", huge.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn header_comments_are_skipped() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + y) as f32 / 2.0);
        let mut bytes = b"P5\n# a comment\n2 2\n255\n".to_vec();
        bytes.extend(img.data().iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8));
        let back = read_bytes("comment.pgm", &bytes).unwrap();
        assert_eq!(back.width(), 2);
        assert_eq!(back.height(), 2);
    }

    #[test]
    fn zero_dimension_file_yields_typed_error_not_panic() {
        let err = read_bytes("zero.pgm", b"P5\n0 0\n255\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("raster") && msg.contains("byte offset"), "{msg}");
        // The underlying typed ImageError is reachable through source().
        let typed = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<ImageIoError>())
            .expect("payload should be ImageIoError");
        assert!(matches!(typed.image_error(), ImageError::ZeroDimension { width: 0, height: 0 }));
        assert_eq!(typed.field(), "raster");
    }

    #[test]
    fn ppm_overlay_dim_mismatch_yields_typed_error_not_panic() {
        let base = GrayImage::new(4, 4);
        let mask = GrayImage::new(4, 2);
        let dir = std::env::temp_dir().join("apf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let err = write_ppm_overlay(&base, &mask, dir.join("mm.ppm")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let typed = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<ImageIoError>())
            .expect("payload should be ImageIoError");
        assert!(matches!(
            typed.image_error(),
            ImageError::BufferSizeMismatch { expected: 16, actual: 8, .. }
        ));
    }

    #[test]
    fn ppm_overlay_writes_expected_size() {
        let img = GrayImage::new(4, 4);
        let mask = GrayImage::from_fn(4, 4, |x, _| (x % 2) as f32);
        let dir = std::env::temp_dir().join("apf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ov.ppm");
        write_ppm_overlay(&img, &mask, &path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, 11 + 48); // "P6\n4 4\n255\n" + 16 px * 3
    }
}
