//! Minimal PGM/PPM image I/O for qualitative figures (Fig. 2 renders).

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use crate::image::GrayImage;

/// Writes a grayscale image as binary PGM (P5), mapping `[0, 1]` to 8 bits.
pub fn write_pgm(img: &GrayImage, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "P5\n{} {}\n255", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .data()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    w.write_all(&bytes)
}

/// Writes an RGB overlay as binary PPM (P6): the base image in gray with
/// `mask` blended in red — used to visualize predicted segmentation masks.
pub fn write_ppm_overlay(
    base: &GrayImage,
    mask: &GrayImage,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    assert_eq!(base.width(), mask.width());
    assert_eq!(base.height(), mask.height());
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "P6\n{} {}\n255", base.width(), base.height())?;
    let mut bytes = Vec::with_capacity(base.data().len() * 3);
    for (&b, &m) in base.data().iter().zip(mask.data().iter()) {
        let g = (b.clamp(0.0, 1.0) * 255.0) as u8;
        if m > 0.5 {
            bytes.push(g / 2 + 128);
            bytes.push(g / 2);
            bytes.push(g / 2);
        } else {
            bytes.push(g);
            bytes.push(g);
            bytes.push(g);
        }
    }
    w.write_all(&bytes)
}

/// Reads a binary PGM (P5) file back into a `[0, 1]` image. Only the subset
/// written by [`write_pgm`] is supported.
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<GrayImage> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let header_end = raw
        .windows(1)
        .enumerate()
        .scan(0, |newlines, (i, w)| {
            if w[0] == b'\n' {
                *newlines += 1;
            }
            Some((i, *newlines))
        })
        .find(|&(_, n)| n == 3)
        .map(|(i, _)| i + 1)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad PGM header"))?;
    let header = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 PGM header"))?;
    let mut lines = header.lines();
    let magic = lines.next().unwrap_or("");
    if magic != "P5" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a P5 PGM"));
    }
    let dims: Vec<usize> = lines
        .next()
        .unwrap_or("")
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    if dims.len() != 2 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad PGM dims"));
    }
    let (w, h) = (dims[0], dims[1]);
    let pixels = &raw[header_end..];
    if pixels.len() < w * h {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated PGM"));
    }
    Ok(GrayImage::from_raw(
        w,
        h,
        pixels[..w * h].iter().map(|&b| b as f32 / 255.0).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(5, 3, |x, y| ((x + y) % 4) as f32 / 3.0);
        let dir = std::env::temp_dir().join("apf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.width(), 5);
        assert_eq!(back.height(), 3);
        for (a, b) in img.data().iter().zip(back.data().iter()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-4);
        }
    }

    #[test]
    fn ppm_overlay_writes_expected_size() {
        let img = GrayImage::new(4, 4);
        let mask = GrayImage::from_fn(4, 4, |x, _| (x % 2) as f32);
        let dir = std::env::temp_dir().join("apf_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ov.ppm");
        write_ppm_overlay(&img, &mask, &path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, 11 + 48); // "P6\n4 4\n255\n" + 16 px * 3
    }
}
