//! Separable Gaussian blur and Sobel gradients.

use rayon::prelude::*;

use crate::image::GrayImage;

/// A 1D Gaussian kernel of odd size `k`.
///
/// With `sigma <= 0` the OpenCV convention is used:
/// `sigma = 0.3 * ((k - 1) * 0.5 - 1) + 0.8` — this matches the paper's
/// `GaussianBlur(x; k)` with `sigma = 0`.
pub fn gaussian_kernel(k: usize, sigma: f32) -> Vec<f32> {
    assert!(k % 2 == 1, "Gaussian kernel size must be odd");
    let sigma = if sigma > 0.0 {
        sigma
    } else {
        0.3 * ((k as f32 - 1.0) * 0.5 - 1.0) + 0.8
    };
    let half = (k / 2) as isize;
    let mut kernel: Vec<f32> = (-half..=half)
        .map(|i| (-((i * i) as f32) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f32 = kernel.iter().sum();
    for v in &mut kernel {
        *v /= sum;
    }
    kernel
}

/// Separable Gaussian blur with kernel size `k` and standard deviation
/// `sigma` (`sigma = 0` selects the size-derived default). Border pixels use
/// replicate padding.
pub fn gaussian_blur(img: &GrayImage, k: usize, sigma: f32) -> GrayImage {
    if k <= 1 {
        return img.clone();
    }
    let kernel = gaussian_kernel(k, sigma);
    let half = (k / 2) as isize;
    let (w, h) = (img.width(), img.height());

    // Horizontal pass.
    let mut tmp = vec![0.0f32; w * h];
    tmp.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, out) in row.iter_mut().enumerate() {
            let mut s = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                s += kv * img.get_clamped(x as isize + i as isize - half, y as isize);
            }
            *out = s;
        }
    });
    let tmp_img = GrayImage::from_raw(w, h, tmp);

    // Vertical pass.
    let mut out = vec![0.0f32; w * h];
    out.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, o) in row.iter_mut().enumerate() {
            let mut s = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                s += kv * tmp_img.get_clamped(x as isize, y as isize + i as isize - half);
            }
            *o = s;
        }
    });
    GrayImage::from_raw(w, h, out)
}

/// Sobel gradients: returns `(gx, gy)` response images.
pub fn sobel(img: &GrayImage) -> (GrayImage, GrayImage) {
    let (w, h) = (img.width(), img.height());
    let mut gx = vec![0.0f32; w * h];
    let mut gy = vec![0.0f32; w * h];
    gx.par_chunks_mut(w)
        .zip(gy.par_chunks_mut(w))
        .enumerate()
        .for_each(|(y, (gxr, gyr))| {
            let yi = y as isize;
            for x in 0..w {
                let xi = x as isize;
                let p = |dx: isize, dy: isize| img.get_clamped(xi + dx, yi + dy);
                gxr[x] = (p(1, -1) + 2.0 * p(1, 0) + p(1, 1))
                    - (p(-1, -1) + 2.0 * p(-1, 0) + p(-1, 1));
                gyr[x] = (p(-1, 1) + 2.0 * p(0, 1) + p(1, 1))
                    - (p(-1, -1) + 2.0 * p(0, -1) + p(1, -1));
            }
        });
    (
        GrayImage::from_raw(w, h, gx),
        GrayImage::from_raw(w, h, gy),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        for k in [3, 5, 7, 9] {
            let kern = gaussian_kernel(k, 0.0);
            let sum: f32 = kern.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for i in 0..k / 2 {
                assert!((kern[i] - kern[k - 1 - i]).abs() < 1e-6);
            }
            assert!(kern[k / 2] >= kern[0]);
        }
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_kernel_panics() {
        gaussian_kernel(4, 1.0);
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = GrayImage::from_raw(8, 8, vec![0.37; 64]);
        let b = gaussian_blur(&img, 5, 0.0);
        for &v in b.data() {
            assert!((v - 0.37).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_preserves_mean_energy() {
        // Replicate padding keeps total mass approximately constant for
        // smooth images; check the mean moves by < 1%.
        let img = GrayImage::from_fn(32, 32, |x, y| {
            0.5 + 0.4 * ((x as f32 / 8.0).sin() * (y as f32 / 8.0).cos())
        });
        let b = gaussian_blur(&img, 7, 0.0);
        assert!((img.mean() - b.mean()).abs() < 0.01);
    }

    #[test]
    fn blur_reduces_variance() {
        let img = GrayImage::from_fn(32, 32, |x, y| ((x + y) % 2) as f32);
        let b = gaussian_blur(&img, 5, 0.0);
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.data().iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / im.data().len() as f32
        };
        assert!(var(&b) < var(&img) * 0.2);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let (gx, gy) = sobel(&img);
        // Strong horizontal gradient at the boundary column, none vertically.
        assert!(gx.get(4, 4).abs() > 1.0);
        assert!(gy.get(4, 4).abs() < 1e-5);
    }
}
