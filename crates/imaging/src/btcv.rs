//! Synthetic BTCV-like abdominal CT generator.
//!
//! The BTCV multi-organ challenge (30 subjects, 13 annotated organs, 512²
//! slices) is challenge-gated; this module generates axial-CT-like slice
//! stacks with the same *task shape*: 13 foreground classes laid out in an
//! anatomically-inspired arrangement, per-slice extents that wax and wane
//! along the cranio-caudal axis, per-organ HU-like intensities, and CT noise.
//!
//! Predictions are made slice-by-slice in 2D and re-assembled into a 3D
//! volume, exactly as the paper does for APF on BTCV.

use rayon::prelude::*;

use crate::image::GrayImage;
use crate::noise::fbm;

/// Number of foreground organ classes in BTCV.
pub const NUM_ORGANS: usize = 13;

/// Organ names matching the BTCV label convention (index = class - 1).
pub const ORGAN_NAMES: [&str; NUM_ORGANS] = [
    "spleen",
    "right kidney",
    "left kidney",
    "gallbladder",
    "esophagus",
    "liver",
    "stomach",
    "aorta",
    "inferior vena cava",
    "portal & splenic veins",
    "pancreas",
    "right adrenal gland",
    "left adrenal gland",
];

/// One organ's geometric/intensity template in normalized coordinates
/// (`u, v` in 0..1000, `z` in 0..1 along the scan axis).
#[derive(Debug, Clone, Copy)]
struct OrganTemplate {
    class: u8,
    cu: f32,
    cv: f32,
    /// Semi-axes of the base ellipse.
    ru: f32,
    rv: f32,
    /// Slice range where the organ exists.
    z0: f32,
    z1: f32,
    /// Base intensity in [0, 1] (CT window normalized).
    intensity: f32,
}

/// The fixed abdominal layout. Positions are loosely anatomical: liver on
/// the patient's right (image left), spleen opposite, kidneys posterior,
/// aorta/IVC midline, etc. Draw order = template order; later entries paint
/// over earlier ones.
const LAYOUT: [OrganTemplate; NUM_ORGANS] = [
    OrganTemplate { class: 6, cu: 360.0, cv: 430.0, ru: 230.0, rv: 190.0, z0: 0.05, z1: 0.70, intensity: 0.58 }, // liver
    OrganTemplate { class: 7, cu: 620.0, cv: 470.0, ru: 150.0, rv: 120.0, z0: 0.15, z1: 0.75, intensity: 0.42 }, // stomach
    OrganTemplate { class: 1, cu: 720.0, cv: 380.0, ru: 110.0, rv: 90.0, z0: 0.10, z1: 0.55, intensity: 0.52 },  // spleen
    OrganTemplate { class: 2, cu: 380.0, cv: 640.0, ru: 80.0, rv: 65.0, z0: 0.35, z1: 0.85, intensity: 0.50 },   // right kidney
    OrganTemplate { class: 3, cu: 650.0, cv: 640.0, ru: 80.0, rv: 65.0, z0: 0.35, z1: 0.85, intensity: 0.50 },   // left kidney
    OrganTemplate { class: 4, cu: 460.0, cv: 500.0, ru: 45.0, rv: 35.0, z0: 0.30, z1: 0.60, intensity: 0.30 },   // gallbladder
    OrganTemplate { class: 5, cu: 510.0, cv: 560.0, ru: 25.0, rv: 25.0, z0: 0.00, z1: 0.35, intensity: 0.38 },   // esophagus
    OrganTemplate { class: 8, cu: 530.0, cv: 610.0, ru: 32.0, rv: 32.0, z0: 0.00, z1: 1.00, intensity: 0.72 },   // aorta
    OrganTemplate { class: 9, cu: 470.0, cv: 600.0, ru: 28.0, rv: 28.0, z0: 0.00, z1: 1.00, intensity: 0.62 },   // IVC
    OrganTemplate { class: 10, cu: 560.0, cv: 520.0, ru: 70.0, rv: 22.0, z0: 0.25, z1: 0.60, intensity: 0.60 },  // portal veins
    OrganTemplate { class: 11, cu: 540.0, cv: 555.0, ru: 110.0, rv: 35.0, z0: 0.40, z1: 0.70, intensity: 0.46 }, // pancreas
    OrganTemplate { class: 12, cu: 420.0, cv: 565.0, ru: 25.0, rv: 15.0, z0: 0.30, z1: 0.50, intensity: 0.44 },  // right adrenal
    OrganTemplate { class: 13, cu: 610.0, cv: 565.0, ru: 25.0, rv: 15.0, z0: 0.30, z1: 0.50, intensity: 0.44 },  // left adrenal
];

/// One CT slice with per-pixel class labels (0 = background).
#[derive(Debug, Clone)]
pub struct CtSlice {
    /// Normalized CT intensity image.
    pub image: GrayImage,
    /// Row-major class labels, 0..=13.
    pub labels: Vec<u8>,
}

impl CtSlice {
    /// Binary mask of one organ class (1..=13).
    pub fn class_mask(&self, class: u8) -> GrayImage {
        let w = self.image.width();
        let h = self.image.height();
        GrayImage::from_raw(
            w,
            h,
            self.labels.iter().map(|&l| if l == class { 1.0 } else { 0.0 }).collect(),
        )
    }
}

/// Configuration for the BTCV-like generator.
#[derive(Debug, Clone)]
pub struct BtcvConfig {
    /// Square slice resolution (BTCV is 512).
    pub resolution: usize,
    /// Slices per subject (BTCV has 80 - 225).
    pub slices: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for BtcvConfig {
    fn default() -> Self {
        BtcvConfig { resolution: 512, slices: 96, seed: 0xB7C4 }
    }
}

impl BtcvConfig {
    /// Scaled-down configuration for fast experiments.
    pub fn small(resolution: usize, slices: usize) -> Self {
        BtcvConfig { resolution, slices, seed: 0xB7C4 }
    }
}

/// Deterministic generator of BTCV-like subjects.
pub struct BtcvGenerator {
    cfg: BtcvConfig,
}

impl BtcvGenerator {
    /// Creates a generator from a configuration.
    pub fn new(cfg: BtcvConfig) -> Self {
        BtcvGenerator { cfg }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &BtcvConfig {
        &self.cfg
    }

    /// Generates one slice of one subject. `slice_idx` must be below
    /// `cfg.slices`.
    pub fn slice(&self, subject: usize, slice_idx: usize) -> CtSlice {
        assert!(slice_idx < self.cfg.slices, "slice index out of range");
        let res = self.cfg.resolution;
        let z = (slice_idx as f32 + 0.5) / self.cfg.slices as f32;
        let seed = self
            .cfg
            .seed
            .wrapping_add(subject as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Subject-specific anatomy jitter: organs shift and scale a little.
        let jitter = |t: &OrganTemplate| {
            let ju = (fbm(seed ^ (t.class as u64), 1.0, 2.0, 1.0, 1, 0.5) - 0.5) * 60.0;
            let jv = (fbm(seed ^ (t.class as u64), 9.0, 4.0, 1.0, 1, 0.5) - 0.5) * 60.0;
            let js = 0.85 + 0.3 * fbm(seed ^ (t.class as u64), 3.0, 8.0, 1.0, 1, 0.5);
            (ju, jv, js)
        };
        let organs: Vec<(OrganTemplate, f32, f32, f32)> =
            LAYOUT.iter().map(|t| (*t, jitter(t).0, jitter(t).1, jitter(t).2)).collect();

        let inv = 1000.0 / res as f32;
        let mut img = vec![0.0f32; res * res];
        let mut labels = vec![0u8; res * res];
        img.par_chunks_mut(res)
            .zip(labels.par_chunks_mut(res))
            .enumerate()
            .for_each(|(y, (irow, lrow))| {
                let v = y as f32 * inv;
                for x in 0..res {
                    let u = x as f32 * inv;
                    let (pix, label) = Self::shade(seed, u, v, z, &organs);
                    irow[x] = pix;
                    lrow[x] = label;
                }
            });
        CtSlice {
            image: GrayImage::from_raw(res, res, img),
            labels,
        }
    }

    /// Generates a full subject: all slices, cranio-caudal order.
    pub fn subject(&self, subject: usize) -> Vec<CtSlice> {
        (0..self.cfg.slices).map(|i| self.slice(subject, i)).collect()
    }

    #[inline]
    fn shade(seed: u64, u: f32, v: f32, z: f32, organs: &[(OrganTemplate, f32, f32, f32)]) -> (f32, u8) {
        // Body cross-section: a large soft ellipse.
        let bu = (u - 500.0) / 430.0;
        let bv = (v - 520.0) / 340.0;
        let body = bu * bu + bv * bv;
        if body > 1.0 {
            return (0.02, 0); // air
        }

        // Soft-tissue base with CT-like noise, plus a fat rim near the skin.
        let mut pix = 0.34 + 0.05 * fbm(seed ^ 0xC7, u, v, 40.0, 3, 0.5);
        if body > 0.82 {
            pix = 0.22 + 0.03 * fbm(seed ^ 0xFA7, u, v, 30.0, 2, 0.5);
        }
        let mut label = 0u8;

        for (t, ju, jv, js) in organs {
            if z < t.z0 || z > t.z1 {
                continue;
            }
            // Organ extent waxes/wanes along z like a lens.
            let zt = (z - t.z0) / (t.z1 - t.z0);
            let scale = (std::f32::consts::PI * zt).sin().max(0.0) * js;
            if scale < 0.15 {
                continue;
            }
            let du = (u - (t.cu + ju)) / (t.ru * scale);
            let dv = (v - (t.cv + jv)) / (t.rv * scale);
            let d = du * du + dv * dv;
            // Wobbly boundary.
            let wob = 1.0 + (fbm(seed ^ (t.class as u64 * 131), u, v, 60.0, 2, 0.5) - 0.5) * 0.35;
            if d < wob {
                label = t.class;
                pix = t.intensity + 0.04 * fbm(seed ^ (t.class as u64 * 977), u, v, 25.0, 3, 0.5);
            }
        }
        (pix.clamp(0.0, 1.0), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_subject_dependent() {
        let gen = BtcvGenerator::new(BtcvConfig::small(64, 8));
        let a = gen.slice(0, 4);
        let b = gen.slice(0, 4);
        assert_eq!(a.image.data(), b.image.data());
        assert_eq!(a.labels, b.labels);
        let c = gen.slice(1, 4);
        assert_ne!(a.image.data(), c.image.data());
    }

    #[test]
    fn labels_in_range_and_multiclass() {
        let gen = BtcvGenerator::new(BtcvConfig::small(128, 16));
        let mid = gen.slice(0, 8);
        let mut present = [false; NUM_ORGANS + 1];
        for &l in &mid.labels {
            assert!(l as usize <= NUM_ORGANS);
            present[l as usize] = true;
        }
        let organ_count = present[1..].iter().filter(|&&p| p).count();
        assert!(organ_count >= 5, "only {} organs visible mid-scan", organ_count);
    }

    #[test]
    fn organ_extent_varies_along_z() {
        // The liver (class 6) should be larger mid-range than near its
        // z-extent boundaries.
        let gen = BtcvGenerator::new(BtcvConfig::small(96, 20));
        let count = |s: &CtSlice| s.labels.iter().filter(|&&l| l == 6).count();
        let near_start = count(&gen.slice(0, 2));
        let mid = count(&gen.slice(0, 7));
        assert!(mid > near_start, "liver mid {} <= start {}", mid, near_start);
    }

    #[test]
    fn class_mask_is_binary() {
        let gen = BtcvGenerator::new(BtcvConfig::small(64, 8));
        let s = gen.slice(2, 4);
        let m = s.class_mask(6);
        for &v in m.data() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn subject_has_expected_slices() {
        let gen = BtcvGenerator::new(BtcvConfig::small(32, 5));
        assert_eq!(gen.subject(0).len(), 5);
    }

    #[test]
    fn organ_names_cover_all_classes() {
        assert_eq!(ORGAN_NAMES.len(), NUM_ORGANS);
        let classes: Vec<u8> = LAYOUT.iter().map(|t| t.class).collect();
        for c in 1..=NUM_ORGANS as u8 {
            assert!(classes.contains(&c), "class {} missing from layout", c);
        }
    }
}
