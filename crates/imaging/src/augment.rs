//! Deterministic data augmentation for segmentation training.
//!
//! The paper trains for hundreds of epochs on shuffled, normalized data;
//! at the scaled-down data sizes of this reproduction, geometric
//! augmentation is the main lever against overfitting. All transforms are
//! exact (no interpolation), so an image and its mask stay perfectly
//! aligned through the same [`Augmentation`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::image::GrayImage;

/// One concrete augmentation, applicable identically to image and mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augmentation {
    /// Mirror left-right.
    pub flip_h: bool,
    /// Mirror top-bottom.
    pub flip_v: bool,
    /// Quarter-turns counter-clockwise (0..=3). Requires square images for
    /// odd turns.
    pub rot90: u8,
}

impl Augmentation {
    /// The identity augmentation.
    pub fn identity() -> Self {
        Augmentation { flip_h: false, flip_v: false, rot90: 0 }
    }

    /// Samples one of the 8 dihedral symmetries, deterministic in `seed`.
    pub fn random(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Augmentation {
            flip_h: rng.gen(),
            flip_v: rng.gen(),
            rot90: rng.gen_range(0..4),
        }
    }

    /// Applies the augmentation (exact pixel moves, no resampling).
    pub fn apply(&self, img: &GrayImage) -> GrayImage {
        let mut out = img.clone();
        if self.flip_h {
            out = flip_horizontal(&out);
        }
        if self.flip_v {
            out = flip_vertical(&out);
        }
        for _ in 0..self.rot90 % 4 {
            out = rotate90(&out);
        }
        out
    }
}

/// Mirrors left-right.
pub fn flip_horizontal(img: &GrayImage) -> GrayImage {
    let (w, h) = (img.width(), img.height());
    GrayImage::from_fn(w, h, |x, y| img.get(w - 1 - x, y))
}

/// Mirrors top-bottom.
pub fn flip_vertical(img: &GrayImage) -> GrayImage {
    let (w, h) = (img.width(), img.height());
    GrayImage::from_fn(w, h, |x, y| img.get(x, h - 1 - y))
}

/// Rotates 90 degrees counter-clockwise.
pub fn rotate90(img: &GrayImage) -> GrayImage {
    let (w, h) = (img.width(), img.height());
    GrayImage::from_fn(h, w, |x, y| img.get(w - 1 - y, x))
}

/// Multiplies intensities by `gain` and adds `bias`, clamped to `[0, 1]` —
/// for images only, never masks.
pub fn intensity_jitter(img: &GrayImage, gain: f32, bias: f32) -> GrayImage {
    GrayImage::from_raw(
        img.width(),
        img.height(),
        img.data().iter().map(|&v| (v * gain + bias).clamp(0.0, 1.0)).collect(),
    )
}

/// Expands `(image, mask)` pairs with `n_aug` random dihedral augmentations
/// each (the originals are kept first). Deterministic in `seed`.
pub fn augment_pairs(
    pairs: &[(GrayImage, GrayImage)],
    n_aug: usize,
    seed: u64,
) -> Vec<(GrayImage, GrayImage)> {
    let mut out = Vec::with_capacity(pairs.len() * (1 + n_aug));
    out.extend(pairs.iter().cloned());
    for (i, (img, mask)) in pairs.iter().enumerate() {
        for a in 0..n_aug {
            let aug = Augmentation::random(seed.wrapping_add((i * 131 + a) as u64));
            out.push((aug.apply(img), aug.apply(mask)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_img() -> GrayImage {
        GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as f32 / 15.0)
    }

    #[test]
    fn flips_are_involutions() {
        let img = grad_img();
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
    }

    #[test]
    fn four_rotations_are_identity() {
        let img = grad_img();
        let mut r = img.clone();
        for _ in 0..4 {
            r = rotate90(&r);
        }
        assert_eq!(r, img);
    }

    #[test]
    fn rotate90_moves_corner_correctly() {
        // Pixel (w-1, 0) (top-right) moves to (0, 0) under CCW rotation.
        let img = grad_img();
        let r = rotate90(&img);
        assert_eq!(r.get(0, 0), img.get(3, 0));
    }

    #[test]
    fn augmentation_is_deterministic_and_aligned() {
        let img = grad_img();
        let mask = GrayImage::from_fn(4, 4, |x, _| if x < 2 { 1.0 } else { 0.0 });
        let a = Augmentation::random(7);
        let (i1, m1) = (a.apply(&img), a.apply(&mask));
        let (i2, m2) = (a.apply(&img), a.apply(&mask));
        assert_eq!(i1, i2);
        assert_eq!(m1, m2);
        // Alignment: wherever the mask moved, the image moved identically —
        // check by inverting through a known pixel.
        assert_eq!(m1.coverage(0.5), mask.coverage(0.5));
    }

    #[test]
    fn augment_pairs_multiplies_dataset() {
        let pairs = vec![(grad_img(), grad_img())];
        let out = augment_pairs(&pairs, 3, 1);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].0, pairs[0].0); // originals kept first
    }

    #[test]
    fn intensity_jitter_clamps_and_preserves_shape() {
        let img = grad_img();
        let j = intensity_jitter(&img, 2.0, 0.1);
        assert_eq!(j.width(), 4);
        let (lo, hi) = j.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
    }
}
