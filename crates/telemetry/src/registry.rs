//! The metrics registry and the [`Telemetry`] facade.
//!
//! A [`Telemetry`] is either **enabled** (backed by a shared registry and a
//! trace sink) or **disabled** (a null pointer in a trench coat). Handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) hold `Option<Arc<..>>` storage:
//! from a disabled telemetry every handle is `None`, so the hot-path cost of
//! instrumentation is a single branch on an already-loaded pointer — no
//! clock reads, no atomics, no allocation. This is what lets the
//! `telemetry_overhead` gate demand <2% on a real workload.
//!
//! The registry itself takes a `Mutex` only at **registration** time
//! (typically once per process per metric); recording goes straight to the
//! atomic storage behind the handle. Registering the same `(name, labels)`
//! pair twice returns a handle to the same storage, so components can be
//! instantiated repeatedly without double-counting metric families.

use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

use crate::flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::histogram::{HistTimer, HistogramCore, HistogramSnapshot};
use crate::span::{SpanGuard, TraceContext, TraceEvent, TraceSink};

/// Label set attached to a metric: `(key, value)` pairs, order-significant.
pub type Labels = Vec<(&'static str, String)>;

/// Unit suffixes a histogram name may end with. Histograms are the metrics
/// whose *observations* carry a unit, so the convention demands one in the
/// name; counters end in `_total` and gauges name a quantity directly.
pub const HISTOGRAM_UNIT_SUFFIXES: &[&str] =
    &["_seconds", "_bytes", "_tokens", "_levels", "_count", "_ratio"];

/// Checks a metric name against the workspace convention
/// `apf_<crate>_<name>[_<unit>]`:
///
/// * every name starts with `apf_` and has a crate segment after it;
/// * histogram names end with a unit from [`HISTOGRAM_UNIT_SUFFIXES`]
///   (e.g. `apf_gigapixel_tile_read_seconds`), and never with `_total`,
///   which is the counter suffix.
///
/// Registration runs this under `debug_assertions`; it is public so tests
/// and external linters can check candidate names without a registry.
pub fn lint_metric_name(name: &str, is_histogram: bool) -> Result<(), String> {
    let rest = name.strip_prefix("apf_").ok_or_else(|| {
        format!("metric names follow the apf_<crate>_<name>_<unit> convention: {name}")
    })?;
    let mut segments = rest.split('_');
    if segments.next().is_none_or(str::is_empty) || segments.next().is_none_or(str::is_empty) {
        return Err(format!(
            "metric name needs a crate segment and a name after apf_: {name}"
        ));
    }
    if is_histogram {
        if name.ends_with("_total") {
            return Err(format!(
                "histogram {name} ends with the counter suffix _total; name the observed unit instead"
            ));
        }
        if !HISTOGRAM_UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            return Err(format!(
                "histogram {name} must end with a unit suffix ({})",
                HISTOGRAM_UNIT_SUFFIXES.join(", ")
            ));
        }
    }
    Ok(())
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Storage {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

struct MetricEntry {
    name: &'static str,
    labels: Labels,
    help: &'static str,
    kind: Kind,
    storage: Storage,
}

struct Inner {
    metrics: Mutex<Vec<MetricEntry>>,
    sink: TraceSink,
    flight: FlightRecorder,
    /// Live trace-sampling rate in `[0, 1]`, stored as f64 bits so the
    /// admin plane can retune it without a lock.
    sampling_bits: AtomicU64,
}

impl Inner {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<MetricEntry>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared telemetry facade: cloning is cheap and every clone talks to the
/// same registry and trace sink.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("metrics", &inner.lock().len())
                .field("trace_events", &inner.sink.len())
                .finish(),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

/// Default trace-sink capacity for [`Telemetry::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Process-global registry slot (see [`Telemetry::install_global`]).
static GLOBAL: std::sync::OnceLock<Telemetry> = std::sync::OnceLock::new();

impl Telemetry {
    /// An enabled telemetry with the default trace-sink capacity.
    pub fn enabled() -> Self {
        Telemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled telemetry retaining at most `capacity` spans.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(Vec::new()),
                sink: TraceSink::new(capacity),
                flight: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
                sampling_bits: AtomicU64::new(1.0f64.to_bits()),
            })),
        }
    }

    /// A disabled telemetry: every handle it creates is inert and costs one
    /// branch per use.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this telemetry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs `tel` as the process-global registry that free functions
    /// (e.g. the `apf-tensor` kernels) report into. First install wins;
    /// returns `false` if a global was already set. Installing a disabled
    /// telemetry is allowed and pins the process to "no kernel metrics".
    pub fn install_global(tel: Telemetry) -> bool {
        GLOBAL.set(tel).is_ok()
    }

    /// The process-global registry, if one has been installed. Costs one
    /// atomic load; callers on hot paths should cache the handles they
    /// register, not this lookup's result.
    pub fn global() -> Option<&'static Telemetry> {
        GLOBAL.get()
    }

    fn register<S>(
        &self,
        name: &'static str,
        labels: Labels,
        help: &'static str,
        kind: Kind,
        make: impl FnOnce() -> Storage,
        extract: impl Fn(&Storage) -> Option<S>,
    ) -> Option<S> {
        let inner = self.inner.as_ref()?;
        #[cfg(debug_assertions)]
        if let Err(violation) = lint_metric_name(name, kind == Kind::Histogram) {
            panic!("{violation}");
        }
        let mut metrics = inner.lock();
        if let Some(existing) = metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
        {
            assert!(
                existing.kind == kind,
                "metric {name} re-registered as {} (was {})",
                kind.as_str(),
                existing.kind.as_str()
            );
            return extract(&existing.storage);
        }
        let storage = make();
        let handle = extract(&storage);
        metrics.push(MetricEntry { name, labels, help, kind, storage });
        handle
    }

    /// Registers (or re-attaches to) a monotonically increasing counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, Vec::new(), help)
    }

    /// Labelled variant of [`Telemetry::counter`].
    pub fn counter_with(&self, name: &'static str, labels: Labels, help: &'static str) -> Counter {
        Counter {
            cell: self.register(
                name,
                labels,
                help,
                Kind::Counter,
                || Storage::Counter(Arc::new(AtomicU64::new(0))),
                |s| match s {
                    Storage::Counter(c) => Some(Arc::clone(c)),
                    _ => None,
                },
            ),
        }
    }

    /// Registers (or re-attaches to) an f64 gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, Vec::new(), help)
    }

    /// Labelled variant of [`Telemetry::gauge`].
    pub fn gauge_with(&self, name: &'static str, labels: Labels, help: &'static str) -> Gauge {
        Gauge {
            bits: self.register(
                name,
                labels,
                help,
                Kind::Gauge,
                || Storage::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
                |s| match s {
                    Storage::Gauge(g) => Some(Arc::clone(g)),
                    _ => None,
                },
            ),
        }
    }

    /// Registers (or re-attaches to) a log-bucketed histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, Vec::new(), help)
    }

    /// Labelled variant of [`Telemetry::histogram`].
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: Labels,
        help: &'static str,
    ) -> Histogram {
        Histogram {
            core: self.register(
                name,
                labels,
                help,
                Kind::Histogram,
                || Storage::Histogram(Arc::new(HistogramCore::new())),
                |s| match s {
                    Storage::Histogram(h) => Some(Arc::clone(h)),
                    _ => None,
                },
            ),
        }
    }

    /// Opens a span named `"<crate>.<operation>"`; closes (and records)
    /// when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard::enter(&inner.sink, name, None, None),
            None => SpanGuard::noop(),
        }
    }

    /// Like [`Telemetry::span`] but tagged with a correlation id (e.g. a
    /// request id) so one request's span tree can be picked out of a trace.
    pub fn span_id(&self, name: &'static str, id: u64) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard::enter(&inner.sink, name, Some(id), None),
            None => SpanGuard::noop(),
        }
    }

    /// Like [`Telemetry::span_id`] but carrying a short static scheduling
    /// note (`"steal"`, `"retry"`, ...) rendered into the trace args.
    pub fn span_noted(&self, name: &'static str, id: u64, note: &'static str) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard::enter(&inner.sink, name, Some(id), Some(note)),
            None => SpanGuard::noop(),
        }
    }

    /// Records a zero-duration annotation event at the calling thread's
    /// current trace position (e.g. `resumed_from` links).
    pub fn annotate(&self, name: &'static str, id: Option<u64>, note: Option<&'static str>) {
        if let Some(inner) = &self.inner {
            inner.sink.annotate(name, id, note);
        }
    }

    /// Mints a [`TraceContext`] for a brand-new request, applying the live
    /// sampling rate (deterministically, per trace id). `None` when
    /// disabled — disabled telemetry originates no traces.
    pub fn new_trace(&self) -> Option<TraceContext> {
        let inner = self.inner.as_ref()?;
        let rate = f64::from_bits(inner.sampling_bits.load(Ordering::Relaxed));
        let ctx = TraceContext::new_root(true);
        let sampled = if rate >= 1.0 {
            true
        } else if rate <= 0.0 {
            false
        } else {
            // Fibonacci-hash the trace id into [0, 1): the keep/drop
            // decision is a pure function of the id, so every participant
            // that sees the id agrees without coordination.
            let h = ctx.trace_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
        };
        Some(TraceContext { sampled, ..ctx })
    }

    /// Sets the live trace-sampling rate (clamped to `[0, 1]`). Affects
    /// traces minted by [`Telemetry::new_trace`] from now on.
    pub fn set_trace_sampling(&self, rate: f64) {
        if let Some(inner) = &self.inner {
            let clamped = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 1.0 };
            inner.sampling_bits.store(clamped.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current trace-sampling rate (1.0 when disabled — a disabled
    /// telemetry has nothing to sample).
    pub fn trace_sampling(&self) -> f64 {
        match &self.inner {
            Some(inner) => f64::from_bits(inner.sampling_bits.load(Ordering::Relaxed)),
            None => 1.0,
        }
    }

    /// Records a structured flight-recorder event. The detail closure is
    /// only evaluated when the telemetry is enabled, so a disabled handle
    /// costs one branch.
    pub fn flight(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            inner.flight.record(kind, detail());
        }
    }

    /// The retained flight-recorder window, oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => inner.flight.events(),
            None => Vec::new(),
        }
    }

    /// The flight-recorder window as JSON lines (empty when disabled).
    pub fn flight_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => inner.flight.to_jsonl(),
            None => String::new(),
        }
    }

    /// Flight events dropped by the ring bound so far.
    pub fn flight_dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.flight.dropped(),
            None => 0,
        }
    }

    /// Dumps the flight-recorder window to `<dir>/flight_<label>.jsonl`
    /// (atomic temp + rename). `None` when disabled.
    pub fn dump_flight(
        &self,
        dir: &std::path::Path,
        label: &str,
    ) -> Option<std::io::Result<std::path::PathBuf>> {
        self.inner.as_ref().map(|i| i.flight.dump_to(dir, label))
    }

    /// Completed spans retained by the ring, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.sink.events(),
            None => Vec::new(),
        }
    }

    /// Spans as Chrome `trace_event` JSON lines (empty string if disabled).
    pub fn trace_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => inner.sink.to_jsonl(),
            None => String::new(),
        }
    }

    /// Spans as one JSON document the Chrome trace viewer loads directly
    /// (`{"traceEvents": [...]}`); an empty document when disabled.
    pub fn chrome_trace_json(&self) -> String {
        let events: Vec<String> = self.trace_events().iter().map(TraceEvent::to_json).collect();
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Spans evicted from the bounded trace ring so far.
    pub fn trace_evicted(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.sink.evicted(),
            None => 0,
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut metrics = Vec::new();
        if let Some(inner) = &self.inner {
            for m in inner.lock().iter() {
                let (value, histogram) = match &m.storage {
                    Storage::Counter(c) => (c.load(Ordering::Relaxed) as f64, None),
                    Storage::Gauge(g) => (f64::from_bits(g.load(Ordering::Relaxed)), None),
                    Storage::Histogram(h) => (h.count() as f64, Some(h.snapshot())),
                };
                metrics.push(MetricSnapshot {
                    name: m.name.to_string(),
                    labels: m
                        .labels
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                    kind: m.kind.as_str().to_string(),
                    help: m.help.to_string(),
                    value,
                    histogram,
                });
            }
        }
        TelemetrySnapshot { metrics }
    }

    /// Prometheus text exposition (format 0.0.4). Histograms are rendered
    /// as summaries: `_count`, `_sum`, and `quantile`-labelled sample lines
    /// for p50/p95/p99, plus `_min`/`_max` gauges.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        // Label values are short identifiers in this codebase; escape the
        // three characters the exposition format cares about anyway.
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(ch),
            }
        }
        out.push('"');
    }
    out.push('}');
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One metric frozen at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct MetricSnapshot {
    /// Metric name (`apf_<crate>_<name>_<unit>`).
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Help text.
    pub help: String,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: f64,
    /// Bucket data for histograms.
    pub histogram: Option<HistogramSnapshot>,
}

/// Every registered metric at a point in time.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Snapshot entries in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl TelemetrySnapshot {
    /// Finds a metric by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// The snapshot as one self-contained JSON object (for the admin
    /// plane's JSON metrics op; validated by [`crate::jsonl::validate_json`]
    /// in tests). Histograms carry count/sum/quantiles inline.
    pub fn render_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() { fmt_value(v) } else { "null".to_string() }
        }
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\"",
                crate::flight::escape_json(&m.name),
                m.kind
            ));
            if !m.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{}\":\"{}\"",
                        crate::flight::escape_json(k),
                        crate::flight::escape_json(v)
                    ));
                }
                out.push('}');
            }
            match &m.histogram {
                None => out.push_str(&format!(",\"value\":{}", num(m.value))),
                Some(h) => out.push_str(&format!(
                    ",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{}",
                    h.count,
                    num(h.sum),
                    num(h.quantile(0.5)),
                    num(h.quantile(0.95)),
                    num(h.quantile(0.99)),
                    num(h.min),
                    num(h.max)
                )),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition of the snapshot.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen_header: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen_header.contains(&m.name.as_str()) {
                seen_header.push(&m.name);
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                let ty = if m.kind == "histogram" { "summary" } else { &m.kind };
                out.push_str(&format!("# TYPE {} {}\n", m.name, ty));
            }
            match &m.histogram {
                None => {
                    out.push_str(&m.name);
                    render_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&fmt_value(m.value));
                    out.push('\n');
                }
                Some(h) => {
                    for (q, qs) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        out.push_str(&m.name);
                        render_labels(&mut out, &m.labels, Some(("quantile", qs)));
                        out.push(' ');
                        out.push_str(&fmt_value(h.quantile(q)));
                        out.push('\n');
                    }
                    for (suffix, v) in [
                        ("_sum", h.sum),
                        ("_count", h.count as f64),
                        ("_min", h.min),
                        ("_max", h.max),
                    ] {
                        out.push_str(&m.name);
                        out.push_str(suffix);
                        render_labels(&mut out, &m.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_value(v));
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

/// Handle to a monotonically increasing counter; inert when its telemetry
/// is disabled.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// An inert counter (what a disabled telemetry hands out).
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when inert).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to an f64 gauge; inert when its telemetry is disabled.
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// An inert gauge.
    pub fn noop() -> Self {
        Gauge { bits: None }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(b) = &self.bits {
            b.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0 when inert).
    pub fn get(&self) -> f64 {
        self.bits
            .as_ref()
            .map_or(0.0, |b| f64::from_bits(b.load(Ordering::Relaxed)))
    }
}

/// Handle to a log-bucketed histogram; inert when its telemetry is
/// disabled.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// An inert histogram.
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    /// Records one observation (lock-free).
    #[inline]
    pub fn record(&self, v: f64) {
        if let Some(c) = &self.core {
            c.record(v);
        }
    }

    /// Starts a timer that records elapsed **seconds** on drop. Inert
    /// handles return a timer that never reads the clock.
    #[inline]
    pub fn start_timer(&self) -> HistTimer {
        HistTimer::new(self.core.as_ref().map(Arc::clone))
    }

    /// Observation count (0 when inert).
    pub fn count(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.count())
    }

    /// Frozen copy of the distribution (empty when inert).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let t = Telemetry::disabled();
        let c = t.counter("apf_test_ops_total", "ops");
        let g = t.gauge("apf_test_depth", "depth");
        let h = t.histogram("apf_test_latency_seconds", "latency");
        c.inc();
        g.set(5.0);
        h.record(1.0);
        drop(h.start_timer());
        drop(t.span("test.noop"));
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(t.trace_events().is_empty());
        assert!(t.snapshot().metrics.is_empty());
        assert_eq!(format!("{t:?}"), "Telemetry(disabled)");
    }

    #[test]
    fn reregistration_shares_storage() {
        let t = Telemetry::enabled();
        let a = t.counter("apf_test_ops_total", "ops");
        let b = t.counter("apf_test_ops_total", "ops");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
        // Distinct labels get distinct storage.
        let l1 = t.counter_with(
            "apf_test_tier_total",
            vec![("tier", "full".to_string())],
            "per-tier",
        );
        let l2 = t.counter_with(
            "apf_test_tier_total",
            vec![("tier", "coarse".to_string())],
            "per-tier",
        );
        l1.inc();
        assert_eq!(l1.get(), 1);
        assert_eq!(l2.get(), 0);
        assert_eq!(t.snapshot().metrics.len(), 3);
    }

    #[test]
    fn prometheus_exposition_has_prefix_and_quantiles() {
        let t = Telemetry::enabled();
        t.counter("apf_test_ops_total", "ops").add(5);
        t.gauge("apf_test_queue_depth", "queue").set(2.0);
        let h = t.histogram_with(
            "apf_test_latency_seconds",
            vec![("phase", "forward".to_string())],
            "latency",
        );
        for i in 1..=10 {
            h.record(i as f64 * 0.01);
        }
        let text = t.render_prometheus();
        for line in text.lines() {
            let metric_line = line.strip_prefix("# HELP ").or_else(|| line.strip_prefix("# TYPE ")).unwrap_or(line);
            assert!(
                metric_line.starts_with("apf_"),
                "unprefixed exposition line: {line}"
            );
        }
        assert!(text.contains("apf_test_ops_total 5"));
        assert!(text.contains("apf_test_queue_depth 2"));
        assert!(text.contains("apf_test_latency_seconds{phase=\"forward\",quantile=\"0.5\"}"));
        assert!(text.contains("apf_test_latency_seconds_count{phase=\"forward\"} 10"));
        assert!(text.contains("# TYPE apf_test_latency_seconds summary"));
    }

    #[test]
    fn snapshot_get_and_span_ids() {
        let t = Telemetry::enabled();
        t.counter_with(
            "apf_test_tier_total",
            vec![("tier", "full".to_string())],
            "per-tier",
        )
        .add(4);
        let snap = t.snapshot();
        let m = snap.get("apf_test_tier_total", &[("tier", "full")]).unwrap();
        assert_eq!(m.value, 4.0);
        assert!(snap.get("apf_test_tier_total", &[("tier", "coarse")]).is_none());

        drop(t.span_id("test.req", 42));
        let evs = t.trace_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, Some(42));
    }

    #[test]
    fn lint_accepts_workspace_metric_names() {
        // A sample of real names from every crate, including the gigapixel
        // subsystem's families.
        for (name, is_hist) in [
            ("apf_serve_requests_total", false),
            ("apf_serve_inference_latency_seconds", true),
            ("apf_core_sequence_len_post_tokens", true),
            ("apf_core_tree_leaf_count", true),
            ("apf_core_tree_max_depth_levels", true),
            ("apf_gigapixel_cache_hits_total", false),
            ("apf_gigapixel_resident_bytes", false),
            ("apf_gigapixel_tile_read_seconds", true),
            ("apf_gigapixel_tree_build_seconds", true),
            ("apf_gigapixel_window_seconds", true),
            // The wire door's once-atomic-only counters, registered in PR 8.
            ("apf_serve_wire_quota_checked_total", false),
            ("apf_serve_wire_admin_total", false),
            ("apf_serve_wire_drains_total", false),
            ("apf_serve_wire_draining", false),
            ("apf_serve_wire_drain_connections", false),
        ] {
            lint_metric_name(name, is_hist).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn lint_rejects_convention_violations() {
        // Missing prefix.
        assert!(lint_metric_name("gigapixel_tile_read_seconds", true)
            .unwrap_err()
            .contains("apf_<crate>"));
        // Prefix but no crate/name segments.
        assert!(lint_metric_name("apf_", false).is_err());
        assert!(lint_metric_name("apf_gigapixel", false).is_err());
        // Histogram without a unit suffix.
        let err = lint_metric_name("apf_gigapixel_tile_read", true).unwrap_err();
        assert!(err.contains("unit suffix"), "{err}");
        // Histogram wearing the counter suffix.
        let err = lint_metric_name("apf_gigapixel_windows_total", true).unwrap_err();
        assert!(err.contains("_total"), "{err}");
        // The same names are fine as non-histograms.
        assert!(lint_metric_name("apf_gigapixel_windows_total", false).is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unit suffix")]
    fn registering_a_unitless_histogram_panics_in_debug() {
        let t = Telemetry::enabled();
        let _ = t.histogram("apf_gigapixel_tile_read_millis", "bad unit");
    }

    #[test]
    fn global_install_is_first_wins() {
        let t = Telemetry::enabled();
        t.counter("apf_test_global_total", "marker").inc();
        // First install claims the slot (another test in this binary cannot
        // have installed first: this is the only installer).
        assert!(Telemetry::install_global(t));
        let g = Telemetry::global().expect("global just installed");
        assert_eq!(g.snapshot().get("apf_test_global_total", &[]).unwrap().value, 1.0);
        // Second install loses and mutates nothing.
        assert!(!Telemetry::install_global(Telemetry::disabled()));
        assert!(Telemetry::global().unwrap().is_enabled());
    }
}
