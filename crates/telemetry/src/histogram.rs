//! Log-bucketed histograms with atomic recording and quantile estimation.
//!
//! Values land in buckets whose upper edges grow geometrically: [`SUB_BUCKETS`]
//! buckets per factor of two, starting at [`MIN_VALUE`]. The bucket array is
//! fixed-size, so recording is one `fetch_add` on an `AtomicU64` plus a few
//! CAS updates for sum/min/max — no locks, no allocation, safe from any
//! thread. Quantiles (p50/p95/p99) are estimated by walking the cumulative
//! counts; the estimate is exact to within one log-bucket of the true order
//! statistic, which for 4 sub-buckets per octave means a relative error
//! bound of 2^(1/4) ≈ 19%.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::Serialize;

/// Smallest value with its own bucket; everything at or below it (including
/// zero and negatives) lands in bucket 0.
pub const MIN_VALUE: f64 = 1e-9;
/// Buckets per factor of two.
pub const SUB_BUCKETS: usize = 4;
/// Powers of two covered above [`MIN_VALUE`] (1e-9 · 2^64 ≈ 1.8e10).
pub const OCTAVES: usize = 64;
/// Total bucket count: bucket 0 (underflow) + the log grid + overflow.
pub const NUM_BUCKETS: usize = OCTAVES * SUB_BUCKETS + 2;

/// Bucket index a value is recorded into.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= MIN_VALUE {
        // NaN, negatives, zero, and tiny values all underflow to bucket 0.
        return 0;
    }
    // Subtract logs rather than dividing: v / MIN_VALUE overflows to
    // infinity for huge v. Clamp while still in f64 for the same reason.
    let pos = ((v.log2() - MIN_VALUE.log2()) * SUB_BUCKETS as f64).floor();
    pos.clamp(0.0, (NUM_BUCKETS - 2) as f64) as usize + 1
}

/// Upper edge of a bucket (inclusive); the overflow bucket reports infinity.
pub fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        MIN_VALUE
    } else if idx >= NUM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        MIN_VALUE * 2f64.powf(idx as f64 / SUB_BUCKETS as f64)
    }
}

fn atomic_f64_update(cell: &AtomicU64, v: f64, pick: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = pick(f64::from_bits(cur), v);
        match cell.compare_exchange_weak(
            cur,
            new.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// The shared storage behind a [`crate::Histogram`] handle.
pub struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCore {
    /// Empty histogram.
    pub fn new() -> Self {
        HistogramCore {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Lock-free; NaN is coerced to 0.
    pub fn record(&self, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v };
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, v, |a, b| a + b);
        atomic_f64_update(&self.min_bits, v, f64::min);
        atomic_f64_update(&self.max_bits, v, f64::max);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (counters are relaxed; a
    /// snapshot taken during concurrent recording may straddle an update,
    /// which is fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 { 0.0 } else { f64::from_bits(self.min_bits.load(Ordering::Relaxed)) },
            max: if count == 0 { 0.0 } else { f64::from_bits(self.max_bits.load(Ordering::Relaxed)) },
            buckets,
        }
    }
}

/// A frozen histogram: sparse `(bucket index, count)` pairs plus moments.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { count: 0, sum: 0.0, min: 0.0, max: 0.0, buckets: Vec::new() }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper edge of the bucket
    /// containing the order statistic of rank `ceil(q · count)`, clamped to
    /// the recorded `[min, max]` range so the estimate is always a value
    /// that could plausibly have been observed. Within one log-bucket of
    /// the exact order statistic by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_upper(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges two snapshots: bucket-wise sum, combined moments. Merging is
    /// equivalent (bucket-exactly; sums to float tolerance) to recording
    /// the union of both sample sets into one histogram.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = std::collections::BTreeMap::new();
        for &(i, n) in self.buckets.iter().chain(other.buckets.iter()) {
            *buckets.entry(i).or_insert(0u64) += n;
        }
        let count = self.count + other.count;
        HistogramSnapshot {
            count,
            sum: self.sum + other.sum,
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: match (self.count, other.count) {
                (0, _) => other.max,
                (_, 0) => self.max,
                _ => self.max.max(other.max),
            },
            buckets: buckets.into_iter().collect(),
        }
    }
}

/// RAII timer recording elapsed seconds into a histogram on drop. When the
/// handle is disabled the timer never reads the clock.
pub struct HistTimer {
    start: Option<(Instant, std::sync::Arc<HistogramCore>)>,
}

impl HistTimer {
    pub(crate) fn new(core: Option<std::sync::Arc<HistogramCore>>) -> Self {
        HistTimer { start: core.map(|c| (Instant::now(), c)) }
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((t0, core)) = self.start.take() {
            core.record(t0.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_cover() {
        for i in 1..NUM_BUCKETS - 1 {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "bucket {i}");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
        // A value sits at or below its bucket's upper edge and above the
        // previous bucket's edge.
        for v in [1e-9, 3e-7, 0.001, 0.5, 1.0, 7.3, 1000.0, 123456.0] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i) * (1.0 + 1e-12), "{v} above edge of {i}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1) * (1.0 - 1e-12), "{v} below bucket {i}");
            }
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = HistogramCore::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // One-log-bucket accuracy: within a factor of 2^(1/4) of the truth.
        let tol = 2f64.powf(1.0 / SUB_BUCKETS as f64) * (1.0 + 1e-9);
        for (q, exact) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let est = s.quantile(q);
            assert!(
                est / exact <= tol && exact / est <= tol,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = HistogramCore::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_is_bucket_exact() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let u = HistogramCore::new();
        for v in [0.1, 0.2, 5.0] {
            a.record(v);
            u.record(v);
        }
        for v in [0.15, 40.0] {
            b.record(v);
            u.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        let union = u.snapshot();
        assert_eq!(merged.buckets, union.buckets);
        assert_eq!(merged.count, union.count);
        assert_eq!(merged.min, union.min);
        assert_eq!(merged.max, union.max);
        assert!((merged.sum - union.sum).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(HistogramCore::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4000);
    }
}
