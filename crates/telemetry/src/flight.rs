//! Black-box flight recorder: a bounded ring of recent structured events
//! (admissions, tier changes, breaker transitions, quota rejections,
//! worker panics, checkpoint writes, ...) kept alongside the metrics
//! registry and dumped as JSON lines when something goes wrong — on a
//! worker panic, a server drain, or an explicit admin trigger.
//!
//! The recorder is deliberately lossy and cheap: one short mutex around a
//! `VecDeque`, fixed capacity, oldest events dropped first (and counted).
//! It answers "what were the last N interesting things before the crash",
//! not "everything that ever happened" — that is what metrics and traces
//! are for.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use crate::span::{current_trace_id, now_us};

/// Default flight-recorder ring capacity (events, not bytes).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One structured flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the process anchor ([`crate::now_us`]).
    pub ts_us: u64,
    /// Event kind, a short static identifier (`"worker_panic"`, ...).
    pub kind: &'static str,
    /// Free-form detail, escaped on render.
    pub detail: String,
    /// Trace id installed on the recording thread (0 = untraced).
    pub trace_id: u64,
}

impl FlightEvent {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts\":{},\"kind\":\"{}\",\"detail\":\"{}\",\"trace_id\":{}}}",
            self.ts_us,
            self.kind,
            escape_json(&self.detail),
            self.trace_id
        )
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct FlightRing {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

/// Bounded, shareable flight-recorder ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightRing>>,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightRing {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightRing> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records an event, stamping time and the calling thread's trace id.
    pub fn record(&self, kind: &'static str, detail: String) {
        let ev = FlightEvent { ts_us: now_us(), kind, detail, trace_id: current_trace_id() };
        let mut ring = self.lock();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// The retained window as JSON lines, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.lock().events.iter() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Dumps the retained window to `<dir>/flight_<label>.jsonl` via a
    /// temp-file + rename so a crash mid-dump never leaves a torn file.
    /// Returns the final path.
    pub fn dump_to(&self, dir: &Path, label: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight_{label}.jsonl"));
        let tmp = dir.join(format!(".flight_{label}.jsonl.tmp"));
        std::fs::write(&tmp, self.to_jsonl())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record("test_event", format!("n={i}"));
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(evs[0].detail, "n=2");
        assert_eq!(evs[2].detail, "n=4");
    }

    #[test]
    fn jsonl_is_valid_and_escapes_detail() {
        let rec = FlightRecorder::new(8);
        rec.record("test_event", "quote \" backslash \\ newline \n ctrl \u{1}".to_string());
        let doc = rec.to_jsonl();
        assert_eq!(crate::jsonl::validate_jsonl(&doc).unwrap(), 1);
        assert!(doc.contains("\\\""));
        assert!(doc.contains("\\n"));
        assert!(doc.contains("\\u0001"));
    }

    #[test]
    fn events_carry_the_installed_trace_id() {
        let rec = FlightRecorder::new(8);
        let ctx = crate::TraceContext::new_root(true);
        {
            let _g = ctx.install();
            rec.record("test_event", "traced".to_string());
        }
        rec.record("test_event", "untraced".to_string());
        let evs = rec.events();
        assert_eq!(evs[0].trace_id, ctx.trace_id);
        assert_eq!(evs[1].trace_id, 0);
    }

    #[test]
    fn dump_writes_a_parseable_file() {
        let dir = std::env::temp_dir().join("apf_flight_dump_test");
        let rec = FlightRecorder::new(8);
        rec.record("test_event", "one".to_string());
        rec.record("test_event", "two".to_string());
        let path = rec.dump_to(&dir, "unit").expect("dump");
        assert!(path.ends_with("flight_unit.jsonl"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&body).unwrap(), 2);
    }
}
