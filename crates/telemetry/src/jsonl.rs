//! Minimal JSON validation for trace output self-checks.
//!
//! The vendored `serde_json` stand-in can only *emit* JSON, so the soak
//! binaries need an independent way to prove the JSON-lines traces they
//! write are well-formed. This is a small recursive-descent recognizer —
//! it validates, it does not build a DOM.

/// Validates that `s` is exactly one well-formed JSON value.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

/// Validates every non-empty line of a JSON-lines document; returns the
/// number of valid lines.
pub fn validate_jsonl(s: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!(
            "bad literal at offset {pos}, expected {}",
            String::from_utf8_lossy(lit),
            pos = *pos
        ))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at offset {pos}",
                                        pos = *pos
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => {
                return Err(format!(
                    "unescaped control byte in string at offset {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() {
            saw_digit = true;
            *pos += 1;
        } else {
            break;
        }
    }
    if !saw_digit {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = false;
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() {
                frac = true;
                *pos += 1;
            } else {
                break;
            }
        }
        if !frac {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = false;
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() {
                exp = true;
                *pos += 1;
            } else {
                break;
            }
        }
        if !exp {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"a\\n\\u00e9\"",
            r#"{"name":"serve.request","args":{"depth":0,"id":3},"xs":[1,2.5,null]}"#,
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for s in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "01x",
            "1.5.2",
            "{} trailing",
            "nul",
        ] {
            assert!(validate_json(s).is_err(), "accepted: {s}");
        }
    }

    #[test]
    fn jsonl_counts_lines() {
        let doc = "{\"a\":1}\n\n{\"b\":[true]}\n";
        assert_eq!(validate_jsonl(doc).unwrap(), 2);
        assert!(validate_jsonl("{\"a\":1}\noops\n").is_err());
    }
}
