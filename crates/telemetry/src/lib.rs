//! # apf-telemetry — workspace-wide observability substrate
//!
//! A dependency-free telemetry layer shared by every APF crate:
//!
//! * **Metrics registry** ([`Telemetry`]): atomic [`Counter`]s, [`Gauge`]s
//!   and log-bucketed [`Histogram`]s with p50/p95/p99/max estimation,
//!   exposed as Prometheus text ([`Telemetry::render_prometheus`]) or
//!   JSON snapshots ([`Telemetry::snapshot`] + `serde_json`).
//! * **Structured spans** ([`Telemetry::span`], [`SpanGuard`]): a
//!   drop-safe thread-local span stack feeding a bounded ring sink that
//!   dumps Chrome `trace_event`-compatible JSON lines
//!   ([`Telemetry::trace_jsonl`]).
//! * **Profiling hooks** ([`time_scope!`], [`counted!`], [`span_scope!`]):
//!   one-liners that cost a single branch when the component was built
//!   with [`Telemetry::disabled`] — cheap enough to leave in hot paths
//!   permanently (gated <2% by the `telemetry_overhead` bench).
//!
//! ## Naming convention
//!
//! Metrics are `apf_<crate>_<name>_<unit>` (e.g.
//! `apf_serve_inference_latency_seconds`); spans are
//! `"<crate>.<operation>"` (e.g. `"serve.request"`). Registration runs
//! [`lint_metric_name`] under `debug_assertions`: every name needs the
//! `apf_` prefix and a crate segment, and histogram names must end with a
//! recognized unit suffix (`_seconds`, `_bytes`, ...), never `_total`.
//!
//! ## Usage
//!
//! ```
//! use apf_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! let latency = tel.histogram("apf_demo_latency_seconds", "demo latency");
//! let requests = tel.counter("apf_demo_requests_total", "requests");
//! {
//!     let _span = tel.span("demo.request");
//!     let _timer = latency.start_timer();
//!     requests.inc();
//! }
//! assert_eq!(requests.get(), 1);
//! assert_eq!(latency.count(), 1);
//! assert!(tel.render_prometheus().contains("apf_demo_requests_total 1"));
//! assert!(tel.trace_jsonl().contains("\"name\":\"demo.request\""));
//! ```

pub mod flight;
pub mod histogram;
pub mod jsonl;
pub mod registry;
pub mod span;

pub use flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use histogram::{HistTimer, HistogramSnapshot};
pub use jsonl::{validate_json, validate_jsonl};
pub use registry::{
    lint_metric_name, Counter, Gauge, Histogram, Labels, MetricSnapshot, Telemetry,
    TelemetrySnapshot, DEFAULT_TRACE_CAPACITY, HISTOGRAM_UNIT_SUFFIXES,
};
pub use span::{
    current_depth, current_trace_id, now_us, ContextGuard, SpanGuard, TraceContext, TraceEvent,
    TraceSink,
};

/// Times the rest of the enclosing scope into a [`Histogram`] handle
/// (seconds). Expands to a hidden RAII guard; when the handle is inert the
/// guard never reads the clock.
///
/// ```
/// # use apf_telemetry::{Telemetry, time_scope};
/// # let tel = Telemetry::enabled();
/// let hist = tel.histogram("apf_demo_step_seconds", "step time");
/// {
///     time_scope!(hist);
///     // ... work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[macro_export]
macro_rules! time_scope {
    ($hist:expr) => {
        let _apf_time_scope_guard = $hist.start_timer();
    };
}

/// Bumps a [`Counter`] handle by 1 (or by an explicit amount).
///
/// ```
/// # use apf_telemetry::{Telemetry, counted};
/// # let tel = Telemetry::enabled();
/// let ops = tel.counter("apf_demo_ops_total", "ops");
/// counted!(ops);
/// counted!(ops, 4);
/// assert_eq!(ops.get(), 5);
/// ```
#[macro_export]
macro_rules! counted {
    ($counter:expr) => {
        $counter.inc();
    };
    ($counter:expr, $n:expr) => {
        $counter.add($n);
    };
}

/// Opens a span on a [`Telemetry`] for the rest of the enclosing scope,
/// optionally tagged with a correlation id.
///
/// ```
/// # use apf_telemetry::{Telemetry, span_scope};
/// # let tel = Telemetry::enabled();
/// {
///     span_scope!(tel, "demo.outer");
///     span_scope!(tel, "demo.inner", 42);
/// }
/// assert_eq!(tel.trace_events().len(), 2);
/// ```
#[macro_export]
macro_rules! span_scope {
    ($tel:expr, $name:expr) => {
        let _apf_span_scope_guard = $tel.span($name);
    };
    ($tel:expr, $name:expr, $id:expr) => {
        let _apf_span_scope_guard = $tel.span_id($name, $id);
    };
}
