//! Structured spans: a thread-local depth stack, RAII guards, and a bounded
//! ring-buffer trace sink that dumps Chrome `trace_event`-compatible JSON
//! lines.
//!
//! Design constraints:
//!
//! * **Drop-safe.** The per-thread state is plain `Cell`s — no `RefCell`,
//!   nothing a panic can poison. A panic unwinding through a [`SpanGuard`]
//!   runs its `Drop`, which restores the depth and current-span it captured
//!   at entry, so the stack is consistent again the moment the unwind
//!   passes (verified with `catch_unwind` in the crate tests). Spans
//!   flushed *during* an unwind are marked `truncated` so a trace never
//!   silently loses a subtree to a worker panic.
//! * **Bounded.** The sink is a fixed-capacity ring: old events are evicted,
//!   never the process's memory. Evictions are counted so a report can say
//!   how much history was lost.
//! * **Monotonic.** Timestamps are microseconds since a process-wide
//!   `Instant` anchor, immune to wall-clock steps.
//! * **Causally linked.** Every recorded span carries a process-unique
//!   `span_id`, the `parent_span` it nested under, and the `trace_id` of
//!   the distributed request it belongs to (0 when untraced). Trace
//!   membership crosses threads and sockets only by *explicit handoff* of a
//!   [`TraceContext`] — capture with [`TraceContext::current`], re-install
//!   on the receiving thread with [`TraceContext::install`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Process-wide monotonic anchor; all span timestamps are relative to it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process anchor.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Process-unique span ids, 1-based; 0 means "no span".
fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Fresh trace id: the process id in the high 32 bits, a process-local
/// counter in the low 32, so ids minted by the client and server sides of a
/// cross-process request can never collide and 0 (= untraced) is never
/// produced.
pub(crate) fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
    ((std::process::id() as u64) << 32) | n.max(1)
}

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Trace id the calling thread is currently inside (0 = untraced).
    static TRACE: Cell<u64> = const { Cell::new(0) };
    /// Innermost open span id on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// Sampling bit of the installed context.
    static SAMPLED: Cell<bool> = const { Cell::new(true) };
}

/// Current span nesting depth of the calling thread (tests/diagnostics).
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// Trace id installed on the calling thread, 0 when untraced.
pub fn current_trace_id() -> u64 {
    TRACE.with(Cell::get)
}

/// The portable identity of a distributed trace: everything a hop needs to
/// make its spans children of the hop that spawned it. Copy it across a
/// thread spawn, a queue, or a socket, then [`TraceContext::install`] it on
/// the receiving side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole distributed request (never 0 for a real trace).
    pub trace_id: u64,
    /// Span on the sending side that new spans should hang under (0 = the
    /// trace root itself).
    pub parent_span: u64,
    /// Whether spans of this trace are being recorded. Propagated so every
    /// hop of one request makes the same keep/drop decision.
    pub sampled: bool,
}

impl TraceContext {
    /// Starts a brand-new trace (use [`crate::Telemetry::new_trace`] to
    /// respect the live sampling rate).
    pub fn new_root(sampled: bool) -> Self {
        TraceContext { trace_id: next_trace_id(), parent_span: 0, sampled }
    }

    /// Captures the calling thread's context for explicit handoff to
    /// another thread or peer. `None` when the thread is not inside a
    /// trace — hand nothing off and the receiver stays untraced.
    pub fn current() -> Option<TraceContext> {
        let trace_id = TRACE.with(Cell::get);
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            parent_span: CURRENT_SPAN.with(Cell::get),
            sampled: SAMPLED.with(Cell::get),
        })
    }

    /// Installs the context on the calling thread until the guard drops;
    /// the previous context (if any) is restored. An unsampled context
    /// installs as untraced: local spans still record, but with
    /// `trace_id = 0`, and downstream hops receive no context.
    pub fn install(self) -> ContextGuard {
        let effective = if self.sampled { self.trace_id } else { 0 };
        ContextGuard {
            prev_trace: TRACE.with(|c| c.replace(effective)),
            prev_span: CURRENT_SPAN.with(|c| c.replace(self.parent_span)),
            prev_sampled: SAMPLED.with(|c| c.replace(self.sampled)),
        }
    }
}

/// Restores the previously-installed [`TraceContext`] on drop.
pub struct ContextGuard {
    prev_trace: u64,
    prev_span: u64,
    prev_sampled: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        TRACE.with(|c| c.set(self.prev_trace));
        CURRENT_SPAN.with(|c| c.set(self.prev_span));
        SAMPLED.with(|c| c.set(self.prev_sampled));
    }
}

/// One completed span, in Chrome `trace_event` "complete event" form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, `"<crate>.<operation>"` by convention.
    pub name: &'static str,
    /// Start, microseconds since the process anchor.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Stable per-thread id (1-based, assignment order).
    pub tid: u64,
    /// Nesting depth at entry (0 = root span).
    pub depth: usize,
    /// Optional correlation id (e.g. the request id).
    pub id: Option<u64>,
    /// Distributed trace this span belongs to (0 = untraced/local-only).
    pub trace_id: u64,
    /// Process-unique id of this span (0 only in hand-built events).
    pub span_id: u64,
    /// Span this one nested under — on this thread or, for the first span
    /// after a handoff, on the sending side. 0 = root of its trace.
    pub parent_span: u64,
    /// True when the span was flushed by a panic unwinding through it: the
    /// interval ends at the panic, and any children it would still have
    /// opened are missing by construction.
    pub truncated: bool,
    /// Optional short scheduling annotation (`"steal"`, `"retry"`, ...).
    pub note: Option<&'static str>,
}

impl TraceEvent {
    /// Chrome trace category: the `<crate>` prefix of the name.
    pub fn category(&self) -> &'static str {
        self.name.split('.').next().unwrap_or(self.name)
    }

    /// Renders the event as one Chrome `trace_event` JSON object (phase
    /// `"X"`, a complete event). Names and notes are `'static` identifiers
    /// chosen in code, so no string escaping is required.
    pub fn to_json(&self) -> String {
        let mut args = format!("\"depth\":{}", self.depth);
        if let Some(id) = self.id {
            args.push_str(&format!(",\"id\":{id}"));
        }
        if self.span_id != 0 {
            args.push_str(&format!(",\"span_id\":{}", self.span_id));
        }
        if self.parent_span != 0 {
            args.push_str(&format!(",\"parent_span\":{}", self.parent_span));
        }
        if self.trace_id != 0 {
            args.push_str(&format!(",\"trace_id\":{}", self.trace_id));
        }
        if self.truncated {
            args.push_str(",\"truncated\":true");
        }
        if let Some(note) = self.note {
            args.push_str(&format!(",\"note\":\"{note}\""));
        }
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
            self.name, self.category(), self.ts_us, self.dur_us, self.tid, args
        )
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    evicted: u64,
}

/// Bounded, shareable span sink.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<Ring>>,
}

impl TraceSink {
    /// A sink retaining the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            inner: Arc::new(Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                evicted: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // A panic while holding the (tiny) critical section must not take
        // tracing down with it.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&self, ev: TraceEvent) {
        let mut ring = self.lock();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(ev);
    }

    /// Records a zero-duration annotation event at the current position in
    /// the calling thread's span stack and trace.
    pub fn annotate(&self, name: &'static str, id: Option<u64>, note: Option<&'static str>) {
        self.push(TraceEvent {
            name,
            ts_us: now_us(),
            dur_us: 0,
            tid: thread_tid(),
            depth: current_depth(),
            id,
            trace_id: TRACE.with(Cell::get),
            span_id: next_span_id(),
            parent_span: CURRENT_SPAN.with(Cell::get),
            truncated: false,
            note,
        });
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Dumps the retained spans as JSON lines, one Chrome `trace_event`
    /// complete-event object per line (load with `jq -s .` or any
    /// `trace_event` viewer that accepts a JSON array of these objects).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.lock().events.iter() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// RAII span: records a [`TraceEvent`] covering its lifetime. Obtained from
/// [`crate::Telemetry::span`]; a disabled telemetry hands out inert guards
/// that never read the clock.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    sink: TraceSink,
    name: &'static str,
    id: Option<u64>,
    note: Option<&'static str>,
    start_us: u64,
    tid: u64,
    depth: usize,
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
}

impl SpanGuard {
    /// An inert guard (disabled telemetry).
    pub fn noop() -> Self {
        SpanGuard { active: None }
    }

    pub(crate) fn enter(
        sink: &TraceSink,
        name: &'static str,
        id: Option<u64>,
        note: Option<&'static str>,
    ) -> Self {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let span_id = next_span_id();
        let parent_span = CURRENT_SPAN.with(|c| c.replace(span_id));
        SpanGuard {
            active: Some(ActiveSpan {
                sink: sink.clone(),
                name,
                id,
                note,
                start_us: now_us(),
                tid: thread_tid(),
                depth,
                trace_id: TRACE.with(Cell::get),
                span_id,
                parent_span,
            }),
        }
    }

    /// The process-unique id of this span, 0 for an inert guard. Use it as
    /// the `parent_span` of an explicit [`TraceContext`] handoff.
    pub fn span_id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.span_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            // Restore the state captured at entry rather than decrementing:
            // even if an inner guard somehow leaked, the stack re-converges.
            DEPTH.with(|d| d.set(a.depth));
            CURRENT_SPAN.with(|c| c.set(a.parent_span));
            a.sink.push(TraceEvent {
                name: a.name,
                ts_us: a.start_us,
                dur_us: now_us().saturating_sub(a.start_us),
                tid: a.tid,
                depth: a.depth,
                id: a.id,
                trace_id: a.trace_id,
                span_id: a.span_id,
                parent_span: a.parent_span,
                // A span closed by an unwinding panic is a partial
                // measurement: say so instead of silently losing the
                // subtree the panic cut off.
                truncated: std::thread::panicking(),
                note: a.note,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_depths_containment_and_parent_links() {
        let sink = TraceSink::new(16);
        {
            let _a = SpanGuard::enter(&sink, "test.outer", Some(7), None);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = SpanGuard::enter(&sink, "test.inner", None, None);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        assert_eq!(current_depth(), 0);
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        // Inner closes first.
        assert_eq!(evs[0].name, "test.inner");
        assert_eq!(evs[0].depth, 1);
        assert_eq!(evs[1].name, "test.outer");
        assert_eq!(evs[1].depth, 0);
        assert_eq!(evs[1].id, Some(7));
        // Parent interval contains the child interval, and the child's
        // parent link names the outer span.
        assert!(evs[1].ts_us <= evs[0].ts_us);
        assert!(evs[1].ts_us + evs[1].dur_us >= evs[0].ts_us + evs[0].dur_us);
        assert_eq!(evs[0].parent_span, evs[1].span_id);
        assert_ne!(evs[0].span_id, evs[1].span_id);
        assert!(!evs[0].truncated && !evs[1].truncated);
        assert_eq!(evs[0].category(), "test");
    }

    #[test]
    fn ring_evicts_oldest() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            drop(SpanGuard::enter(&sink, "test.e", Some(i), None));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(sink.evicted(), 2);
        assert_eq!(evs[0].id, Some(2));
        assert_eq!(evs[2].id, Some(4));
    }

    #[test]
    fn json_shape_is_chrome_compatible() {
        let ev = TraceEvent {
            name: "serve.request",
            ts_us: 12,
            dur_us: 34,
            tid: 2,
            depth: 1,
            id: Some(9),
            trace_id: 77,
            span_id: 5,
            parent_span: 4,
            truncated: true,
            note: Some("steal"),
        };
        let s = ev.to_json();
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"cat\":\"serve\""));
        assert!(s.contains("\"ts\":12"));
        assert!(s.contains("\"dur\":34"));
        assert!(s.contains("\"id\":9"));
        assert!(s.contains("\"trace_id\":77"));
        assert!(s.contains("\"span_id\":5"));
        assert!(s.contains("\"parent_span\":4"));
        assert!(s.contains("\"truncated\":true"));
        assert!(s.contains("\"note\":\"steal\""));
        crate::jsonl::validate_json(&s).expect("trace event must be valid JSON");
    }

    #[test]
    fn context_install_restores_and_links_across_threads() {
        assert_eq!(TraceContext::current(), None, "fresh thread is untraced");
        let sink = TraceSink::new(16);
        let root = TraceContext::new_root(true);
        assert_ne!(root.trace_id, 0);
        let handoff = {
            let _g = root.install();
            let outer = SpanGuard::enter(&sink, "test.root", None, None);
            let ctx = TraceContext::current().expect("installed context is visible");
            assert_eq!(ctx.trace_id, root.trace_id);
            assert_eq!(ctx.parent_span, outer.span_id());
            ctx
        };
        assert_eq!(TraceContext::current(), None, "guard restored the thread");
        // Explicit handoff: the spawned thread's span joins the trace.
        let evs = std::thread::spawn({
            let sink = sink.clone();
            move || {
                let _g = handoff.install();
                drop(SpanGuard::enter(&sink, "test.remote", None, None));
                sink.events()
            }
        })
        .join()
        .unwrap();
        let remote = evs.iter().find(|e| e.name == "test.remote").unwrap();
        let root_ev = evs.iter().find(|e| e.name == "test.root").unwrap();
        assert_eq!(remote.trace_id, root.trace_id);
        assert_eq!(remote.parent_span, root_ev.span_id);
        assert_ne!(remote.tid, root_ev.tid);
    }

    #[test]
    fn unsampled_context_installs_as_untraced() {
        let root = TraceContext { sampled: false, ..TraceContext::new_root(true) };
        let _g = root.install();
        assert_eq!(current_trace_id(), 0);
        assert_eq!(TraceContext::current(), None, "unsampled traces do not propagate");
    }

    #[test]
    fn panic_unwind_marks_spans_truncated() {
        let sink = TraceSink::new(16);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = SpanGuard::enter(&sink, "test.dying", Some(3), None);
            panic!("injected");
        }));
        assert!(r.is_err());
        assert_eq!(current_depth(), 0, "unwind restored the depth stack");
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "test.dying");
        assert!(evs[0].truncated, "a panic-flushed span must say it is partial");
    }
}
