//! Structured spans: a thread-local depth stack, RAII guards, and a bounded
//! ring-buffer trace sink that dumps Chrome `trace_event`-compatible JSON
//! lines.
//!
//! Design constraints:
//!
//! * **Drop-safe.** The per-thread state is a plain `Cell<usize>` depth
//!   counter — no `RefCell`, nothing a panic can poison. A panic unwinding
//!   through a [`SpanGuard`] runs its `Drop`, which restores the depth it
//!   captured at entry, so the stack is consistent again the moment the
//!   unwind passes (verified with `catch_unwind` in the crate tests).
//! * **Bounded.** The sink is a fixed-capacity ring: old events are evicted,
//!   never the process's memory. Evictions are counted so a report can say
//!   how much history was lost.
//! * **Monotonic.** Timestamps are microseconds since a process-wide
//!   `Instant` anchor, immune to wall-clock steps.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Process-wide monotonic anchor; all span timestamps are relative to it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process anchor.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth of the calling thread (tests/diagnostics).
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// One completed span, in Chrome `trace_event` "complete event" form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, `"<crate>.<operation>"` by convention.
    pub name: &'static str,
    /// Start, microseconds since the process anchor.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Stable per-thread id (1-based, assignment order).
    pub tid: u64,
    /// Nesting depth at entry (0 = root span).
    pub depth: usize,
    /// Optional correlation id (e.g. the request id).
    pub id: Option<u64>,
}

impl TraceEvent {
    /// Chrome trace category: the `<crate>` prefix of the name.
    pub fn category(&self) -> &'static str {
        self.name.split('.').next().unwrap_or(self.name)
    }

    /// Renders the event as one Chrome `trace_event` JSON object (phase
    /// `"X"`, a complete event). Names are `'static` identifiers chosen in
    /// code, so no string escaping is required.
    pub fn to_json(&self) -> String {
        let id_arg = match self.id {
            Some(id) => format!(",\"id\":{id}"),
            None => String::new(),
        };
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}{}}}}}",
            self.name,
            self.category(),
            self.ts_us,
            self.dur_us,
            self.tid,
            self.depth,
            id_arg
        )
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    evicted: u64,
}

/// Bounded, shareable span sink.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<Ring>>,
}

impl TraceSink {
    /// A sink retaining the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            inner: Arc::new(Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                evicted: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // A panic while holding the (tiny) critical section must not take
        // tracing down with it.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&self, ev: TraceEvent) {
        let mut ring = self.lock();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(ev);
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Dumps the retained spans as JSON lines, one Chrome `trace_event`
    /// complete-event object per line (load with `jq -s .` or any
    /// `trace_event` viewer that accepts a JSON array of these objects).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.lock().events.iter() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// RAII span: records a [`TraceEvent`] covering its lifetime. Obtained from
/// [`crate::Telemetry::span`]; a disabled telemetry hands out inert guards
/// that never read the clock.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    sink: TraceSink,
    name: &'static str,
    id: Option<u64>,
    start_us: u64,
    tid: u64,
    depth: usize,
}

impl SpanGuard {
    /// An inert guard (disabled telemetry).
    pub fn noop() -> Self {
        SpanGuard { active: None }
    }

    pub(crate) fn enter(sink: &TraceSink, name: &'static str, id: Option<u64>) -> Self {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        SpanGuard {
            active: Some(ActiveSpan {
                sink: sink.clone(),
                name,
                id,
                start_us: now_us(),
                tid: thread_tid(),
                depth,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            // Restore the depth captured at entry rather than decrementing:
            // even if an inner guard somehow leaked, the stack re-converges.
            DEPTH.with(|d| d.set(a.depth));
            a.sink.push(TraceEvent {
                name: a.name,
                ts_us: a.start_us,
                dur_us: now_us().saturating_sub(a.start_us),
                tid: a.tid,
                depth: a.depth,
                id: a.id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_depths_and_containment() {
        let sink = TraceSink::new(16);
        {
            let _a = SpanGuard::enter(&sink, "test.outer", Some(7));
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = SpanGuard::enter(&sink, "test.inner", None);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        assert_eq!(current_depth(), 0);
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        // Inner closes first.
        assert_eq!(evs[0].name, "test.inner");
        assert_eq!(evs[0].depth, 1);
        assert_eq!(evs[1].name, "test.outer");
        assert_eq!(evs[1].depth, 0);
        assert_eq!(evs[1].id, Some(7));
        // Parent interval contains the child interval.
        assert!(evs[1].ts_us <= evs[0].ts_us);
        assert!(evs[1].ts_us + evs[1].dur_us >= evs[0].ts_us + evs[0].dur_us);
        assert_eq!(evs[0].category(), "test");
    }

    #[test]
    fn ring_evicts_oldest() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            drop(SpanGuard::enter(&sink, "test.e", Some(i)));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(sink.evicted(), 2);
        assert_eq!(evs[0].id, Some(2));
        assert_eq!(evs[2].id, Some(4));
    }

    #[test]
    fn json_shape_is_chrome_compatible() {
        let ev = TraceEvent {
            name: "serve.request",
            ts_us: 12,
            dur_us: 34,
            tid: 2,
            depth: 1,
            id: Some(9),
        };
        let s = ev.to_json();
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"cat\":\"serve\""));
        assert!(s.contains("\"ts\":12"));
        assert!(s.contains("\"dur\":34"));
        assert!(s.contains("\"id\":9"));
        crate::jsonl::validate_json(&s).expect("trace event must be valid JSON");
    }
}
