//! Property tests for histogram quantile accuracy and merge semantics,
//! plus panic-safety tests for the span stack.

use std::panic::{catch_unwind, AssertUnwindSafe};

use apf_telemetry::histogram::{bucket_index, HistogramCore};
use apf_telemetry::{current_depth, Telemetry};
use proptest::prelude::*;

/// Exact order statistic at quantile `q` under the same rank convention the
/// histogram uses: rank `ceil(q · n)` clamped to `[1, n]`, 1-indexed.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantile_estimate_within_one_log_bucket(
        samples in prop::collection::vec(1e-6f64..1e4, 1..=400)
    ) {
        let h = HistogramCore::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            let (be, bx) = (bucket_index(est), bucket_index(exact));
            prop_assert!(
                be.abs_diff(bx) <= 1,
                "q={}: estimate {} (bucket {}) vs exact {} (bucket {})",
                q, est, be, exact, bx
            );
            // The clamp to [min, max] also keeps the estimate inside the
            // observed range.
            prop_assert!(est >= snap.min && est <= snap.max);
        }
    }

    #[test]
    fn merge_equals_recording_the_union(
        xs in prop::collection::vec(1e-6f64..1e4, 0..=200),
        ys in prop::collection::vec(1e-6f64..1e4, 0..=200)
    ) {
        let (a, b, u) = (HistogramCore::new(), HistogramCore::new(), HistogramCore::new());
        for &v in &xs {
            a.record(v);
            u.record(v);
        }
        for &v in &ys {
            b.record(v);
            u.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        let union = u.snapshot();
        prop_assert_eq!(merged.count, union.count);
        prop_assert_eq!(merged.buckets.clone(), union.buckets.clone());
        prop_assert_eq!(merged.min, union.min);
        prop_assert_eq!(merged.max, union.max);
        // Sums may differ by float addition order only.
        let scale = union.sum.abs().max(1.0);
        prop_assert!(
            (merged.sum - union.sum).abs() <= 1e-9 * scale,
            "sum mismatch: {} vs {}", merged.sum, union.sum
        );
        // Quantiles of the merged snapshot match the union's exactly —
        // they are computed from identical bucket data.
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(q), union.quantile(q));
        }
    }
}

#[test]
fn panic_inside_span_does_not_poison_the_stack() {
    let tel = Telemetry::enabled();
    assert_eq!(current_depth(), 0);

    let result = catch_unwind(AssertUnwindSafe(|| {
        let _outer = tel.span("test.outer");
        let _inner = tel.span("test.inner");
        assert_eq!(current_depth(), 2);
        panic!("boom");
    }));
    assert!(result.is_err());

    // The unwind ran both guards' Drops: depth is back to 0 and both spans
    // were still recorded.
    assert_eq!(current_depth(), 0);
    let evs = tel.trace_events();
    assert_eq!(evs.len(), 2);
    assert_eq!(evs[0].name, "test.inner");
    assert_eq!(evs[1].name, "test.outer");

    // The stack is fully usable afterwards: new spans nest from depth 0.
    {
        let _next = tel.span("test.after");
        assert_eq!(current_depth(), 1);
    }
    let evs = tel.trace_events();
    assert_eq!(evs[2].name, "test.after");
    assert_eq!(evs[2].depth, 0);
}

#[test]
fn panic_while_sink_is_shared_across_threads_keeps_recording() {
    let tel = Telemetry::enabled();
    let tel2 = tel.clone();
    std::thread::spawn(move || {
        let _s = tel2.span("test.doomed");
        panic!("thread dies inside a span");
    })
    .join()
    .unwrap_err();

    // The dead thread's span was recorded on unwind, and this thread can
    // keep tracing through the same (unpoisoned) sink.
    {
        let _s = tel.span("test.survivor");
    }
    let names: Vec<&str> = tel.trace_events().iter().map(|e| e.name).collect();
    assert!(names.contains(&"test.doomed"));
    assert!(names.contains(&"test.survivor"));
}

#[test]
fn trace_jsonl_round_trips_through_the_validator() {
    let tel = Telemetry::enabled();
    for i in 0..5u64 {
        let _outer = tel.span_id("test.request", i);
        let _inner = tel.span("test.phase");
    }
    let doc = tel.trace_jsonl();
    let lines = apf_telemetry::validate_jsonl(&doc).expect("trace must be valid JSON lines");
    assert_eq!(lines, 10);
}
