//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Shared integrity primitive for the fault-tolerance layer: checkpoint
//! files carry per-tensor and whole-file checksums, and the all-reduce
//! implementations checksum every message so transient link corruption is
//! detected instead of silently averaged into the gradients.

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// CRC-32 of an `f32` slice, hashing each value's little-endian bytes.
pub fn crc32_f32(values: &[f32]) -> u32 {
    let mut h = Crc32::new();
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn f32_hash_matches_byte_hash() {
        let vals = [1.5f32, -0.25, f32::MIN_POSITIVE, 1e30];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(crc32_f32(&vals), crc32(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"gradient segment payload".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "byte {} bit {}", i, bit);
            }
        }
    }
}
