//! Typed errors for the adaptive-patching pipeline entry points.
//!
//! The quadtree and patcher historically panicked on malformed input, which
//! is fine for offline experiments but unacceptable for a serving path where
//! a single bad request must become a structured rejection, not a dead
//! worker. [`PatchError`] names exactly which precondition failed.

use apf_imaging::ImageError;

/// Why an image cannot be adaptively patched.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchError {
    /// The image has a zero side.
    Empty {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
    },
    /// The quadtree requires square images.
    NotSquare {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
    },
    /// The side length is not a power of two, so quadrant halving cannot
    /// tile the image exactly.
    NonPowerOfTwo {
        /// The offending side length.
        size: usize,
    },
    /// The image is smaller than the minimum splittable size.
    TooSmall {
        /// The offending side length.
        size: usize,
        /// Smallest acceptable side (`2 * min_leaf`).
        min_required: usize,
    },
    /// A pixel is NaN or infinite; edge counts and variances over it would
    /// poison every ancestor quadrant's split decision.
    NonFinitePixel {
        /// Pixel x coordinate.
        x: usize,
        /// Pixel y coordinate.
        y: usize,
        /// The offending value.
        value: f32,
    },
    /// The variance split criterion was evaluated without its
    /// squared-pixel integral image (internal invariant violation).
    MissingSquaredIntegral,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::Empty { width, height } => {
                write!(f, "cannot patch a {width}x{height} image with a zero side")
            }
            PatchError::NotSquare { width, height } => {
                write!(f, "quadtree requires square images, got {width}x{height}")
            }
            PatchError::NonPowerOfTwo { size } => {
                write!(f, "quadtree requires a power-of-two side, got {size}")
            }
            PatchError::TooSmall { size, min_required } => {
                write!(f, "image side {size} is below the minimum {min_required}")
            }
            PatchError::NonFinitePixel { x, y, value } => {
                write!(f, "pixel ({x}, {y}) is non-finite ({value})")
            }
            PatchError::MissingSquaredIntegral => {
                write!(f, "variance criterion requires the squared integral image")
            }
        }
    }
}

impl std::error::Error for PatchError {}

impl From<ImageError> for PatchError {
    fn from(e: ImageError) -> Self {
        match e {
            ImageError::ZeroDimension { width, height } => PatchError::Empty { width, height },
            ImageError::BufferSizeMismatch { width, height, .. } => {
                // A mismatched buffer can only reach core through a raw
                // construction bypassing `try_from_raw`; report the geometry.
                PatchError::Empty { width, height }
            }
            ImageError::NonFinitePixel { x, y, value } => {
                PatchError::NonFinitePixel { x, y, value }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failed_precondition() {
        let e = PatchError::NonPowerOfTwo { size: 48 };
        assert!(e.to_string().contains("power-of-two"));
        assert!(e.to_string().contains("48"));
        let e = PatchError::NonFinitePixel { x: 3, y: 7, value: f32::NAN };
        assert!(e.to_string().contains("(3, 7)"));
    }

    #[test]
    fn image_errors_convert() {
        let e: PatchError =
            ImageError::NonFinitePixel { x: 1, y: 2, value: f32::INFINITY }.into();
        assert!(matches!(e, PatchError::NonFinitePixel { x: 1, y: 2, .. }));
    }
}
