//! Morton (Z-order) space-filling curve encoding.
//!
//! After the quadtree is built, leaf patches are ordered along a Morton
//! Z-curve (paper §III-A, steps 4-5): sorting aligned quadrants by the Morton
//! code of their corner pixel yields a sequence in which geometrically nearby
//! patches stay nearby — the property the paper wants the token sequence to
//! have — and children of one parent stay contiguous.

/// Spreads the low 32 bits of `v` so there is a zero bit between every
/// original bit (the classic "part 1 by 1" bit trick).
#[inline]
fn part1by1(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`]: compacts every other bit.
#[inline]
fn compact1by1(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Interleaves `(x, y)` into a Morton code (x in even bits, y in odd bits).
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32) {
    (compact1by1(code), compact1by1(code >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_codes() {
        // The canonical Z pattern over a 2x2 grid: (0,0) (1,0) (0,1) (1,1).
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        // Second-level quadrant: (2,0) starts the next Z block.
        assert_eq!(morton_encode(2, 0), 4);
    }

    #[test]
    fn round_trip_exhaustive_small() {
        for y in 0..32u32 {
            for x in 0..32u32 {
                assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn round_trip_large_coords() {
        for &(x, y) in &[(0xFFFF_FFFFu32, 0), (0, 0xFFFF_FFFF), (123_456_789, 987_654_321)] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn quadrant_blocks_are_contiguous() {
        // All 4 cells of the top-left 2x2 quadrant precede every cell of the
        // top-right quadrant — the recursive-locality property.
        let max_tl = (0..2)
            .flat_map(|y| (0..2).map(move |x| morton_encode(x, y)))
            .max()
            .unwrap();
        let min_tr = (0..2)
            .flat_map(|y| (2..4).map(move |x| morton_encode(x, y)))
            .min()
            .unwrap();
        assert!(max_tl < min_tr);
    }
}
