//! # apf-core
//!
//! The Adaptive Patch Framework (APF) — the primary contribution of
//! *"Adaptive Patching for High-resolution Image Segmentation with
//! Transformers"* (SC 2024).
//!
//! APF replaces the uniform grid patching of vision transformers with an
//! AMR-style adaptive decomposition:
//!
//! 1. Gaussian-blur the image and extract Canny edges ([`pipeline`]).
//! 2. Build a quadtree over the edge map, subdividing quadrants whose edge
//!    count exceeds a split value `v`, up to depth `H` ([`quadtree`], Eq. 6).
//! 3. Order the leaves along a Morton Z-curve ([`morton`]).
//! 4. Project every leaf to one minimal patch size `P_m` and randomly
//!    drop/pad to a fixed length `L` ([`patchify`]).
//!
//! The resulting `[L, P_m²]` token sequence feeds any transformer encoder
//! unchanged — typically orders of magnitude shorter than the uniform grid
//! at the same minimal patch size ([`uniform`] is the baseline).
//!
//! ```
//! use apf_core::{AdaptivePatcher, PatcherConfig};
//! use apf_imaging::GrayImage;
//!
//! // A quiet image with one busy corner.
//! let img = GrayImage::from_fn(128, 128, |x, y| {
//!     if x < 32 && y < 32 { ((x ^ y) % 5) as f32 / 4.0 } else { 0.8 }
//! });
//! let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(128));
//! let seq = patcher.patchify(&img);
//! assert!(seq.len() < (128 / 4) * (128 / 4)); // shorter than uniform 4x4 grid
//! ```

pub mod crc32;
pub mod error;
pub mod morton;
pub mod patchify;
pub mod pipeline;
pub mod quadtree;
pub mod stats;
pub mod uniform;
pub mod viz;

pub use crc32::{crc32, crc32_f32, Crc32};
pub use error::PatchError;
pub use morton::{morton_decode, morton_encode};
pub use patchify::{extract_patches, reconstruct_mask, Patch, PatchSequence};
pub use pipeline::{AdaptivePatcher, PatcherConfig, PreprocessTiming};
pub use quadtree::{LeafRegion, QuadTree, QuadTreeConfig, SplitCriterion, TreeStats};
pub use stats::{geomean, PatchStats};
pub use viz::{draw_leaf_grid, leaf_size_map};
pub use uniform::{uniform_patches, uniform_reconstruct, uniform_sequence_length};
