//! Quadtree partitioning of an image by detail density (Eq. 6 of the paper).
//!
//! A quadrant `Q_h` is subdivided into `{Q_NW, Q_NE, Q_SW, Q_SE}` while the
//! detail measure inside it exceeds the split value `v` and the depth bound
//! `H` has not been reached. With the paper's edge-count criterion the detail
//! measure is the number of Canny edge pixels in the quadrant, evaluated in
//! O(1) via an integral image.

use apf_imaging::image::GrayImage;
use apf_imaging::integral::IntegralImage;
use serde::{Deserialize, Serialize};

use crate::error::PatchError;
use crate::morton::morton_encode;

/// When to subdivide a quadrant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitCriterion {
    /// Paper's Eq. 6: split while the quadrant contains more than
    /// `split_value` detail pixels (Canny edge pixels).
    EdgeCount {
        /// The split value `v`.
        split_value: f64,
    },
    /// Ablation criterion: split while the pixel-intensity variance inside
    /// the quadrant exceeds `threshold`. Shows the framework is agnostic to
    /// the detail measure.
    Variance {
        /// Variance threshold in intensity units².
        threshold: f64,
    },
}

impl SplitCriterion {
    /// The split decision given aggregate statistics of a quadrant: `sum` is
    /// the sum of detail values over the quadrant, `sq_sum` the sum of their
    /// squares (required by [`SplitCriterion::Variance`], ignored by
    /// [`SplitCriterion::EdgeCount`]) and `area` the pixel count.
    ///
    /// This is the single source of truth for Eq. 6: both the in-memory
    /// [`QuadTree::try_build`] and the out-of-core streaming builder in
    /// `apf-gigapixel` feed their (identically-valued) sums through this
    /// function, which is what makes the two builds bit-identical.
    #[inline]
    pub fn exceeds(&self, sum: f64, sq_sum: Option<f64>, area: f64) -> Result<bool, PatchError> {
        match *self {
            SplitCriterion::EdgeCount { split_value } => Ok(sum > split_value),
            SplitCriterion::Variance { threshold } => {
                let mean = sum / area;
                let mean_sq = sq_sum.ok_or(PatchError::MissingSquaredIntegral)? / area;
                Ok((mean_sq - mean * mean).max(0.0) > threshold)
            }
        }
    }
}

/// Quadtree construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuadTreeConfig {
    /// Split rule (Eq. 6 uses edge counts).
    pub criterion: SplitCriterion,
    /// Maximum depth `H`; the root is depth 0.
    pub max_depth: u8,
    /// Smallest allowed leaf side in pixels (paper goes down to 2).
    pub min_leaf: u32,
    /// Enforce the AMR 2:1 balance rule (§II-A of the paper: "at most one
    /// level of refinement difference is typically allowed between
    /// neighboring quadrants"). APF itself does not require it — the
    /// transformer consumes leaves at any size ratio — but balanced trees
    /// bound the scale jump between sequence-adjacent patches.
    pub balance_2to1: bool,
}

impl Default for QuadTreeConfig {
    fn default() -> Self {
        QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 100.0 },
            max_depth: 9,
            min_leaf: 2,
            balance_2to1: false,
        }
    }
}

/// One leaf quadrant of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafRegion {
    /// Left pixel coordinate.
    pub x: u32,
    /// Top pixel coordinate.
    pub y: u32,
    /// Side length in pixels (always a power of two for power-of-two
    /// images).
    pub size: u32,
    /// Depth at which the leaf sits (root = 0).
    pub depth: u8,
}

impl LeafRegion {
    /// Morton code of the leaf's corner pixel; aligned quadrants sorted by
    /// this key follow the Z-curve.
    #[inline]
    pub fn morton(&self) -> u64 {
        morton_encode(self.x, self.y)
    }

    /// Pixel area of the leaf.
    #[inline]
    pub fn area(&self) -> u64 {
        self.size as u64 * self.size as u64
    }
}

/// Leaf and depth statistics of a built tree, computed once at the end of
/// construction (after Z-sorting and any 2:1 balancing) and stored on the
/// tree, so consumers — stats reports, bench binaries, telemetry gauges —
/// read them instead of re-walking the leaves.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TreeStats {
    /// Number of leaves (the adaptive sequence length before pad/drop).
    pub leaf_count: usize,
    /// Mean leaf side length in pixels (reported in Fig. 3).
    pub average_patch_size: f64,
    /// Smallest leaf side present (0 for an empty tree).
    pub min_leaf_size: u32,
    /// Largest leaf side present (0 for an empty tree).
    pub max_leaf_size: u32,
    /// Leaf side -> count, ascending by side.
    pub size_histogram: Vec<(u32, usize)>,
    /// Leaf depth -> count, ascending by depth.
    pub depth_histogram: Vec<(u8, usize)>,
}

impl TreeStats {
    /// Statistics of an empty leaf set.
    pub fn empty() -> TreeStats {
        TreeStats {
            leaf_count: 0,
            average_patch_size: 0.0,
            min_leaf_size: 0,
            max_leaf_size: 0,
            size_histogram: Vec::new(),
            depth_histogram: Vec::new(),
        }
    }

    /// One pass over the final leaf set.
    pub fn compute(leaves: &[LeafRegion]) -> TreeStats {
        if leaves.is_empty() {
            return TreeStats::empty();
        }
        let mut size_hist = std::collections::BTreeMap::new();
        let mut depth_hist = std::collections::BTreeMap::new();
        let mut size_sum = 0u64;
        for l in leaves {
            *size_hist.entry(l.size).or_insert(0usize) += 1;
            *depth_hist.entry(l.depth).or_insert(0usize) += 1;
            size_sum += l.size as u64;
        }
        TreeStats {
            leaf_count: leaves.len(),
            average_patch_size: size_sum as f64 / leaves.len() as f64,
            min_leaf_size: *size_hist.keys().next().unwrap(),
            max_leaf_size: *size_hist.keys().next_back().unwrap(),
            size_histogram: size_hist.into_iter().collect(),
            depth_histogram: depth_hist.into_iter().collect(),
        }
    }
}

/// A built quadtree: Z-ordered leaves plus build statistics.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// Image side length the tree was built over.
    pub resolution: usize,
    /// Leaves in Morton (Z-curve) order.
    pub leaves: Vec<LeafRegion>,
    /// Deepest level that actually occurred.
    pub max_depth_reached: u8,
    /// Total quadrants examined during the build.
    pub nodes_visited: usize,
    /// Leaf/depth statistics, frozen at build time.
    pub stats: TreeStats,
}

impl QuadTree {
    /// Builds the tree over a detail image (for [`SplitCriterion::EdgeCount`]
    /// this is the binary Canny edge map; for variance it is the image
    /// itself).
    ///
    /// # Panics
    /// Panics on any input [`QuadTree::try_build`] rejects (zero-sized,
    /// non-square, non-power-of-two, too small, or non-finite images).
    pub fn build(detail: &GrayImage, cfg: &QuadTreeConfig) -> QuadTree {
        Self::try_build(detail, cfg).unwrap_or_else(|e| panic!("quadtree build failed: {e}"))
    }

    /// Fallible tree construction: validates the detail image and returns a
    /// typed [`PatchError`] instead of panicking, so serving paths can turn
    /// bad input into a structured rejection.
    pub fn try_build(detail: &GrayImage, cfg: &QuadTreeConfig) -> Result<QuadTree, PatchError> {
        let (w, h) = (detail.width(), detail.height());
        if w == 0 || h == 0 {
            return Err(PatchError::Empty { width: w, height: h });
        }
        if w != h {
            return Err(PatchError::NotSquare { width: w, height: h });
        }
        let z = w;
        if !z.is_power_of_two() {
            return Err(PatchError::NonPowerOfTwo { size: z });
        }
        assert!(cfg.min_leaf >= 1, "min_leaf must be at least 1");
        if z < 2 * cfg.min_leaf as usize {
            return Err(PatchError::TooSmall { size: z, min_required: 2 * cfg.min_leaf as usize });
        }
        detail.validate_finite().map_err(PatchError::from)?;

        let sums = IntegralImage::new(detail);
        // For the variance criterion we also need sums of squares.
        let sq_sums = match cfg.criterion {
            SplitCriterion::Variance { .. } => {
                let sq = GrayImage::from_raw(
                    z,
                    z,
                    detail.data().iter().map(|&v| v * v).collect(),
                );
                Some(IntegralImage::new(&sq))
            }
            SplitCriterion::EdgeCount { .. } => None,
        };

        let mut tree = QuadTree {
            resolution: z,
            leaves: Vec::new(),
            max_depth_reached: 0,
            nodes_visited: 0,
            stats: TreeStats::empty(),
        };
        tree.subdivide(&sums, sq_sums.as_ref(), cfg, 0, 0, z as u32, 0)?;
        Ok(Self::from_leaves(z, cfg, tree.leaves, tree.max_depth_reached, tree.nodes_visited))
    }

    /// Assembles a tree from raw subdivision output: applies the optional
    /// 2:1 balance pass, Z-sorts the leaves, and freezes statistics.
    ///
    /// [`QuadTree::try_build`] and the streaming out-of-core builder in
    /// `apf-gigapixel` both finish through this function, so every
    /// post-processing step (balancing, ordering, stats) is shared and the
    /// two construction paths can only diverge in the subdivision itself.
    pub fn from_leaves(
        resolution: usize,
        cfg: &QuadTreeConfig,
        leaves: Vec<LeafRegion>,
        max_depth_reached: u8,
        nodes_visited: usize,
    ) -> QuadTree {
        let mut tree = QuadTree {
            resolution,
            leaves,
            max_depth_reached,
            nodes_visited,
            stats: TreeStats::empty(),
        };
        if cfg.balance_2to1 {
            tree.enforce_2to1_balance(cfg);
        }
        tree.leaves.sort_by_key(LeafRegion::morton);
        // Single stats pass over the final leaf set; everything downstream
        // (PatchStats, benches, telemetry gauges) reads the stored copy.
        tree.stats = TreeStats::compute(&tree.leaves);
        tree
    }

    /// Repeatedly splits any leaf with an edge-adjacent neighbour more than
    /// one refinement level finer, until the 2:1 invariant holds.
    /// Terminates because every pass strictly refines and depth/min-size
    /// bounds cap refinement.
    fn enforce_2to1_balance(&mut self, cfg: &QuadTreeConfig) {
        loop {
            // Coverage grid at the tree's finest granularity: cell (cx, cy)
            // holds the size of the leaf covering it.
            let gran = self.leaves.iter().map(|l| l.size).min().unwrap_or(1).max(1);
            let g = (self.resolution as u32 / gran) as usize;
            assert!(
                g * g <= 1 << 26,
                "2:1 balancing needs a {}x{} coverage grid; disable balance_2to1 at this scale",
                g,
                g
            );
            let mut size_at = vec![0u32; g * g];
            for l in &self.leaves {
                let cells = (l.size / gran) as usize;
                let cx0 = (l.x / gran) as usize;
                let cy0 = (l.y / gran) as usize;
                for cy in cy0..cy0 + cells {
                    for cx in cx0..cx0 + cells {
                        size_at[cy * g + cx] = l.size;
                    }
                }
            }
            let finer_than = |cx: i64, cy: i64, threshold: u32| -> bool {
                if cx < 0 || cy < 0 || cx >= g as i64 || cy >= g as i64 {
                    return false;
                }
                let s = size_at[cy as usize * g + cx as usize];
                s > 0 && s < threshold
            };

            let mut to_split = Vec::new();
            for (i, l) in self.leaves.iter().enumerate() {
                if l.size < 2 * cfg.min_leaf || l.depth >= cfg.max_depth {
                    continue;
                }
                let threshold = l.size / 2;
                let cx0 = (l.x / gran) as i64;
                let cy0 = (l.y / gran) as i64;
                let cells = (l.size / gran) as i64;
                let mut violates = false;
                for t in 0..cells {
                    if finer_than(cx0 - 1, cy0 + t, threshold)
                        || finer_than(cx0 + cells, cy0 + t, threshold)
                        || finer_than(cx0 + t, cy0 - 1, threshold)
                        || finer_than(cx0 + t, cy0 + cells, threshold)
                    {
                        violates = true;
                        break;
                    }
                }
                if violates {
                    to_split.push(i);
                }
            }
            if to_split.is_empty() {
                return;
            }
            to_split.sort_unstable_by(|a, b| b.cmp(a));
            for i in to_split {
                let l = self.leaves.swap_remove(i);
                let half = l.size / 2;
                for (dx, dy) in [(0, 0), (half, 0), (0, half), (half, half)] {
                    self.leaves.push(LeafRegion {
                        x: l.x + dx,
                        y: l.y + dy,
                        size: half,
                        depth: l.depth + 1,
                    });
                }
                self.max_depth_reached = self.max_depth_reached.max(l.depth + 1);
            }
        }
    }

    /// Verifies the AMR 2:1 invariant: no leaf has an edge-adjacent leaf
    /// smaller than half its side.
    pub fn validate_2to1_balance(&self) -> Result<(), String> {
        for a in &self.leaves {
            for b in &self.leaves {
                if b.size >= a.size / 2 {
                    continue;
                }
                // Edge adjacency: share a border segment.
                let horizontally_adjacent = (b.x + b.size == a.x || a.x + a.size == b.x)
                    && b.y < a.y + a.size
                    && a.y < b.y + b.size;
                let vertically_adjacent = (b.y + b.size == a.y || a.y + a.size == b.y)
                    && b.x < a.x + a.size
                    && a.x < b.x + b.size;
                if horizontally_adjacent || vertically_adjacent {
                    return Err(format!("2:1 violation: {:?} touches much finer {:?}", a, b));
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn subdivide(
        &mut self,
        sums: &IntegralImage,
        sq_sums: Option<&IntegralImage>,
        cfg: &QuadTreeConfig,
        x: u32,
        y: u32,
        size: u32,
        depth: u8,
    ) -> Result<(), PatchError> {
        self.nodes_visited += 1;
        self.max_depth_reached = self.max_depth_reached.max(depth);

        let can_split = depth < cfg.max_depth && size >= 2 * cfg.min_leaf && size >= 2;
        let wants_split = can_split && self.detail_exceeds(sums, sq_sums, cfg, x, y, size)?;
        if !wants_split {
            self.leaves.push(LeafRegion { x, y, size, depth });
            return Ok(());
        }
        let half = size / 2;
        // NW, NE, SW, SE — recursion order is irrelevant; leaves are
        // Z-sorted afterwards.
        self.subdivide(sums, sq_sums, cfg, x, y, half, depth + 1)?;
        self.subdivide(sums, sq_sums, cfg, x + half, y, half, depth + 1)?;
        self.subdivide(sums, sq_sums, cfg, x, y + half, half, depth + 1)?;
        self.subdivide(sums, sq_sums, cfg, x + half, y + half, size - half, depth + 1)
    }

    fn detail_exceeds(
        &self,
        sums: &IntegralImage,
        sq_sums: Option<&IntegralImage>,
        cfg: &QuadTreeConfig,
        x: u32,
        y: u32,
        size: u32,
    ) -> Result<bool, PatchError> {
        let (x, y, s) = (x as usize, y as usize, size as usize);
        let sum = sums.rect_sum(x, y, s, s);
        let sq_sum = match cfg.criterion {
            SplitCriterion::Variance { .. } => Some(
                sq_sums
                    .ok_or(PatchError::MissingSquaredIntegral)?
                    .rect_sum(x, y, s, s),
            ),
            SplitCriterion::EdgeCount { .. } => None,
        };
        cfg.criterion.exceeds(sum, sq_sum, (s * s) as f64)
    }

    /// Number of leaves (the adaptive sequence length before pad/drop).
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the tree has no leaves (never happens for valid builds).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Mean leaf side length in pixels (reported in Fig. 3), read from the
    /// statistics frozen at build time.
    pub fn average_patch_size(&self) -> f64 {
        self.stats.average_patch_size
    }

    /// Verifies the partition invariant: leaves are disjoint and tile the
    /// full image exactly. O(n log n); used by tests and debug assertions.
    pub fn validate_partition(&self) -> Result<(), String> {
        let total: u64 = self.leaves.iter().map(LeafRegion::area).sum();
        let expect = (self.resolution * self.resolution) as u64;
        if total != expect {
            return Err(format!("leaf areas sum to {} != {}", total, expect));
        }
        for l in &self.leaves {
            if l.x + l.size > self.resolution as u32 || l.y + l.size > self.resolution as u32 {
                return Err(format!("leaf {:?} out of bounds", l));
            }
        }
        // Exact disjointness via a coverage bitmap for sizes where the
        // bitmap is affordable; combined with the exact area check above,
        // "every pixel covered at most once" + "areas sum to the image"
        // implies a perfect tiling.
        if self.resolution <= 4096 {
            let z = self.resolution;
            let mut covered = vec![false; z * z];
            for l in &self.leaves {
                for y in l.y..l.y + l.size {
                    let row = y as usize * z;
                    for x in l.x..l.x + l.size {
                        let i = row + x as usize;
                        if covered[i] {
                            return Err(format!("pixel ({}, {}) covered twice", x, y));
                        }
                        covered[i] = true;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_cross(z: usize) -> GrayImage {
        // Edges along the two centre lines.
        GrayImage::from_fn(z, z, |x, y| {
            if x == z / 2 || y == z / 2 {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn flat_image_yields_single_leaf() {
        let img = GrayImage::new(64, 64);
        let tree = QuadTree::build(&img, &QuadTreeConfig::default());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.leaves[0].size, 64);
        tree.validate_partition().unwrap();
    }

    #[test]
    fn detail_forces_subdivision() {
        let img = edge_cross(64);
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 4.0 },
            max_depth: 6,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        assert!(tree.len() > 16, "expected many leaves, got {}", tree.len());
        tree.validate_partition().unwrap();
        // Small leaves hug the cross; large leaves fill the quiet corners.
        let sizes: Vec<u32> = tree.leaves.iter().map(|l| l.size).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.iter().any(|&s| s >= 8));
    }

    #[test]
    fn depth_limit_is_respected() {
        let img = edge_cross(64);
        for h in [1u8, 2, 3] {
            let cfg = QuadTreeConfig {
                criterion: SplitCriterion::EdgeCount { split_value: 0.5 },
                max_depth: h,
                min_leaf: 1,
                balance_2to1: false,
            };
            let tree = QuadTree::build(&img, &cfg);
            assert!(tree.leaves.iter().all(|l| l.depth <= h));
            assert_eq!(tree.max_depth_reached, h);
            tree.validate_partition().unwrap();
        }
    }

    #[test]
    fn min_leaf_is_respected() {
        let img = edge_cross(64);
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 0.5 },
            max_depth: 12,
            min_leaf: 4,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        assert!(tree.leaves.iter().all(|l| l.size >= 4));
    }

    #[test]
    fn split_value_controls_sequence_length() {
        let img = edge_cross(128);
        let len_at = |v: f64| {
            let cfg = QuadTreeConfig {
                criterion: SplitCriterion::EdgeCount { split_value: v },
                max_depth: 10,
                min_leaf: 2,
                balance_2to1: false,
            };
            QuadTree::build(&img, &cfg).len()
        };
        // Halving the split value must not shorten the sequence.
        assert!(len_at(20.0) >= len_at(50.0));
        assert!(len_at(50.0) >= len_at(100.0));
        assert!(len_at(20.0) > len_at(200.0));
    }

    #[test]
    fn leaves_are_z_ordered() {
        let img = edge_cross(64);
        let tree = QuadTree::build(&img, &QuadTreeConfig::default());
        for pair in tree.leaves.windows(2) {
            assert!(pair[0].morton() < pair[1].morton());
        }
    }

    #[test]
    fn worst_case_uniform_detail_degenerates_to_grid() {
        // Detail everywhere: quadtree == uniform grid at the depth bound
        // (paper: "the worst case becomes like uniform grid patching").
        let img = GrayImage::from_raw(32, 32, vec![1.0; 1024]);
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 3.0 },
            max_depth: 3,
            min_leaf: 1,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        assert_eq!(tree.len(), 64); // 4^3
        assert!(tree.leaves.iter().all(|l| l.size == 4));
    }

    #[test]
    fn variance_criterion_splits_textured_regions() {
        let img = GrayImage::from_fn(64, 64, |x, y| {
            if x < 32 {
                0.5 // flat half
            } else {
                ((x + y) % 2) as f32 // checkerboard half
            }
        });
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::Variance { threshold: 0.01 },
            max_depth: 4,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        tree.validate_partition().unwrap();
        // Flat side keeps big leaves; textured side is shredded.
        let left_max = tree.leaves.iter().filter(|l| l.x < 32).map(|l| l.size).max().unwrap();
        let right_max = tree.leaves.iter().filter(|l| l.x >= 32).map(|l| l.size).max().unwrap();
        assert!(left_max > right_max);
    }

    #[test]
    fn unbalanced_tree_can_violate_2to1() {
        // Detail concentrated in one corner produces a sharp size gradient.
        let img = GrayImage::from_fn(64, 64, |x, y| {
            if x < 8 && y < 8 {
                1.0
            } else {
                0.0
            }
        });
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 2.0 },
            max_depth: 5,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        assert!(tree.validate_2to1_balance().is_err(), "expected an unbalanced tree");
    }

    #[test]
    fn balance_2to1_restores_invariant_and_keeps_partition() {
        let img = GrayImage::from_fn(64, 64, |x, y| {
            if x < 8 && y < 8 {
                1.0
            } else {
                0.0
            }
        });
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 2.0 },
            max_depth: 5,
            min_leaf: 2,
            balance_2to1: true,
        };
        let tree = QuadTree::build(&img, &cfg);
        tree.validate_partition().unwrap();
        tree.validate_2to1_balance().unwrap();
        // Still Z-ordered after the balancing pass.
        for w in tree.leaves.windows(2) {
            assert!(w[0].morton() < w[1].morton());
        }
        // Balancing only refines: at least as many leaves as unbalanced.
        let unbalanced = QuadTree::build(
            &img,
            &QuadTreeConfig { balance_2to1: false, ..cfg },
        );
        assert!(tree.len() >= unbalanced.len());
    }

    #[test]
    fn balance_noop_on_already_balanced_trees() {
        // A flat image (single leaf) and a uniform grid are both balanced.
        let flat = QuadTree::build(
            &GrayImage::new(32, 32),
            &QuadTreeConfig { balance_2to1: true, ..QuadTreeConfig::default() },
        );
        assert_eq!(flat.len(), 1);
        flat.validate_2to1_balance().unwrap();
    }

    #[test]
    fn average_patch_size_single_leaf() {
        let img = GrayImage::new(16, 16);
        let tree = QuadTree::build(&img, &QuadTreeConfig::default());
        assert_eq!(tree.average_patch_size(), 16.0);
    }

    #[test]
    fn try_build_rejects_malformed_images_with_typed_errors() {
        use crate::error::PatchError;
        let cfg = QuadTreeConfig::default();
        assert_eq!(
            QuadTree::try_build(&GrayImage::new(0, 0), &cfg).unwrap_err(),
            PatchError::Empty { width: 0, height: 0 }
        );
        assert_eq!(
            QuadTree::try_build(&GrayImage::new(64, 32), &cfg).unwrap_err(),
            PatchError::NotSquare { width: 64, height: 32 }
        );
        assert_eq!(
            QuadTree::try_build(&GrayImage::new(48, 48), &cfg).unwrap_err(),
            PatchError::NonPowerOfTwo { size: 48 }
        );
        assert_eq!(
            QuadTree::try_build(&GrayImage::new(2, 2), &cfg).unwrap_err(),
            PatchError::TooSmall { size: 2, min_required: 4 }
        );
        let mut nan = GrayImage::new(16, 16);
        nan.set(5, 9, f32::NAN);
        assert!(matches!(
            QuadTree::try_build(&nan, &cfg).unwrap_err(),
            PatchError::NonFinitePixel { x: 5, y: 9, .. }
        ));
    }

    #[test]
    fn stored_stats_match_a_fresh_walk() {
        for balance in [false, true] {
            let cfg = QuadTreeConfig {
                criterion: SplitCriterion::EdgeCount { split_value: 4.0 },
                max_depth: 6,
                min_leaf: 2,
                balance_2to1: balance,
            };
            let tree = QuadTree::build(&edge_cross(64), &cfg);
            assert_eq!(tree.stats, TreeStats::compute(&tree.leaves));
            assert_eq!(tree.stats.leaf_count, tree.len());
            assert!(tree.stats.min_leaf_size <= tree.stats.max_leaf_size);
            let total: usize = tree.stats.size_histogram.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, tree.len());
            let total_d: usize = tree.stats.depth_histogram.iter().map(|&(_, c)| c).sum();
            assert_eq!(total_d, tree.len());
        }
        assert_eq!(TreeStats::compute(&[]), TreeStats::empty());
    }

    #[test]
    fn try_build_matches_build_on_valid_input() {
        let img = edge_cross(64);
        let cfg = QuadTreeConfig::default();
        let a = QuadTree::build(&img, &cfg);
        let b = QuadTree::try_build(&img, &cfg).unwrap();
        assert_eq!(a.leaves, b.leaves);
    }

    #[test]
    #[should_panic(expected = "quadtree build failed")]
    fn build_panics_with_typed_message_on_bad_input() {
        QuadTree::build(&GrayImage::new(10, 10), &QuadTreeConfig::default());
    }
}
