//! The Adaptive Patch Framework pipeline (Algorithm 1, lines 3-6):
//! Gaussian blur -> Canny edges -> quadtree -> Z-order patch extraction ->
//! optional pad/drop to a fixed sequence length.

use std::time::Instant;

use apf_imaging::canny::{canny, CannyConfig};
use apf_imaging::filter::gaussian_blur;
use apf_imaging::image::GrayImage;
use apf_telemetry::{Gauge, Histogram, Telemetry};
use serde::{Deserialize, Serialize};

use crate::error::PatchError;
use crate::patchify::{extract_patches, PatchSequence};
use crate::quadtree::{QuadTree, QuadTreeConfig, SplitCriterion};

/// The paper's per-resolution hyper-parameter table (§III-A and §IV-B):
/// resolutions, Gaussian kernel sizes, and quadtree depth limits.
pub const PAPER_RESOLUTIONS: [usize; 7] = [512, 1024, 4096, 8192, 16384, 32768, 65536];
/// Gaussian kernel size per [`PAPER_RESOLUTIONS`] entry.
pub const PAPER_KERNELS: [usize; 7] = [3, 3, 5, 7, 9, 11, 13];
/// Quadtree depth limit `H` per [`PAPER_RESOLUTIONS`] entry.
pub const PAPER_DEPTHS: [u8; 7] = [9, 10, 12, 13, 14, 15, 16];

/// Full configuration of the APF pre-processing pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatcherConfig {
    /// Gaussian blur kernel size `k` (odd; paper uses 3-13 by resolution).
    pub kernel: usize,
    /// Gaussian sigma; 0 derives it from `k` (the paper's `sigma = 0`).
    pub sigma: f32,
    /// Canny hysteresis thresholds (paper: `[100, 200]`).
    pub canny: CannyConfig,
    /// Quadtree split rule, depth limit, and minimum leaf.
    pub quadtree: QuadTreeConfig,
    /// Minimal patch size `P_m` every leaf is projected to.
    pub patch_size: usize,
    /// If set, pad/drop the sequence to exactly this length `L`.
    pub target_len: Option<usize>,
    /// Seed for the random drop in [`PatchSequence::fixed_length`].
    pub drop_seed: u64,
}

impl PatcherConfig {
    /// The paper's hyper-parameters for a given resolution (nearest table
    /// entry at or below `resolution`), with `P_m = 4` and no fixed length.
    pub fn for_resolution(resolution: usize) -> Self {
        let idx = PAPER_RESOLUTIONS
            .iter()
            .rposition(|&r| r <= resolution)
            .unwrap_or(0);
        PatcherConfig {
            kernel: PAPER_KERNELS[idx],
            sigma: 0.0,
            canny: CannyConfig::default(),
            quadtree: QuadTreeConfig {
                criterion: SplitCriterion::EdgeCount { split_value: 100.0 },
                max_depth: PAPER_DEPTHS[idx],
                min_leaf: 2,
                balance_2to1: false,
            },
            patch_size: 4,
            target_len: None,
            drop_seed: 0,
        }
    }

    /// Sets the projected patch size `P_m`.
    pub fn with_patch_size(mut self, pm: usize) -> Self {
        self.patch_size = pm;
        self
    }

    /// Sets the fixed sequence length `L`.
    pub fn with_target_len(mut self, len: usize) -> Self {
        self.target_len = Some(len);
        self
    }

    /// Sets the quadtree split value `v`.
    pub fn with_split_value(mut self, v: f64) -> Self {
        self.quadtree.criterion = SplitCriterion::EdgeCount { split_value: v };
        self
    }

    /// Sets the quadtree depth limit `H`.
    pub fn with_max_depth(mut self, h: u8) -> Self {
        self.quadtree.max_depth = h;
        self
    }
}

/// Wall-clock breakdown of one pre-processing run (overhead experiment,
/// §IV-G.3).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PreprocessTiming {
    /// Gaussian blur seconds.
    pub blur_s: f64,
    /// Canny seconds.
    pub canny_s: f64,
    /// Quadtree build seconds.
    pub quadtree_s: f64,
    /// Patch projection seconds.
    pub extract_s: f64,
}

impl PreprocessTiming {
    /// Total pre-processing seconds.
    pub fn total_s(&self) -> f64 {
        self.blur_s + self.canny_s + self.quadtree_s + self.extract_s
    }
}

/// Telemetry handles for the pre-processing hot path. All handles are inert
/// (one branch per use) when the patcher was built without telemetry.
#[derive(Clone, Default)]
struct CoreMetrics {
    tel: Telemetry,
    stage_blur_s: Histogram,
    stage_canny_s: Histogram,
    stage_quadtree_s: Histogram,
    stage_extract_s: Histogram,
    tree_leaves: Histogram,
    tree_depth: Histogram,
    seq_len_pre: Histogram,
    seq_len_post: Histogram,
    last_leaves: Gauge,
    last_max_depth: Gauge,
    last_avg_patch: Gauge,
    last_min_leaf: Gauge,
    last_max_leaf: Gauge,
}

impl CoreMetrics {
    fn new(tel: Telemetry) -> Self {
        let stage = |s: String| vec![("stage", s)];
        CoreMetrics {
            stage_blur_s: tel.histogram_with(
                "apf_core_patchify_stage_seconds",
                stage("blur".to_string()),
                "Per-stage pre-processing time",
            ),
            stage_canny_s: tel.histogram_with(
                "apf_core_patchify_stage_seconds",
                stage("canny".to_string()),
                "Per-stage pre-processing time",
            ),
            stage_quadtree_s: tel.histogram_with(
                "apf_core_patchify_stage_seconds",
                stage("quadtree".to_string()),
                "Per-stage pre-processing time",
            ),
            stage_extract_s: tel.histogram_with(
                "apf_core_patchify_stage_seconds",
                stage("extract".to_string()),
                "Per-stage pre-processing time",
            ),
            tree_leaves: tel.histogram(
                "apf_core_tree_leaf_count",
                "Quadtree leaf count (adaptive sequence length) per build",
            ),
            tree_depth: tel.histogram(
                "apf_core_tree_max_depth_levels",
                "Deepest subdivision level reached per build",
            ),
            seq_len_pre: tel.histogram(
                "apf_core_sequence_len_pre_tokens",
                "Sequence length before pad/drop",
            ),
            seq_len_post: tel.histogram(
                "apf_core_sequence_len_post_tokens",
                "Sequence length after pad/drop",
            ),
            last_leaves: tel.gauge(
                "apf_core_last_tree_leaf_count",
                "Leaf count of the most recent quadtree build",
            ),
            last_max_depth: tel.gauge(
                "apf_core_last_tree_max_depth_levels",
                "Max depth of the most recent quadtree build",
            ),
            last_avg_patch: tel.gauge(
                "apf_core_last_tree_avg_patch_pixels",
                "Mean leaf side of the most recent quadtree build",
            ),
            last_min_leaf: tel.gauge(
                "apf_core_last_tree_min_leaf_pixels",
                "Smallest leaf side of the most recent quadtree build",
            ),
            last_max_leaf: tel.gauge(
                "apf_core_last_tree_max_leaf_pixels",
                "Largest leaf side of the most recent quadtree build",
            ),
            tel,
        }
    }

    /// Publishes the build-time statistics stored on a tree.
    fn observe_tree(&self, tree: &QuadTree) {
        self.tree_leaves.record(tree.stats.leaf_count as f64);
        self.tree_depth.record(tree.max_depth_reached as f64);
        self.last_leaves.set(tree.stats.leaf_count as f64);
        self.last_max_depth.set(tree.max_depth_reached as f64);
        self.last_avg_patch.set(tree.stats.average_patch_size);
        self.last_min_leaf.set(tree.stats.min_leaf_size as f64);
        self.last_max_leaf.set(tree.stats.max_leaf_size as f64);
    }
}

/// The APF pre-processor: turns images into mixed-scale patch sequences.
///
/// Stateless and cheap to clone; one instance can serve a whole dataset.
#[derive(Clone)]
pub struct AdaptivePatcher {
    cfg: PatcherConfig,
    metrics: CoreMetrics,
}

impl std::fmt::Debug for AdaptivePatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePatcher")
            .field("cfg", &self.cfg)
            .field("telemetry", &self.metrics.tel)
            .finish()
    }
}

impl AdaptivePatcher {
    /// Creates a patcher from a configuration, without telemetry.
    pub fn new(cfg: PatcherConfig) -> Self {
        Self::with_telemetry(cfg, Telemetry::disabled())
    }

    /// Creates a patcher whose stage timings, tree statistics, and sequence
    /// lengths are recorded into `tel` (inert if `tel` is disabled).
    pub fn with_telemetry(cfg: PatcherConfig, tel: Telemetry) -> Self {
        assert!(cfg.kernel % 2 == 1, "blur kernel must be odd");
        assert!(cfg.patch_size >= 1);
        AdaptivePatcher { cfg, metrics: CoreMetrics::new(tel) }
    }

    /// The patcher's configuration.
    pub fn config(&self) -> &PatcherConfig {
        &self.cfg
    }

    /// Runs blur -> Canny -> quadtree and returns the tree (no patch
    /// extraction). Useful for statistics-only passes (Fig. 3, Table II
    /// sequence lengths).
    ///
    /// # Panics
    /// Panics on input [`AdaptivePatcher::try_tree`] rejects.
    pub fn tree(&self, img: &GrayImage) -> QuadTree {
        self.try_tree(img)
            .unwrap_or_else(|e| panic!("adaptive patching failed: {e}"))
    }

    /// Fallible blur -> Canny -> quadtree. Validates the *input* image
    /// (geometry and finiteness) before any processing, so malformed
    /// requests become a typed [`PatchError`] instead of a panic deep in
    /// the blur, Canny, or tree-build stages.
    pub fn try_tree(&self, img: &GrayImage) -> Result<QuadTree, PatchError> {
        Self::validate_input(img, &self.cfg.quadtree)?;
        let blurred = {
            let _span = self.metrics.tel.span("core.blur");
            let _t = self.metrics.stage_blur_s.start_timer();
            gaussian_blur(img, self.cfg.kernel, self.cfg.sigma)
        };
        let edges = {
            let _span = self.metrics.tel.span("core.canny");
            let _t = self.metrics.stage_canny_s.start_timer();
            canny(&blurred, self.cfg.canny)
        };
        let tree = {
            let _span = self.metrics.tel.span("core.quadtree");
            let _t = self.metrics.stage_quadtree_s.start_timer();
            QuadTree::try_build(&edges, &self.cfg.quadtree)?
        };
        self.metrics.observe_tree(&tree);
        Ok(tree)
    }

    /// The geometry/finiteness preconditions [`AdaptivePatcher::try_tree`]
    /// enforces, exposed so admission control can reject a request before
    /// paying for blur and Canny.
    pub fn validate_input(img: &GrayImage, cfg: &QuadTreeConfig) -> Result<(), PatchError> {
        let (w, h) = (img.width(), img.height());
        if w == 0 || h == 0 {
            return Err(PatchError::Empty { width: w, height: h });
        }
        if w != h {
            return Err(PatchError::NotSquare { width: w, height: h });
        }
        if !w.is_power_of_two() {
            return Err(PatchError::NonPowerOfTwo { size: w });
        }
        if w < 2 * cfg.min_leaf as usize {
            return Err(PatchError::TooSmall { size: w, min_required: 2 * cfg.min_leaf as usize });
        }
        img.validate_finite().map_err(PatchError::from)
    }

    /// Full Algorithm-1 pre-processing of one image.
    ///
    /// # Panics
    /// Panics on input [`AdaptivePatcher::try_patchify`] rejects.
    pub fn patchify(&self, img: &GrayImage) -> PatchSequence {
        self.try_patchify(img)
            .unwrap_or_else(|e| panic!("adaptive patching failed: {e}"))
    }

    /// Fallible Algorithm-1 pre-processing: typed rejection instead of a
    /// panic on malformed images.
    pub fn try_patchify(&self, img: &GrayImage) -> Result<PatchSequence, PatchError> {
        let _span = self.metrics.tel.span("core.patchify");
        let tree = self.try_tree(img)?;
        let seq = {
            let _span = self.metrics.tel.span("core.extract");
            let _t = self.metrics.stage_extract_s.start_timer();
            extract_patches(img, &tree.leaves, self.cfg.patch_size)
        };
        self.metrics.seq_len_pre.record(seq.len() as f64);
        let seq = match self.cfg.target_len {
            Some(len) => seq.fixed_length(len, self.cfg.drop_seed),
            None => seq,
        };
        self.metrics.seq_len_post.record(seq.len() as f64);
        Ok(seq)
    }

    /// Pre-processes an image together with its ground-truth mask: both are
    /// patched over the *same* leaves, so token `i` of the image sequence
    /// aligns with token `i` of the mask sequence.
    pub fn patchify_with_mask(&self, img: &GrayImage, mask: &GrayImage) -> (PatchSequence, PatchSequence) {
        assert_eq!(img.width(), mask.width());
        assert_eq!(img.height(), mask.height());
        let tree = self.tree(img);
        let xs = extract_patches(img, &tree.leaves, self.cfg.patch_size);
        let ys = extract_patches(mask, &tree.leaves, self.cfg.patch_size);
        match self.cfg.target_len {
            Some(len) => (
                xs.fixed_length(len, self.cfg.drop_seed),
                ys.fixed_length(len, self.cfg.drop_seed),
            ),
            None => (xs, ys),
        }
    }

    /// Like [`AdaptivePatcher::patchify_with_mask`] but samples the mask
    /// with nearest-neighbour projection, preserving integer class labels
    /// (multi-class segmentation, e.g. BTCV organ maps).
    pub fn patchify_with_labels(&self, img: &GrayImage, labels: &GrayImage) -> (PatchSequence, PatchSequence) {
        assert_eq!(img.width(), labels.width());
        assert_eq!(img.height(), labels.height());
        let tree = self.tree(img);
        let xs = extract_patches(img, &tree.leaves, self.cfg.patch_size);
        let ys = crate::patchify::extract_patches_nearest(labels, &tree.leaves, self.cfg.patch_size);
        match self.cfg.target_len {
            Some(len) => (
                xs.fixed_length(len, self.cfg.drop_seed),
                ys.fixed_length(len, self.cfg.drop_seed),
            ),
            None => (xs, ys),
        }
    }

    /// Like [`AdaptivePatcher::patchify`] but returns a stage-by-stage
    /// wall-clock breakdown (the paper's overhead experiment).
    pub fn timed_patchify(&self, img: &GrayImage) -> (PatchSequence, PreprocessTiming) {
        let _span = self.metrics.tel.span("core.patchify");
        let mut t = PreprocessTiming::default();
        let t0 = Instant::now();
        let blurred = gaussian_blur(img, self.cfg.kernel, self.cfg.sigma);
        t.blur_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let edges = canny(&blurred, self.cfg.canny);
        t.canny_s = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let tree = QuadTree::build(&edges, &self.cfg.quadtree);
        t.quadtree_s = t2.elapsed().as_secs_f64();
        self.metrics.observe_tree(&tree);

        let t3 = Instant::now();
        let seq = extract_patches(img, &tree.leaves, self.cfg.patch_size);
        self.metrics.seq_len_pre.record(seq.len() as f64);
        let seq = match self.cfg.target_len {
            Some(len) => seq.fixed_length(len, self.cfg.drop_seed),
            None => seq,
        };
        t.extract_s = t3.elapsed().as_secs_f64();
        self.metrics.seq_len_post.record(seq.len() as f64);

        // The same wall-clock figures flow into the registry histograms, so
        // timed and untimed paths report through one substrate.
        self.metrics.stage_blur_s.record(t.blur_s);
        self.metrics.stage_canny_s.record(t.canny_s);
        self.metrics.stage_quadtree_s.record(t.quadtree_s);
        self.metrics.stage_extract_s.record(t.extract_s);
        (seq, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_imaging::paip::{PaipConfig, PaipGenerator};

    #[test]
    fn paper_hyperparameters_lookup() {
        let c = PatcherConfig::for_resolution(512);
        assert_eq!(c.kernel, 3);
        assert_eq!(c.quadtree.max_depth, 9);
        let c = PatcherConfig::for_resolution(4096);
        assert_eq!(c.kernel, 5);
        assert_eq!(c.quadtree.max_depth, 12);
        let c = PatcherConfig::for_resolution(65536);
        assert_eq!(c.kernel, 13);
        assert_eq!(c.quadtree.max_depth, 16);
        // In-between resolutions round down.
        let c = PatcherConfig::for_resolution(2048);
        assert_eq!(c.kernel, 3);
    }

    #[test]
    fn apf_shortens_pathology_sequences() {
        // The headline property: far fewer patches than the uniform grid at
        // the same minimal patch size.
        let gen = PaipGenerator::new(PaipConfig::at_resolution(256));
        let sample = gen.generate(0);
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(256).with_patch_size(4),
        );
        let seq = patcher.patchify(&sample.image);
        let uniform = (256 / 4) * (256 / 4);
        assert!(
            seq.len() * 2 < uniform,
            "APF {} vs uniform {}",
            seq.len(),
            uniform
        );
    }

    #[test]
    fn mask_sequence_aligns_with_image_sequence() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(128));
        let s = gen.generate(1);
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(128)
                .with_patch_size(4)
                .with_target_len(128),
        );
        let (xs, ys) = patcher.patchify_with_mask(&s.image, &s.mask);
        assert_eq!(xs.len(), 128);
        assert_eq!(ys.len(), 128);
        for (a, b) in xs.patches.iter().zip(ys.patches.iter()) {
            assert_eq!(a.region, b.region);
        }
    }

    #[test]
    fn timed_patchify_reports_positive_times() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(128));
        let s = gen.generate(2);
        let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(128));
        let (seq, timing) = patcher.timed_patchify(&s.image);
        assert!(!seq.is_empty());
        assert!(timing.total_s() > 0.0);
        assert!(timing.total_s() < 60.0);
    }

    #[test]
    fn try_patchify_rejects_bad_inputs_and_accepts_good_ones() {
        let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(128));
        // Non-square.
        let err = patcher.try_patchify(&GrayImage::new(64, 32)).unwrap_err();
        assert_eq!(err, crate::error::PatchError::NotSquare { width: 64, height: 32 });
        // NaN pixel.
        let mut nan = GrayImage::new(64, 64);
        nan.set(1, 2, f32::NAN);
        assert!(matches!(
            patcher.try_patchify(&nan).unwrap_err(),
            crate::error::PatchError::NonFinitePixel { x: 1, y: 2, .. }
        ));
        // Valid input round-trips identically to the panicking path.
        let gen = PaipGenerator::new(PaipConfig::at_resolution(128));
        let s = gen.generate(4);
        let a = patcher.patchify(&s.image);
        let b = patcher.try_patchify(&s.image).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn telemetry_records_stages_tree_stats_and_seq_lengths() {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(128));
        let s = gen.generate(5);
        let tel = Telemetry::enabled();
        let patcher = AdaptivePatcher::with_telemetry(
            PatcherConfig::for_resolution(128).with_target_len(64),
            tel.clone(),
        );
        let seq = patcher.try_patchify(&s.image).unwrap();
        assert_eq!(seq.len(), 64);

        let snap = tel.snapshot();
        for stage in ["blur", "canny", "quadtree", "extract"] {
            let m = snap
                .get("apf_core_patchify_stage_seconds", &[("stage", stage)])
                .unwrap_or_else(|| panic!("missing stage {stage}"));
            assert_eq!(m.histogram.as_ref().unwrap().count, 1, "{stage}");
        }
        let tree = patcher.tree(&s.image);
        let leaves = snap.get("apf_core_last_tree_leaf_count", &[]).unwrap();
        assert_eq!(leaves.value, tree.stats.leaf_count as f64);
        let post = snap.get("apf_core_sequence_len_post_tokens", &[]).unwrap();
        assert_eq!(post.histogram.as_ref().unwrap().max, 64.0);

        // Span tree: core.patchify wraps the stage spans.
        let names: Vec<&str> = tel.trace_events().iter().map(|e| e.name).collect();
        for n in ["core.patchify", "core.blur", "core.canny", "core.quadtree", "core.extract"] {
            assert!(names.contains(&n), "missing span {n} in {names:?}");
        }
        // Disabled telemetry records nothing and changes nothing.
        let plain = AdaptivePatcher::new(PatcherConfig::for_resolution(128).with_target_len(64));
        assert_eq!(plain.try_patchify(&s.image).unwrap().len(), 64);
    }

    #[test]
    fn split_value_sweep_monotone_on_real_texture() {
        // Fig. 3's driver property on a generated pathology slide.
        let gen = PaipGenerator::new(PaipConfig::at_resolution(256));
        let s = gen.generate(3);
        let mut lens = Vec::new();
        for v in [20.0, 50.0, 100.0] {
            let p = AdaptivePatcher::new(
                PatcherConfig::for_resolution(256).with_split_value(v),
            );
            lens.push(p.tree(&s.image).len());
        }
        assert!(lens[0] >= lens[1] && lens[1] >= lens[2], "{:?}", lens);
        assert!(lens[0] > lens[2], "{:?}", lens);
    }
}
