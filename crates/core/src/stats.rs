//! Sequence statistics reported by the paper (Fig. 3, Tables II/III).

use serde::Serialize;

use crate::quadtree::QuadTree;

/// Summary of one quadtree's patching outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PatchStats {
    /// Image resolution Z.
    pub resolution: usize,
    /// Adaptive sequence length (leaf count).
    pub sequence_length: usize,
    /// Mean leaf side in pixels.
    pub average_patch_size: f64,
    /// Deepest subdivision level reached.
    pub max_depth: u8,
    /// Histogram of leaf side -> count, ascending by side.
    pub size_histogram: Vec<(u32, usize)>,
    /// Reduction factor vs. the uniform grid at the smallest leaf size.
    pub reduction_vs_uniform: f64,
}

impl PatchStats {
    /// Statistics for a built tree, read from the leaf/depth summary the
    /// tree froze at build time (no re-walk of the leaves).
    pub fn from_tree(tree: &QuadTree) -> PatchStats {
        let s = &tree.stats;
        let min_size = s.min_leaf_size.max(1);
        let uniform = (tree.resolution / min_size as usize).pow(2);
        PatchStats {
            resolution: tree.resolution,
            sequence_length: s.leaf_count,
            average_patch_size: s.average_patch_size,
            max_depth: tree.max_depth_reached,
            size_histogram: s.size_histogram.clone(),
            reduction_vs_uniform: uniform as f64 / s.leaf_count.max(1) as f64,
        }
    }
}

/// Mean of a slice of f64 (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of positive values (used for the paper's geomean speedup).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree::{QuadTree, QuadTreeConfig, SplitCriterion};
    use apf_imaging::image::GrayImage;

    #[test]
    fn stats_of_flat_image() {
        let tree = QuadTree::build(&GrayImage::new(32, 32), &QuadTreeConfig::default());
        let s = PatchStats::from_tree(&tree);
        assert_eq!(s.sequence_length, 1);
        assert_eq!(s.average_patch_size, 32.0);
        assert_eq!(s.size_histogram, vec![(32, 1)]);
        assert_eq!(s.reduction_vs_uniform, 1.0);
    }

    #[test]
    fn reduction_reflects_detail_concentration() {
        let edges = GrayImage::from_fn(64, 64, |x, y| {
            if x == 32 || y == 32 {
                1.0
            } else {
                0.0
            }
        });
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 4.0 },
            max_depth: 5,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&edges, &cfg);
        let s = PatchStats::from_tree(&tree);
        // Uniform 2x2 grid would be 1024 patches; APF should use far fewer.
        assert!(s.sequence_length < 1024 / 2, "seq len {}", s.sequence_length);
        assert!(s.reduction_vs_uniform > 2.0);
        let total: usize = s.size_histogram.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s.sequence_length);
    }

    #[test]
    fn geomean_matches_known_value() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
