//! From quadtree leaves to a fixed-size patch sequence (paper §III-A,
//! steps 3-6 of Algorithm 1).
//!
//! Every leaf — whatever its side length — is projected to the same minimal
//! patch size `P_m` by area averaging, the Z-ordered sequence is then
//! randomly dropped or zero-padded to a fixed length `L`, and the result can
//! be flattened into a `[L, P_m * P_m]` token tensor for any transformer.

use apf_imaging::image::GrayImage;
use apf_imaging::resize::resize_area;
use apf_tensor::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::quadtree::LeafRegion;

/// One projected patch: `pm x pm` pixels plus the leaf it came from.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Row-major `pm * pm` pixel block.
    pub pixels: Vec<f32>,
    /// Source region in the original image; `None` for padding patches.
    pub region: Option<LeafRegion>,
}

/// A Z-ordered sequence of uniform-size patches extracted from one image.
#[derive(Debug, Clone)]
pub struct PatchSequence {
    /// Patches in Z order (padding, if any, at the tail).
    pub patches: Vec<Patch>,
    /// Patch side length `P_m`.
    pub patch_size: usize,
    /// Source image resolution.
    pub resolution: usize,
}

impl PatchSequence {
    /// Number of patches (including padding).
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// True if the sequence contains no patches.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// Number of non-padding patches.
    pub fn real_len(&self) -> usize {
        self.patches.iter().filter(|p| p.region.is_some()).count()
    }

    /// Flattens into a `[len, P_m * P_m]` token tensor.
    pub fn to_tensor(&self) -> Tensor {
        let d = self.patch_size * self.patch_size;
        let mut data = Vec::with_capacity(self.len() * d);
        for p in &self.patches {
            debug_assert_eq!(p.pixels.len(), d);
            data.extend_from_slice(&p.pixels);
        }
        Tensor::new([self.len(), d], data)
    }

    /// Per-token scale feature: `log2(leaf size)` normalized by `log2(Z)`,
    /// zero for padding. Models may append this as an extra input channel.
    pub fn scale_features(&self) -> Vec<f32> {
        self.scale_features_impl()
    }

    /// Per-token padding mask: `true` for real patches, `false` for the
    /// zero padding appended by [`PatchSequence::fixed_length`]. Feed to
    /// attention key-masking (`MultiHeadAttention::forward_with_key_mask`
    /// in `apf-models`) so padding cannot dilute real tokens' attention.
    pub fn padding_mask(&self) -> Vec<bool> {
        self.patches.iter().map(|p| p.region.is_some()).collect()
    }

    fn scale_features_impl(&self) -> Vec<f32> {
        let logz = (self.resolution as f32).log2();
        self.patches
            .iter()
            .map(|p| {
                p.region
                    .map(|r| (r.size as f32).log2() / logz)
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Enforces a fixed length `L`: randomly drops surplus patches (keeping
    /// Z order) or appends zero padding. Deterministic in `seed`.
    pub fn fixed_length(&self, target: usize, seed: u64) -> PatchSequence {
        let d = self.patch_size * self.patch_size;
        let mut patches: Vec<Patch>;
        if self.len() > target {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut keep: Vec<usize> = (0..self.len()).collect();
            keep.shuffle(&mut rng);
            keep.truncate(target);
            keep.sort_unstable(); // preserve Z order among the survivors
            patches = keep.into_iter().map(|i| self.patches[i].clone()).collect();
        } else {
            patches = self.patches.clone();
            patches.resize(
                target,
                Patch {
                    pixels: vec![0.0; d],
                    region: None,
                },
            );
        }
        PatchSequence {
            patches,
            patch_size: self.patch_size,
            resolution: self.resolution,
        }
    }
}

/// Projects each leaf of `leaves` onto a `pm x pm` patch by area-averaging
/// its image region. Leaves must already be Z-ordered.
pub fn extract_patches(img: &GrayImage, leaves: &[LeafRegion], pm: usize) -> PatchSequence {
    assert!(pm >= 1, "patch size must be positive");
    let patches: Vec<Patch> = leaves
        .par_iter()
        .map(|leaf| {
            let crop = img.crop(leaf.x as usize, leaf.y as usize, leaf.size as usize, leaf.size as usize);
            let proj = if leaf.size as usize == pm {
                crop
            } else {
                resize_area(&crop, pm, pm)
            };
            Patch {
                pixels: proj.data().to_vec(),
                region: Some(*leaf),
            }
        })
        .collect();
    PatchSequence {
        patches,
        patch_size: pm,
        resolution: img.width(),
    }
}

/// Like [`extract_patches`] but with nearest-neighbour sampling — required
/// for *label* images, where area averaging would invent classes.
pub fn extract_patches_nearest(img: &GrayImage, leaves: &[LeafRegion], pm: usize) -> PatchSequence {
    assert!(pm >= 1, "patch size must be positive");
    let patches: Vec<Patch> = leaves
        .par_iter()
        .map(|leaf| {
            let crop = img.crop(leaf.x as usize, leaf.y as usize, leaf.size as usize, leaf.size as usize);
            let proj = if leaf.size as usize == pm {
                crop
            } else {
                apf_imaging::resize::resize_nearest(&crop, pm, pm)
            };
            Patch {
                pixels: proj.data().to_vec(),
                region: Some(*leaf),
            }
        })
        .collect();
    PatchSequence {
        patches,
        patch_size: pm,
        resolution: img.width(),
    }
}

/// Paints per-patch predictions back onto the full-resolution canvas:
/// each patch's `pm x pm` prediction is rescaled (nearest) to its leaf
/// region. Padding patches are ignored. The inverse of [`extract_patches`]
/// for label masks.
pub fn reconstruct_mask(seq: &PatchSequence, preds: &Tensor) -> GrayImage {
    let pm = seq.patch_size;
    let d = pm * pm;
    assert_eq!(
        preds.numel(),
        seq.len() * d,
        "predictions must be [L, pm*pm]"
    );
    let z = seq.resolution;
    let mut out = GrayImage::new(z, z);
    for (patch, pred) in seq.patches.iter().zip(preds.data().chunks_exact(d)) {
        let Some(r) = patch.region else { continue };
        let s = r.size as usize;
        for yy in 0..s {
            let py = yy * pm / s;
            for xx in 0..s {
                let px = xx * pm / s;
                out.set(r.x as usize + xx, r.y as usize + yy, pred[py * pm + px]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree::{QuadTree, QuadTreeConfig, SplitCriterion};

    fn demo_tree(z: usize) -> (GrayImage, QuadTree) {
        let img = GrayImage::from_fn(z, z, |x, y| ((x * 13 + y * 7) % 16) as f32 / 15.0);
        let edges = GrayImage::from_fn(z, z, |x, y| {
            if x == z / 2 || y == z / 2 {
                1.0
            } else {
                0.0
            }
        });
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: 8.0 },
            max_depth: 5,
            min_leaf: 2,
            balance_2to1: false,
        };
        (img, QuadTree::build(&edges, &cfg))
    }

    #[test]
    fn extraction_matches_leaf_count_and_size() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4);
        assert_eq!(seq.len(), tree.len());
        assert!(seq.patches.iter().all(|p| p.pixels.len() == 16));
        assert_eq!(seq.real_len(), seq.len());
    }

    #[test]
    fn same_size_leaf_is_copied_verbatim() {
        let img = GrayImage::from_fn(8, 8, |x, y| (y * 8 + x) as f32 / 63.0);
        let leaf = LeafRegion { x: 4, y: 0, size: 4, depth: 1 };
        let seq = extract_patches(&img, &[leaf], 4);
        let expect = img.crop(4, 0, 4, 4);
        assert_eq!(seq.patches[0].pixels, expect.data());
    }

    #[test]
    fn large_leaf_is_area_averaged() {
        let img = GrayImage::from_fn(4, 4, |x, _| if x < 2 { 0.0 } else { 1.0 });
        let leaf = LeafRegion { x: 0, y: 0, size: 4, depth: 0 };
        let seq = extract_patches(&img, &[leaf], 2);
        assert_eq!(seq.patches[0].pixels, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn to_tensor_shape() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4);
        let t = seq.to_tensor();
        assert_eq!(t.dims(), &[seq.len(), 16]);
    }

    #[test]
    fn fixed_length_pads_with_zero_patches() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4);
        let target = seq.len() + 5;
        let padded = seq.fixed_length(target, 1);
        assert_eq!(padded.len(), target);
        assert_eq!(padded.real_len(), seq.len());
        assert!(padded.patches[target - 1].pixels.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fixed_length_drops_preserving_order() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4);
        let target = seq.len() / 2;
        let dropped = seq.fixed_length(target, 7);
        assert_eq!(dropped.len(), target);
        // Surviving patches must still be Z-ordered.
        let mortons: Vec<u64> = dropped
            .patches
            .iter()
            .filter_map(|p| p.region.map(|r| r.morton()))
            .collect();
        for w in mortons.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Deterministic in the seed.
        let again = seq.fixed_length(target, 7);
        let r1: Vec<_> = dropped.patches.iter().map(|p| p.region).collect();
        let r2: Vec<_> = again.patches.iter().map(|p| p.region).collect();
        assert_eq!(r1, r2);
        let other = seq.fixed_length(target, 8);
        let r3: Vec<_> = other.patches.iter().map(|p| p.region).collect();
        assert_ne!(r1, r3);
    }

    #[test]
    fn padding_mask_marks_pads_only() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4).fixed_length(tree.len() + 3, 0);
        let mask = seq.padding_mask();
        assert_eq!(mask.len(), tree.len() + 3);
        assert_eq!(mask.iter().filter(|&&m| m).count(), tree.len());
        assert!(mask[..tree.len()].iter().all(|&m| m));
        assert!(mask[tree.len()..].iter().all(|&m| !m));
    }

    #[test]
    fn scale_features_normalized() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4).fixed_length(tree.len() + 2, 0);
        let f = seq.scale_features();
        assert_eq!(f.len(), tree.len() + 2);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(f[f.len() - 1], 0.0); // padding
    }

    #[test]
    fn reconstruct_inverts_extract_for_constant_patches() {
        // A mask that is constant inside every leaf reconstructs exactly.
        let (_, tree) = demo_tree(64);
        let mask = GrayImage::from_fn(64, 64, |x, y| {
            // Constant per quadrant of the image.
            if x < 32 && y < 32 {
                1.0
            } else {
                0.0
            }
        });
        let seq = extract_patches(&mask, &tree.leaves, 4);
        let rec = reconstruct_mask(&seq, &seq.to_tensor());
        for y in 0..64 {
            for x in 0..64 {
                assert_eq!(rec.get(x, y), mask.get(x, y), "at ({}, {})", x, y);
            }
        }
    }

    #[test]
    fn reconstruct_ignores_padding() {
        let (img, tree) = demo_tree(64);
        let seq = extract_patches(&img, &tree.leaves, 4).fixed_length(tree.len() + 3, 0);
        let rec = reconstruct_mask(&seq, &seq.to_tensor());
        assert_eq!(rec.width(), 64);
    }
}
