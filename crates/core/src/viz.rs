//! Visualization of quadtree decompositions: renders leaf boundaries onto
//! an image (the mixed-scale grid shown in the paper's Fig. 1).

use apf_imaging::image::GrayImage;

use crate::quadtree::{LeafRegion, QuadTree};

/// Draws the boundary of every leaf onto a copy of `img` with pixel value
/// `ink` (e.g. 0.0 for black lines on a bright slide).
pub fn draw_leaf_grid(img: &GrayImage, leaves: &[LeafRegion], ink: f32) -> GrayImage {
    let mut out = img.clone();
    let (w, h) = (img.width(), img.height());
    for l in leaves {
        let x0 = l.x as usize;
        let y0 = l.y as usize;
        let x1 = (l.x + l.size - 1) as usize;
        let y1 = (l.y + l.size - 1) as usize;
        if x1 >= w || y1 >= h {
            continue;
        }
        for x in x0..=x1 {
            out.set(x, y0, ink);
            out.set(x, y1, ink);
        }
        for y in y0..=y1 {
            out.set(x0, y, ink);
            out.set(x1, y, ink);
        }
    }
    out
}

/// Renders the tree's *leaf size* as an intensity map: small (detailed)
/// leaves bright, large (quiet) leaves dark — a heat map of where APF
/// spends its tokens.
pub fn leaf_size_map(tree: &QuadTree) -> GrayImage {
    let z = tree.resolution;
    let mut out = GrayImage::new(z, z);
    let max_size = tree.leaves.iter().map(|l| l.size).max().unwrap_or(1) as f32;
    let min_size = tree.leaves.iter().map(|l| l.size).min().unwrap_or(1) as f32;
    let denom = (max_size.log2() - min_size.log2()).max(1e-6);
    for l in &tree.leaves {
        let heat = 1.0 - ((l.size as f32).log2() - min_size.log2()).max(0.0) / denom;
        for y in l.y..l.y + l.size {
            for x in l.x..l.x + l.size {
                out.set(x as usize, y as usize, heat);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree::QuadTreeConfig;

    fn demo_tree() -> (GrayImage, QuadTree) {
        let img = GrayImage::from_fn(32, 32, |x, y| if x == 16 || y == 16 { 1.0 } else { 0.2 });
        let cfg = QuadTreeConfig {
            criterion: crate::quadtree::SplitCriterion::EdgeCount { split_value: 4.0 },
            max_depth: 4,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        (img, tree)
    }

    #[test]
    fn grid_lines_are_drawn_at_leaf_borders() {
        let (img, tree) = demo_tree();
        let drawn = draw_leaf_grid(&img, &tree.leaves, 0.0);
        // The image border is always a leaf border.
        assert_eq!(drawn.get(0, 0), 0.0);
        assert_eq!(drawn.get(31, 31), 0.0);
        // Interior pixels of large leaves keep their value.
        let big = tree.leaves.iter().max_by_key(|l| l.size).unwrap();
        if big.size >= 4 {
            let cx = (big.x + big.size / 2) as usize;
            let cy = (big.y + big.size / 2) as usize;
            assert_eq!(drawn.get(cx, cy), img.get(cx, cy));
        }
    }

    #[test]
    fn size_map_bright_where_detailed() {
        let (_, tree) = demo_tree();
        let map = leaf_size_map(&tree);
        // Near the cross (detail) the map is brighter than at the corners.
        let near_detail = map.get(16, 15);
        let corner = map.get(2, 2);
        assert!(near_detail > corner, "{} vs {}", near_detail, corner);
        let (lo, hi) = map.min_max();
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn single_leaf_map_is_uniform() {
        let img = GrayImage::new(16, 16);
        let tree = QuadTree::build(&img, &QuadTreeConfig::default());
        let map = leaf_size_map(&tree);
        let (lo, hi) = map.min_max();
        assert_eq!(lo, hi);
    }
}
