//! Uniform grid patching — the ViT baseline APF is compared against.
//!
//! Divides a `Z x Z` image into `(Z/P)^2` non-overlapping `P x P` patches,
//! concatenated row-major (the standard ViT order).

use apf_imaging::image::GrayImage;
use apf_tensor::tensor::Tensor;

use crate::patchify::{Patch, PatchSequence};
use crate::quadtree::LeafRegion;

/// Sequence length of uniform patching: `(Z / P)^2`.
pub fn uniform_sequence_length(resolution: usize, patch: usize) -> usize {
    assert!(patch > 0 && resolution.is_multiple_of(patch), "patch must divide resolution");
    let g = resolution / patch;
    g * g
}

/// Extracts the uniform grid as a [`PatchSequence`] (row-major order).
///
/// Returned patches carry their grid region, so the same reconstruction and
/// tensor paths as adaptive sequences apply.
pub fn uniform_patches(img: &GrayImage, patch: usize) -> PatchSequence {
    let z = img.width();
    assert_eq!(img.width(), img.height(), "uniform patching requires square images");
    assert!(patch > 0 && z.is_multiple_of(patch), "patch must divide resolution");
    let g = z / patch;
    let depth = (g as f32).log2() as u8;
    let mut patches = Vec::with_capacity(g * g);
    for gy in 0..g {
        for gx in 0..g {
            let crop = img.crop(gx * patch, gy * patch, patch, patch);
            patches.push(Patch {
                pixels: crop.data().to_vec(),
                region: Some(LeafRegion {
                    x: (gx * patch) as u32,
                    y: (gy * patch) as u32,
                    size: patch as u32,
                    depth,
                }),
            });
        }
    }
    PatchSequence {
        patches,
        patch_size: patch,
        resolution: z,
    }
}

/// Reassembles a row-major uniform patch tensor `[N, P*P]` into an image.
pub fn uniform_reconstruct(preds: &Tensor, resolution: usize, patch: usize) -> GrayImage {
    let g = resolution / patch;
    assert_eq!(preds.numel(), g * g * patch * patch);
    let mut out = GrayImage::new(resolution, resolution);
    let d = patch * patch;
    for (i, block) in preds.data().chunks_exact(d).enumerate() {
        let gx = i % g;
        let gy = i / g;
        for yy in 0..patch {
            for xx in 0..patch {
                out.set(gx * patch + xx, gy * patch + yy, block[yy * patch + xx]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_length_formula() {
        // The paper's example: Z = 512, P = 8 -> N = 4096.
        assert_eq!(uniform_sequence_length(512, 8), 4096);
        assert_eq!(uniform_sequence_length(64, 16), 16);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_divisible_patch_panics() {
        uniform_sequence_length(100, 7);
    }

    #[test]
    fn patches_tile_image_row_major() {
        let img = GrayImage::from_fn(8, 8, |x, y| (y * 8 + x) as f32);
        let seq = uniform_patches(&img, 4);
        assert_eq!(seq.len(), 4);
        // Top-left patch first, then top-right.
        assert_eq!(seq.patches[0].pixels[0], 0.0);
        assert_eq!(seq.patches[1].pixels[0], 4.0);
        assert_eq!(seq.patches[2].pixels[0], 32.0);
    }

    #[test]
    fn round_trip_through_tensor() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 3 + y * 5) % 11) as f32 / 10.0);
        let seq = uniform_patches(&img, 4);
        let rec = uniform_reconstruct(&seq.to_tensor(), 16, 4);
        assert_eq!(rec.data(), img.data());
    }
}
