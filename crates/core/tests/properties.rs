//! Property-based tests of APF invariants.

use apf_core::pipeline::{AdaptivePatcher, PatcherConfig};
use apf_core::{
    extract_patches, morton_decode, morton_encode, uniform_patches, PatchError, QuadTree,
    QuadTreeConfig, SplitCriterion,
};
use apf_imaging::GrayImage;
use proptest::prelude::*;

/// Random detail image: sparse random "edge" pixels.
fn detail_image(z: usize, density: f64, seed: u64) -> GrayImage {
    GrayImage::from_fn(z, z, |x, y| {
        let h = seed
            .wrapping_add((x as u64) << 32 | y as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if ((h >> 33) as f64 / (1u64 << 31) as f64) < density {
            1.0
        } else {
            0.0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn morton_round_trip(x in 0u32..1_000_000, y in 0u32..1_000_000) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn morton_preserves_quadrant_order(x1 in 0u32..256, y1 in 0u32..256, x2 in 0u32..256, y2 in 0u32..256) {
        // If (x1,y1) is in an earlier half-plane split at every level where
        // they differ, its code is smaller; weak form: equality iff equal.
        let c1 = morton_encode(x1, y1);
        let c2 = morton_encode(x2, y2);
        prop_assert_eq!(c1 == c2, (x1, y1) == (x2, y2));
    }

    #[test]
    fn quadtree_is_always_a_partition(
        zexp in 4usize..8,
        density in 0.0f64..0.2,
        split in 1.0f64..64.0,
        depth in 1u8..8,
        seed in 0u64..1000,
    ) {
        let z = 1 << zexp;
        let img = detail_image(z, density, seed);
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: split },
            max_depth: depth,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        prop_assert!(tree.validate_partition().is_ok());
        // Z-ordering is strict.
        for w in tree.leaves.windows(2) {
            prop_assert!(w[0].morton() < w[1].morton());
        }
        // Depth and size bounds.
        for l in &tree.leaves {
            prop_assert!(l.depth <= depth);
            prop_assert!(l.size >= 2);
        }
    }

    #[test]
    fn leaf_detail_is_below_split_or_at_limit(
        zexp in 4usize..7,
        density in 0.0f64..0.3,
        split in 1.0f64..32.0,
        seed in 0u64..100,
    ) {
        // Every leaf either satisfies the stop criterion or hit a limit.
        let z = 1 << zexp;
        let img = detail_image(z, density, seed);
        let cfg = QuadTreeConfig {
            criterion: SplitCriterion::EdgeCount { split_value: split },
            max_depth: 10,
            min_leaf: 2,
            balance_2to1: false,
        };
        let tree = QuadTree::build(&img, &cfg);
        for l in &tree.leaves {
            let mut count = 0.0;
            for y in l.y..l.y + l.size {
                for x in l.x..l.x + l.size {
                    count += img.get(x as usize, y as usize);
                }
            }
            let stopped_by_limit = l.size < 2 * cfg.min_leaf || l.depth == cfg.max_depth;
            prop_assert!(
                count as f64 <= split || stopped_by_limit,
                "leaf {:?} has {} edges > v={} without hitting a limit",
                l, count, split
            );
        }
    }

    #[test]
    fn patch_sequence_lengths_consistent(zexp in 4usize..7, pm in 1usize..5, seed in 0u64..50) {
        let z = 1 << zexp;
        let img = detail_image(z, 0.05, seed);
        let tree = QuadTree::build(&img, &QuadTreeConfig::default());
        let pm = 1 << pm; // powers of two
        let seq = extract_patches(&img, &tree.leaves, pm);
        prop_assert_eq!(seq.len(), tree.len());
        let t = seq.to_tensor();
        prop_assert_eq!(t.dims(), &[tree.len(), pm * pm]);
    }

    #[test]
    fn fixed_length_is_exact_and_deterministic(target in 1usize..200, seed in 0u64..20) {
        let img = detail_image(64, 0.1, 3);
        let tree = QuadTree::build(&img, &QuadTreeConfig::default());
        let seq = extract_patches(&img, &tree.leaves, 4);
        let fixed = seq.fixed_length(target, seed);
        prop_assert_eq!(fixed.len(), target);
        let again = seq.fixed_length(target, seed);
        let a: Vec<_> = fixed.patches.iter().map(|p| p.region).collect();
        let b: Vec<_> = again.patches.iter().map(|p| p.region).collect();
        prop_assert_eq!(a, b);
        prop_assert!(fixed.real_len() <= seq.len());
    }

    #[test]
    fn uniform_patching_round_trips(zexp in 3usize..6, pexp in 1usize..3) {
        let z = 1 << zexp;
        let p = 1 << pexp;
        prop_assume!(p <= z);
        let img = detail_image(z, 0.5, 9);
        let seq = uniform_patches(&img, p);
        prop_assert_eq!(seq.len(), (z / p) * (z / p));
        let rec = apf_core::uniform_reconstruct(&seq.to_tensor(), z, p);
        prop_assert_eq!(rec.data(), img.data());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn try_patchify_never_panics_and_classifies_every_input(
        shape_kind in 0u32..4,
        zexp in 2usize..8,
        wa in 0usize..130,
        hb in 0usize..130,
        textured in 0u32..2,
        density in 0.0f64..0.3,
        seed in 0u64..50,
        poison_kind in 0u32..4,
        px in 0usize..200,
        py in 0usize..200,
    ) {
        // Deliberately mix valid shapes with every way a shape can be
        // wrong — independent uniform draws would almost never produce a
        // valid power-of-two square, starving the success branch.
        let (w, h) = match shape_kind {
            0 => (1usize << zexp, 1usize << zexp), // valid
            1 => (1usize << zexp, (1usize << zexp) / 2), // non-square
            2 => (wa, wa),                         // square, maybe non-pow2
            _ => (wa, hb),                         // anything, incl. empty
        };
        // Constant or textured image; optionally poisoned with one
        // non-finite pixel at a clamped position.
        let mut img = if textured == 0 {
            GrayImage::from_fn(w, h, |_, _| 0.5)
        } else {
            GrayImage::from_fn(w, h, |x, y| {
                let hh = seed
                    .wrapping_add((x as u64) << 32 | y as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                if ((hh >> 33) as f64 / (1u64 << 31) as f64) < density { 1.0 } else { 0.0 }
            })
        };
        let poisoned = poison_kind > 0 && w > 0 && h > 0;
        if poisoned {
            let v = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][poison_kind as usize - 1];
            img.set(px % w, py % h, v);
        }
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(w.max(h).max(1)).with_patch_size(4),
        );
        // `min_leaf` is 2, so 4 is the smallest acceptable side.
        match patcher.try_patchify(&img) {
            Ok(seq) => {
                // Acceptance implies the preconditions actually held...
                prop_assert!(w == h && w.is_power_of_two() && w >= 4 && !poisoned);
                prop_assert!(!seq.is_empty());
                // ...and the output is a Z-ordered partition.
                let mortons: Vec<u64> = seq
                    .patches
                    .iter()
                    .filter_map(|p| p.region.map(|r| r.morton()))
                    .collect();
                prop_assert_eq!(mortons.len(), seq.len());
                for pair in mortons.windows(2) {
                    prop_assert!(pair[0] < pair[1]);
                }
                let tree = patcher.try_tree(&img).unwrap();
                prop_assert!(tree.validate_partition().is_ok());
                let covered: u64 = tree.leaves.iter().map(|l| l.area()).sum();
                prop_assert_eq!(covered, (w * h) as u64);
            }
            // Rejection must name the *first* violated precondition, in
            // validation order.
            Err(e) => match e {
                PatchError::Empty { .. } => prop_assert!(w == 0 || h == 0),
                PatchError::NotSquare { .. } => prop_assert!(w != h),
                PatchError::NonPowerOfTwo { .. } => {
                    prop_assert!(w == h && !w.is_power_of_two())
                }
                PatchError::TooSmall { .. } => {
                    prop_assert!(w == h && w.is_power_of_two() && w < 4)
                }
                PatchError::NonFinitePixel { x, y, value } => {
                    prop_assert!(poisoned);
                    prop_assert!(!value.is_finite());
                    prop_assert!(!img.get(x, y).is_finite());
                }
                PatchError::MissingSquaredIntegral => {
                    prop_assert!(false, "variance integral error from an edge-count build")
                }
            },
        }
    }
}
