//! Trainer for image-in/image-out segmentation models (U-Net, TransUNet),
//! in binary (lesion) and multi-class (BTCV organs) modes.

use std::sync::Arc;

use apf_imaging::image::GrayImage;
use apf_models::params::{BoundParams, ParamSet};
use apf_models::rearrange::{grid_to_tokens, GridOrder};
use apf_models::transunet::TransUnet;
use apf_models::unet::UNet;
use apf_tensor::prelude::*;

use crate::loss::{combo_loss, ComboLossConfig};
use crate::metrics::{dice_score, multiclass_dice};
use crate::optim::{AdamW, AdamWConfig};
use crate::trainer::apply_grads;

/// Any model mapping `[B, 1, H, W]` images to `[B, C, H, W]` logits.
pub trait ImageSegModel {
    /// The model's parameters.
    fn params(&self) -> &ParamSet;
    /// Mutable parameters.
    fn params_mut(&mut self) -> &mut ParamSet;
    /// Forward pass.
    fn forward(&self, g: &mut Graph, bp: &BoundParams, x: Var, train: bool) -> Var;
}

impl ImageSegModel for UNet {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, x: Var, train: bool) -> Var {
        UNet::forward(self, g, bp, x, train)
    }
}

impl ImageSegModel for TransUnet {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, x: Var, train: bool) -> Var {
        TransUnet::forward(self, g, bp, x, train)
    }
}

/// Stacks grayscale images into `[B, 1, H, W]`.
pub fn stack_images(imgs: &[&GrayImage]) -> Tensor {
    assert!(!imgs.is_empty());
    let (w, h) = (imgs[0].width(), imgs[0].height());
    let mut data = Vec::with_capacity(imgs.len() * w * h);
    for img in imgs {
        assert_eq!((img.width(), img.height()), (w, h), "inconsistent image sizes");
        data.extend_from_slice(img.data());
    }
    Tensor::new([imgs.len(), 1, h, w], data)
}

/// Trainer for binary image segmentation.
pub struct ImageSegTrainer<M: ImageSegModel> {
    /// The model being trained.
    pub model: M,
    opt: AdamW,
    loss_cfg: ComboLossConfig,
}

impl<M: ImageSegModel> ImageSegTrainer<M> {
    /// Creates the trainer.
    pub fn new(model: M, opt_cfg: AdamWConfig) -> Self {
        let opt = AdamW::new(opt_cfg, model.params().len());
        ImageSegTrainer { model, opt, loss_cfg: ComboLossConfig::default() }
    }

    /// One gradient step on `(images, binary masks)`; returns the loss.
    pub fn step_binary(&mut self, images: &Tensor, masks: &Tensor) -> f64 {
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(images.clone());
        let y = g.constant(masks.clone());
        let logits = self.model.forward(&mut g, &bp, x, true);
        let loss = combo_loss(&mut g, logits, y, self.loss_cfg);
        g.backward(loss);
        let lv = g.value(loss).item() as f64;
        apply_grads(&mut g, &bp, self.model.params_mut(), &mut self.opt);
        lv
    }

    /// One gradient step with per-pixel multi-class labels (`C` logits).
    pub fn step_multiclass(&mut self, images: &Tensor, labels: &[u8], classes: usize) -> f64 {
        let dims = images.dims().to_vec();
        let (b, h, w) = (dims[0], dims[2], dims[3]);
        assert_eq!(h, w, "multiclass trainer expects square inputs");
        assert_eq!(labels.len(), b * h * w, "one label per pixel required");
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(images.clone());
        let logits = self.model.forward(&mut g, &bp, x, true); // [B, C, H, W]
        let rows = grid_to_tokens(&mut g, logits, b, h, classes, GridOrder::RowMajor);
        let rows = g.reshape(rows, [b * h * w, classes]);
        let targets: Vec<u32> = labels.iter().map(|&l| l as u32).collect();
        let loss = g.softmax_cross_entropy(rows, Arc::new(targets));
        g.backward(loss);
        let lv = g.value(loss).item() as f64;
        apply_grads(&mut g, &bp, self.model.params_mut(), &mut self.opt);
        lv
    }

    /// Binary prediction as a probability image for one input image.
    pub fn predict_binary(&self, image: &GrayImage) -> GrayImage {
        let x = stack_images(&[image]);
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let xv = g.constant(x);
        let logits = self.model.forward(&mut g, &bp, xv, false);
        let probs = g.sigmoid(logits);
        GrayImage::from_raw(image.width(), image.height(), g.value(probs).to_vec())
    }

    /// Multi-class prediction: per-pixel argmax labels.
    pub fn predict_multiclass(&self, image: &GrayImage, classes: usize) -> Vec<u8> {
        let x = stack_images(&[image]);
        let (h, w) = (image.height(), image.width());
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let xv = g.constant(x);
        let logits = self.model.forward(&mut g, &bp, xv, false);
        let rows = grid_to_tokens(&mut g, logits, 1, h, classes, GridOrder::RowMajor);
        let rows_t = g.value(rows).reshape([h * w, classes]);
        rows_t.argmax_last().into_iter().map(|c| c as u8).collect()
    }

    /// Mean binary dice over `(image, mask)` pairs.
    pub fn evaluate_binary(&self, pairs: &[(GrayImage, GrayImage)]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs
            .iter()
            .map(|(img, mask)| dice_score(&self.predict_binary(img), mask, 0.5))
            .sum::<f64>()
            / pairs.len() as f64
    }

    /// Mean multi-class dice over `(image, labels)` pairs. `classes` is the
    /// number of logit channels (foreground classes + background class 0);
    /// dice averages over the `classes - 1` foreground classes.
    pub fn evaluate_multiclass(&self, pairs: &[(GrayImage, Vec<u8>)], classes: usize) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs
            .iter()
            .map(|(img, labels)| {
                let pred = self.predict_multiclass(img, classes);
                multiclass_dice(&pred, labels, classes - 1)
            })
            .sum::<f64>()
            / pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_models::unet::UnetConfig;

    fn toy_pair() -> (GrayImage, GrayImage) {
        let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0.9 } else { 0.1 });
        let mask = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 1.0 } else { 0.0 });
        (img, mask)
    }

    #[test]
    fn binary_training_reduces_loss_and_scores() {
        let (img, mask) = toy_pair();
        let model = UNet::new(UnetConfig { in_ch: 1, out_ch: 1, base_ch: 4, levels: 2 }, 1);
        let mut tr = ImageSegTrainer::new(
            model,
            AdamWConfig { lr: 5e-3, ..Default::default() },
        );
        let x = stack_images(&[&img]);
        let y = stack_images(&[&mask]);
        let first = tr.step_binary(&x, &y);
        let mut last = first;
        for _ in 0..25 {
            last = tr.step_binary(&x, &y);
        }
        assert!(last < first * 0.7, "{} -> {}", first, last);
        let dice = tr.evaluate_binary(&[(img, mask)]);
        assert!(dice > 60.0, "dice {}", dice);
    }

    #[test]
    fn multiclass_training_runs_and_predicts_valid_labels() {
        let img = GrayImage::from_fn(8, 8, |x, y| (x + y) as f32 / 14.0);
        let labels: Vec<u8> = (0..64).map(|i| ((i / 16) % 3) as u8).collect();
        let model = UNet::new(UnetConfig { in_ch: 1, out_ch: 3, base_ch: 4, levels: 2 }, 3);
        let mut tr = ImageSegTrainer::new(
            model,
            AdamWConfig { lr: 5e-3, ..Default::default() },
        );
        let x = stack_images(&[&img]);
        let first = tr.step_multiclass(&x, &labels, 3);
        let mut last = first;
        for _ in 0..15 {
            last = tr.step_multiclass(&x, &labels, 3);
        }
        assert!(last < first, "{} -> {}", first, last);
        let pred = tr.predict_multiclass(&img, 3);
        assert_eq!(pred.len(), 64);
        assert!(pred.iter().all(|&c| c < 3));
    }

    #[test]
    fn stack_images_layout() {
        let a = GrayImage::from_raw(2, 2, vec![1., 2., 3., 4.]);
        let b = GrayImage::from_raw(2, 2, vec![5., 6., 7., 8.]);
        let t = stack_images(&[&a, &b]);
        assert_eq!(t.dims(), &[2, 1, 2, 2]);
        assert_eq!(t.to_vec(), vec![1., 2., 3., 4., 5., 6., 7., 8.]);
    }
}
