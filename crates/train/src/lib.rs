//! # apf-train
//!
//! Training infrastructure for the APF reproduction: the paper's combined
//! BCE + dice loss (Eq. 7-9), AdamW with step decay, dice/accuracy metrics,
//! dataset assembly (adaptive and uniform token sequences), and training
//! loops for segmentation (token- and image-based) and classification.
//!
//! Everything is seeded and deterministic, so experiment binaries reproduce
//! bit-for-bit.

pub mod data;
pub mod imageseg;
pub mod loss;
pub mod mcseg;
pub mod metrics;
pub mod optim;
pub mod trainer;

pub use data::{split_indices, Split, TokenSegDataset, TokenSegSample};
pub use imageseg::{stack_images, ImageSegModel, ImageSegTrainer};
pub use loss::{combo_loss, dice_loss, ComboLossConfig};
pub use mcseg::{adaptive_mc_samples, mc_batch, McSample, McSegTrainer};
pub use metrics::{confusion_matrix, dice_score, multiclass_dice, top1_accuracy};
pub use optim::{AdamW, AdamWConfig, StepDecay};
pub use trainer::{ClsTrainer, EpochStats, SegTrainer, TokenClassifier, TokenSegModel};
