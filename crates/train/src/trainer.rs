//! Training loops: token-sequence segmentation, image segmentation, and
//! classification, with per-epoch history for the stability figures.

use std::sync::Arc;
use std::time::Instant;

use apf_core::patchify::reconstruct_mask;
use apf_models::params::{BoundParams, ParamId, ParamSet};
use apf_models::swin::SwinUnetr;
use apf_models::unetr::Unetr2d;
use apf_models::vit::{ViTClassifier, ViTSegmenter};
use apf_telemetry::{Histogram, Telemetry};
use apf_tensor::prelude::*;
use serde::Serialize;

use crate::data::TokenSegDataset;
use crate::loss::{combo_loss, ComboLossConfig};
use crate::metrics::{dice_score, top1_accuracy};
use crate::optim::{AdamW, AdamWConfig};

/// Any model mapping token sequences `[B, L, P²]` to per-token logits
/// `[B, L, P²]`.
pub trait TokenSegModel {
    /// The model's parameters.
    fn params(&self) -> &ParamSet;
    /// Mutable parameters (optimizer updates).
    fn params_mut(&mut self) -> &mut ParamSet;
    /// Forward pass.
    fn forward(&self, g: &mut Graph, bp: &BoundParams, tokens: Var, train: bool) -> Var;
}

impl TokenSegModel for Unetr2d {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, tokens: Var, train: bool) -> Var {
        Unetr2d::forward(self, g, bp, tokens, train)
    }
}

impl TokenSegModel for SwinUnetr {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, tokens: Var, train: bool) -> Var {
        SwinUnetr::forward(self, g, bp, tokens, train)
    }
}

impl TokenSegModel for ViTSegmenter {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, tokens: Var, _train: bool) -> Var {
        ViTSegmenter::forward(self, g, bp, tokens)
    }
}

/// Any model mapping one input tensor to class logits `[B, classes]`.
pub trait TokenClassifier {
    /// The model's parameters.
    fn params(&self) -> &ParamSet;
    /// Mutable parameters.
    fn params_mut(&mut self) -> &mut ParamSet;
    /// Forward pass (input layout is model-specific).
    fn forward(&self, g: &mut Graph, bp: &BoundParams, input: Var) -> Var;
}

impl TokenClassifier for ViTClassifier {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, input: Var) -> Var {
        ViTClassifier::forward(self, g, bp, input)
    }
}

impl TokenClassifier for apf_models::hipt::HiptLite {
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn forward(&self, g: &mut Graph, bp: &BoundParams, input: Var) -> Var {
        apf_models::hipt::HiptLite::forward(self, g, bp, input)
    }
}

/// Per-epoch training record (Fig. 4 series).
#[derive(Debug, Clone, Serialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Mean validation loss.
    pub val_loss: f64,
    /// Mean validation dice (percent), if evaluated.
    pub val_dice: f64,
    /// Wall-clock seconds spent in this epoch's training pass.
    pub train_seconds: f64,
}

/// Collects `(id, grad)` pairs from a backward-run graph.
pub(crate) fn collect_grads(g: &mut Graph, bp: &BoundParams) -> Vec<(ParamId, Tensor)> {
    bp.iter()
        .filter_map(|(id, v)| g.take_grad(v).map(|t| (id, t)))
        .collect()
}

/// Collects `(id, grad)` pairs and steps the optimizer.
pub(crate) fn apply_grads(g: &mut Graph, bp: &BoundParams, params: &mut ParamSet, opt: &mut AdamW) {
    let grads = collect_grads(g, bp);
    opt.step(params, &grads);
}

/// Per-phase step timing handles (`apf_train_step_phase_seconds{phase=..}`).
/// Every handle is inert when built from [`Telemetry::disabled`], so the
/// uninstrumented path costs one branch per phase.
#[derive(Clone, Default)]
pub(crate) struct TrainTel {
    pub(crate) tel: Telemetry,
    pub(crate) batch_gen_s: Histogram,
    pub(crate) forward_s: Histogram,
    pub(crate) backward_s: Histogram,
    pub(crate) optimizer_s: Histogram,
    pub(crate) step_s: Histogram,
}

impl TrainTel {
    pub(crate) fn new(tel: Telemetry) -> Self {
        let phase = |p: &'static str| {
            tel.histogram_with(
                "apf_train_step_phase_seconds",
                vec![("phase", p.to_string())],
                "Wall-clock seconds per training-step phase",
            )
        };
        TrainTel {
            batch_gen_s: phase("batch_gen"),
            forward_s: phase("forward"),
            backward_s: phase("backward"),
            optimizer_s: phase("optimizer"),
            step_s: tel.histogram(
                "apf_train_step_seconds",
                "Wall-clock seconds per full gradient step",
            ),
            tel,
        }
    }
}

/// Trainer for token-sequence segmentation models.
pub struct SegTrainer<M: TokenSegModel> {
    /// The model being trained.
    pub model: M,
    opt: AdamW,
    loss_cfg: ComboLossConfig,
    epoch: usize,
    grad_clip: Option<f32>,
    tm: TrainTel,
}

impl<M: TokenSegModel> SegTrainer<M> {
    /// Creates a trainer with AdamW and the paper's combined loss.
    pub fn new(model: M, opt_cfg: AdamWConfig) -> Self {
        Self::with_telemetry(model, opt_cfg, Telemetry::disabled())
    }

    /// Like [`SegTrainer::new`], but records per-phase step timing
    /// (batch-gen / forward / backward / optimizer) into `tel`.
    pub fn with_telemetry(model: M, opt_cfg: AdamWConfig, tel: Telemetry) -> Self {
        let opt = AdamW::new(opt_cfg, model.params().len());
        SegTrainer {
            model,
            opt,
            loss_cfg: ComboLossConfig::default(),
            epoch: 0,
            grad_clip: None,
            tm: TrainTel::new(tel),
        }
    }

    /// Enables gradient clipping to a maximum global L2 norm.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        self.grad_clip = Some(max_norm);
        self
    }

    /// One gradient step on a batch; returns the loss.
    pub fn step(&mut self, tokens: &Tensor, masks: &Tensor) -> f64 {
        let _step_span = self.tm.tel.span("train.step");
        let _step_timer = self.tm.step_s.start_timer();
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(tokens.clone());
        let y = g.constant(masks.clone());
        let loss = {
            let _span = self.tm.tel.span("train.forward");
            let _t = self.tm.forward_s.start_timer();
            let logits = self.model.forward(&mut g, &bp, x, true);
            combo_loss(&mut g, logits, y, self.loss_cfg)
        };
        let lv = {
            let _span = self.tm.tel.span("train.backward");
            let _t = self.tm.backward_s.start_timer();
            g.backward(loss);
            g.value(loss).item() as f64
        };
        {
            let _span = self.tm.tel.span("train.optimizer");
            let _t = self.tm.optimizer_s.start_timer();
            let mut grads = collect_grads(&mut g, &bp);
            if let Some(max_norm) = self.grad_clip {
                crate::optim::clip_grad_norm(&mut grads, max_norm);
            }
            self.opt.step(self.model.params_mut(), &grads);
        }
        lv
    }

    /// Saves model weights plus full optimizer state (AdamW moments, step
    /// counter, learning-rate scale) and the epoch counter to an APF2
    /// checkpoint. The write is atomic: a crash mid-save leaves the
    /// previous checkpoint intact.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut state = self.opt.export_state();
        state.counters.push(("epoch".to_string(), self.epoch as u64));
        apf_models::checkpoint::save_with_state(self.model.params(), &state, path)
    }

    /// Restores model weights, optimizer state, and the epoch counter from
    /// a checkpoint written by [`SegTrainer::save_checkpoint`]. Training
    /// resumed this way is bit-identical to never having stopped.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`](apf_models::checkpoint::CheckpointError)
    /// if the file is missing, corrupt, or does not match the model.
    pub fn resume_from(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), apf_models::checkpoint::CheckpointError> {
        let state =
            apf_models::checkpoint::load_with_state(self.model.params_mut(), path)?;
        self.opt.import_state(&state);
        self.epoch = state.counter("epoch").unwrap_or(0) as usize;
        self.opt.set_epoch(self.epoch);
        Ok(())
    }

    /// Loss of a batch without updating (validation).
    pub fn eval_loss(&self, tokens: &Tensor, masks: &Tensor) -> f64 {
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(tokens.clone());
        let y = g.constant(masks.clone());
        let logits = self.model.forward(&mut g, &bp, x, false);
        let loss = combo_loss(&mut g, logits, y, self.loss_cfg);
        g.value(loss).item() as f64
    }

    /// Predicts token logits for one sample `[L, P²]` (adds a batch dim).
    pub fn predict(&self, tokens: &Tensor) -> Tensor {
        let dims = tokens.dims().to_vec();
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(tokens.reshape([1, dims[0], dims[1]]));
        let logits = self.model.forward(&mut g, &bp, x, false);
        let probs = g.sigmoid(logits);
        g.value(probs).reshape([dims[0], dims[1]])
    }

    /// Mean full-resolution dice over a dataset: predictions are painted
    /// back onto the image canvas through each sample's patch regions.
    pub fn evaluate_dice(&self, data: &TokenSegDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for s in &data.samples {
            let probs = self.predict(&s.tokens);
            let pred = reconstruct_mask(&s.seq, &probs);
            total += dice_score(&pred, &s.full_mask, 0.5);
        }
        total / data.len() as f64
    }

    /// One full epoch over `train`, then evaluation on `val`.
    pub fn run_epoch(
        &mut self,
        train: &TokenSegDataset,
        val: &TokenSegDataset,
        batch_size: usize,
        eval_dice: bool,
    ) -> EpochStats {
        self.opt.set_epoch(self.epoch);
        let t0 = Instant::now();
        let mut train_loss = 0.0;
        let batches = train.epoch_batches(batch_size, self.epoch as u64);
        for b in &batches {
            let (x, y) = {
                let _span = self.tm.tel.span("train.batch_gen");
                let _t = self.tm.batch_gen_s.start_timer();
                train.batch(b)
            };
            train_loss += self.step(&x, &y);
        }
        train_loss /= batches.len().max(1) as f64;
        let train_seconds = t0.elapsed().as_secs_f64();

        let mut val_loss = 0.0;
        if !val.is_empty() {
            let vbatches = val.epoch_batches(batch_size, 0);
            for b in &vbatches {
                let (x, y) = val.batch(b);
                val_loss += self.eval_loss(&x, &y);
            }
            val_loss /= val.epoch_batches(batch_size, 0).len().max(1) as f64;
        }
        let val_dice = if eval_dice { self.evaluate_dice(val) } else { 0.0 };
        let stats = EpochStats {
            epoch: self.epoch,
            train_loss,
            val_loss,
            val_dice,
            train_seconds,
        };
        self.epoch += 1;
        stats
    }

    /// Trains for `epochs` epochs, returning the history.
    pub fn fit(
        &mut self,
        train: &TokenSegDataset,
        val: &TokenSegDataset,
        epochs: usize,
        batch_size: usize,
    ) -> Vec<EpochStats> {
        (0..epochs)
            .map(|_| self.run_epoch(train, val, batch_size, true))
            .collect()
    }
}

/// Trainer for classifiers (ViT, HIPT, APF-ViT).
pub struct ClsTrainer<M: TokenClassifier> {
    /// The model being trained.
    pub model: M,
    opt: AdamW,
    epoch: usize,
}

impl<M: TokenClassifier> ClsTrainer<M> {
    /// Creates the trainer.
    pub fn new(model: M, opt_cfg: AdamWConfig) -> Self {
        let opt = AdamW::new(opt_cfg, model.params().len());
        ClsTrainer { model, opt, epoch: 0 }
    }

    /// One gradient step on a batch of inputs and integer labels.
    pub fn step(&mut self, inputs: &Tensor, labels: &[u32]) -> f64 {
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(inputs.clone());
        let logits = self.model.forward(&mut g, &bp, x);
        let loss = g.softmax_cross_entropy(logits, Arc::new(labels.to_vec()));
        g.backward(loss);
        let lv = g.value(loss).item() as f64;
        apply_grads(&mut g, &bp, self.model.params_mut(), &mut self.opt);
        self.opt.set_epoch(self.epoch);
        lv
    }

    /// Predicted classes for a batch.
    pub fn predict(&self, inputs: &Tensor) -> Vec<usize> {
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(inputs.clone());
        let logits = self.model.forward(&mut g, &bp, x);
        g.value(logits).argmax_last()
    }

    /// Top-1 accuracy over `(input, label)` pairs.
    pub fn evaluate(&self, batches: &[(Tensor, Vec<u32>)]) -> f64 {
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for (x, y) in batches {
            preds.extend(self.predict(x));
            truths.extend(y.iter().map(|&v| v as usize));
        }
        top1_accuracy(&preds, &truths)
    }

    /// Advances the epoch counter (drives LR schedules).
    pub fn next_epoch(&mut self) {
        self.epoch += 1;
        self.opt.set_epoch(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_core::pipeline::{AdaptivePatcher, PatcherConfig};
    use apf_imaging::paip::{PaipConfig, PaipGenerator};
    use apf_models::rearrange::GridOrder;
    use apf_models::unetr::UnetrConfig;
    use apf_models::vit::ViTConfig;

    fn tiny_dataset(n: usize) -> TokenSegDataset {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let s = gen.generate(i);
                (s.image, s.mask)
            })
            .collect();
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(16),
        );
        TokenSegDataset::adaptive(&pairs, &patcher)
    }

    #[test]
    fn seg_trainer_loss_decreases() {
        let ds = tiny_dataset(4);
        let model = Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 1);
        let mut tr = SegTrainer::new(
            model,
            AdamWConfig { lr: 3e-3, ..Default::default() },
        );
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let first = tr.step(&x, &y);
        let mut last = first;
        for _ in 0..15 {
            last = tr.step(&x, &y);
        }
        assert!(last < first, "loss {} -> {}", first, last);
    }

    #[test]
    fn run_epoch_reports_stats() {
        let ds = tiny_dataset(4);
        let train = ds.subset(&[0, 1, 2]);
        let val = ds.subset(&[3]);
        let model = Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 2);
        let mut tr = SegTrainer::new(model, AdamWConfig::default());
        let stats = tr.run_epoch(&train, &val, 2, true);
        assert_eq!(stats.epoch, 0);
        assert!(stats.train_loss > 0.0);
        assert!(stats.val_loss > 0.0);
        assert!((0.0..=100.0).contains(&stats.val_dice));
        assert!(stats.train_seconds > 0.0);
        let stats2 = tr.run_epoch(&train, &val, 2, false);
        assert_eq!(stats2.epoch, 1);
    }

    #[test]
    fn evaluate_dice_on_perfect_predictor_is_high() {
        // A dataset whose tokens ARE the mask: the identity map scores ~100.
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let s = gen.generate(0);
        // Generous target_len so no patches are dropped (drops would punch
        // holes in the reconstruction and lower the dice of the identity).
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(512),
        );
        let pairs = vec![(s.mask.clone(), s.mask.clone())];
        let ds = TokenSegDataset::adaptive(&pairs, &patcher);
        // predict() applies a sigmoid; feed mask-as-logits scaled up so
        // sigmoid saturates to the mask.
        struct Identity {
            params: ParamSet,
        }
        impl TokenSegModel for Identity {
            fn params(&self) -> &ParamSet {
                &self.params
            }
            fn params_mut(&mut self) -> &mut ParamSet {
                &mut self.params
            }
            fn forward(&self, g: &mut Graph, _bp: &BoundParams, tokens: Var, _t: bool) -> Var {
                let centered = g.add_scalar(tokens, -0.5);
                g.scale(centered, 50.0)
            }
        }
        let tr = SegTrainer::new(Identity { params: ParamSet::new() }, AdamWConfig::default());
        let dice = tr.evaluate_dice(&ds);
        // The identity cannot beat the patch-quantization ceiling (area
        // averaging + thresholding inside boundary leaves blurs a ~2 px
        // band), but it must exactly REACH that ceiling.
        let sample = &ds.samples[0];
        let quantized = reconstruct_mask(&sample.seq, &sample.mask_tokens);
        let ceiling = dice_score(&quantized, &sample.full_mask, 0.5);
        assert!(
            (dice - ceiling).abs() < 1.0,
            "identity dice {} != quantization ceiling {}",
            dice,
            ceiling
        );
        assert!(dice > 50.0, "identity dice unreasonably low: {}", dice);
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical() {
        // Train 10 steps straight through vs. train 5, checkpoint, resume
        // into a fresh trainer, train 5 more: every parameter must match
        // bit for bit (forward passes are deterministic; the checkpoint
        // carries AdamW moments, step count, and epoch).
        let ds = tiny_dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let cfg = AdamWConfig { lr: 2e-3, ..Default::default() };
        let make = || Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 21);

        let mut straight = SegTrainer::new(make(), cfg);
        for _ in 0..10 {
            straight.step(&x, &y);
        }

        let dir = std::env::temp_dir().join("apf_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.apf2");
        let mut first_half = SegTrainer::new(make(), cfg);
        for _ in 0..5 {
            first_half.step(&x, &y);
        }
        first_half.save_checkpoint(&path).unwrap();

        // Fresh trainer with a DIFFERENT seed: everything must come from
        // the checkpoint, not from construction.
        let mut resumed =
            SegTrainer::new(Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 99), cfg);
        resumed.resume_from(&path).unwrap();
        for _ in 0..5 {
            resumed.step(&x, &y);
        }

        for ((_, n, a), (_, _, b)) in straight
            .model
            .params()
            .iter()
            .zip(resumed.model.params().iter())
        {
            let a_bits: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "param {} not bit-identical after resume", n);
        }
    }

    #[test]
    fn resume_rejects_corrupt_checkpoint() {
        let ds = tiny_dataset(2);
        let (x, y) = ds.batch(&[0, 1]);
        let cfg = AdamWConfig::default();
        let mut tr = SegTrainer::new(
            Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 1),
            cfg,
        );
        tr.step(&x, &y);
        let dir = std::env::temp_dir().join("apf_resume_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.apf2");
        tr.save_checkpoint(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(tr.resume_from(&path).is_err(), "corrupt checkpoint was accepted");
    }

    #[test]
    fn grad_clip_bounds_the_update() {
        let ds = tiny_dataset(2);
        let (x, y) = ds.batch(&[0, 1]);
        let cfg = AdamWConfig { lr: 1e-2, weight_decay: 0.0, ..Default::default() };
        let make = || Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 7);
        // A clip threshold far below the natural gradient norm must alter
        // the very first update; a huge threshold must not.
        let mut unclipped = SegTrainer::new(make(), cfg);
        let mut tight = SegTrainer::new(make(), cfg).with_grad_clip(1e-4);
        let mut loose = SegTrainer::new(make(), cfg).with_grad_clip(1e6);
        unclipped.step(&x, &y);
        tight.step(&x, &y);
        loose.step(&x, &y);
        let diff = |a: &SegTrainer<Unetr2d>, b: &SegTrainer<Unetr2d>| {
            a.model
                .params()
                .iter()
                .zip(b.model.params().iter())
                .map(|((_, _, ta), (_, _, tb))| {
                    ta.data()
                        .iter()
                        .zip(tb.data().iter())
                        .map(|(u, v)| (u - v).abs())
                        .fold(0.0f32, f32::max)
                })
                .fold(0.0f32, f32::max)
        };
        assert!(diff(&unclipped, &tight) > 0.0, "tight clip changed nothing");
        assert_eq!(diff(&unclipped, &loose), 0.0, "loose clip altered the step");
    }

    #[test]
    fn telemetry_records_per_phase_step_timing() {
        let ds = tiny_dataset(4);
        let train = ds.subset(&[0, 1, 2]);
        let val = ds.subset(&[3]);
        let tel = Telemetry::enabled();
        let model = Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 5);
        let mut tr = SegTrainer::with_telemetry(model, AdamWConfig::default(), tel.clone());
        tr.run_epoch(&train, &val, 2, false);

        let snap = tel.snapshot();
        let steps = snap
            .get("apf_train_step_seconds", &[])
            .and_then(|m| m.histogram.clone())
            .expect("step histogram registered");
        assert_eq!(steps.count, 2, "2 batches of 2 over 3 samples -> 2 steps");
        for phase in ["batch_gen", "forward", "backward", "optimizer"] {
            let h = snap
                .get("apf_train_step_phase_seconds", &[("phase", phase)])
                .and_then(|m| m.histogram.clone())
                .unwrap_or_else(|| panic!("phase {} registered", phase));
            assert_eq!(h.count, 2, "phase {} recorded once per step", phase);
            assert!(h.sum >= 0.0);
        }
        // The span trace carries one train.step tree per step, with the
        // three phases nested beneath it.
        let names: Vec<&str> = tel.trace_events().iter().map(|e| e.name).collect();
        for name in ["train.step", "train.forward", "train.backward", "train.optimizer"] {
            assert!(names.contains(&name), "missing span {} in {:?}", name, names);
        }

        // A disabled trainer must behave identically with zero registry.
        let model2 = Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 5);
        let mut plain = SegTrainer::new(model2, AdamWConfig::default());
        plain.step(&val.batch(&[0]).0, &val.batch(&[0]).1);
    }

    #[test]
    fn cls_trainer_learns_toy_classes() {
        let cfg = ViTConfig::tiny(4, 4);
        let model = ViTClassifier::new(cfg, 2, 3);
        let mut tr = ClsTrainer::new(
            model,
            AdamWConfig { lr: 5e-3, ..Default::default() },
        );
        let x = Tensor::new(
            [2, 4, 4],
            [vec![0.9f32; 16], vec![-0.9f32; 16]].concat(),
        );
        let labels = vec![0u32, 1];
        let first = tr.step(&x, &labels);
        let mut last = first;
        for _ in 0..30 {
            last = tr.step(&x, &labels);
        }
        assert!(last < first * 0.7, "{} -> {}", first, last);
        let acc = tr.evaluate(&[(x, labels)]);
        assert_eq!(acc, 100.0);
    }
}
