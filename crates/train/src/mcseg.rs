//! Multi-class token-sequence segmentation (BTCV-style: 13 organs +
//! background through an APF or uniform token pipeline).
//!
//! The model emits `C` logits per patch pixel (`[B, L, C*P²]`); targets are
//! class-valued label tokens (`[B, L, P²]`, each value an integer class in
//! `0..C` stored as f32). Loss is per-pixel softmax cross-entropy.

use std::sync::Arc;

use apf_core::patchify::{reconstruct_mask, PatchSequence};
use apf_imaging::image::GrayImage;
use apf_models::params::ParamSet;
use apf_tensor::prelude::*;

use crate::metrics::multiclass_dice;
use crate::optim::{AdamW, AdamWConfig};
use crate::trainer::{apply_grads, TokenSegModel};

/// One multi-class sample.
#[derive(Clone)]
pub struct McSample {
    /// `[L, P²]` image tokens.
    pub tokens: Tensor,
    /// `[L, P²]` class-valued label tokens (nearest-sampled).
    pub label_tokens: Tensor,
    /// Patch regions for reconstruction.
    pub seq: PatchSequence,
    /// Full-resolution label map.
    pub full_labels: Vec<u8>,
    /// Resolution of the label map (square).
    pub resolution: usize,
}

/// Trainer for multi-class token segmentation.
pub struct McSegTrainer<M: TokenSegModel> {
    /// The model being trained (must be configured with `C` output
    /// channels).
    pub model: M,
    /// Number of classes `C` (including background class 0).
    pub classes: usize,
    opt: AdamW,
}

impl<M: TokenSegModel> McSegTrainer<M> {
    /// Creates the trainer.
    pub fn new(model: M, classes: usize, opt_cfg: AdamWConfig) -> Self {
        let opt = AdamW::new(opt_cfg, model.params().len());
        McSegTrainer { model, classes, opt }
    }

    /// Read access to the parameters.
    pub fn params(&self) -> &ParamSet {
        self.model.params()
    }

    /// Reshapes `[B, L, C*P²]` logits into `[B*L*P², C]` rows.
    fn logits_rows(&self, g: &mut Graph, logits: Var, p2: usize) -> Var {
        let dims = g.value(logits).dims().to_vec();
        let (b, l, cp2) = (dims[0], dims[1], dims[2]);
        assert_eq!(cp2, self.classes * p2, "logit width != C * P²");
        let x = g.reshape(logits, [b * l, self.classes, p2]);
        let x = g.transpose_last(x); // [B*L, P², C]
        g.reshape(x, [b * l * p2, self.classes])
    }

    /// One gradient step; returns the loss.
    pub fn step(&mut self, tokens: &Tensor, label_tokens: &Tensor) -> f64 {
        let p2 = label_tokens.dims()[2];
        let targets: Vec<u32> = label_tokens.data().iter().map(|&v| v.round() as u32).collect();
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(tokens.clone());
        let logits = self.model.forward(&mut g, &bp, x, true);
        let rows = self.logits_rows(&mut g, logits, p2);
        let loss = g.softmax_cross_entropy(rows, Arc::new(targets));
        g.backward(loss);
        let lv = g.value(loss).item() as f64;
        apply_grads(&mut g, &bp, self.model.params_mut(), &mut self.opt);
        lv
    }

    /// Predicts per-pixel class labels as class-valued patch tokens
    /// `[L, P²]` for one sample.
    pub fn predict_tokens(&self, tokens: &Tensor) -> Tensor {
        let dims = tokens.dims().to_vec();
        let (l, p2) = (dims[0], dims[1]);
        let mut g = Graph::new();
        let bp = self.model.params().bind(&mut g);
        let x = g.constant(tokens.reshape([1, l, p2]));
        let logits = self.model.forward(&mut g, &bp, x, false);
        let rows = self.logits_rows(&mut g, logits, p2);
        let classes = g.value(rows).argmax_last();
        Tensor::new([l, p2], classes.into_iter().map(|c| c as f32).collect::<Vec<_>>())
    }

    /// Mean multi-class dice over samples, scored at full resolution.
    pub fn evaluate(&self, samples: &[McSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for s in samples {
            let pred_tokens = self.predict_tokens(&s.tokens);
            let painted = reconstruct_mask(&s.seq, &pred_tokens);
            let pred: Vec<u8> = painted.data().iter().map(|&v| v.round() as u8).collect();
            total += multiclass_dice(&pred, &s.full_labels, self.classes - 1);
        }
        total / samples.len() as f64
    }
}

/// Builds multi-class samples from `(image, labels)` pairs via an adaptive
/// patcher (labels sampled nearest).
pub fn adaptive_mc_samples(
    pairs: &[(GrayImage, Vec<u8>)],
    patcher: &apf_core::pipeline::AdaptivePatcher,
) -> Vec<McSample> {
    assert!(
        patcher.config().target_len.is_some(),
        "multi-class adaptive samples require a fixed target_len"
    );
    pairs
        .iter()
        .map(|(img, labels)| {
            let lab_img = GrayImage::from_raw(
                img.width(),
                img.height(),
                labels.iter().map(|&l| l as f32).collect(),
            );
            let (xs, ys) = patcher.patchify_with_labels(img, &lab_img);
            McSample {
                tokens: xs.to_tensor(),
                label_tokens: ys.to_tensor(),
                seq: xs,
                full_labels: labels.clone(),
                resolution: img.width(),
            }
        })
        .collect()
}

/// Stacks samples into `([B, L, P²], [B, L, P²])` batches.
pub fn mc_batch(samples: &[McSample], idx: &[usize]) -> (Tensor, Tensor) {
    assert!(!idx.is_empty());
    let l = samples[idx[0]].tokens.dims()[0];
    let d = samples[idx[0]].tokens.dims()[1];
    let mut xs = Vec::with_capacity(idx.len() * l * d);
    let mut ys = Vec::with_capacity(idx.len() * l * d);
    for &i in idx {
        xs.extend_from_slice(samples[i].tokens.data());
        ys.extend_from_slice(samples[i].label_tokens.data());
    }
    (
        Tensor::new([idx.len(), l, d], xs),
        Tensor::new([idx.len(), l, d], ys),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_core::pipeline::{AdaptivePatcher, PatcherConfig};
    use apf_imaging::btcv::{BtcvConfig, BtcvGenerator};
    use apf_models::rearrange::GridOrder;
    use apf_models::unetr::{Unetr2d, UnetrConfig};

    fn samples(n: usize) -> Vec<McSample> {
        let gen = BtcvGenerator::new(BtcvConfig::small(64, 4));
        let pairs: Vec<(GrayImage, Vec<u8>)> = (0..n)
            .map(|i| {
                let s = gen.slice(i, 2);
                (s.image, s.labels)
            })
            .collect();
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(16),
        );
        adaptive_mc_samples(&pairs, &patcher)
    }

    #[test]
    fn label_tokens_stay_integral() {
        let ss = samples(2);
        for s in &ss {
            for &v in s.label_tokens.data() {
                assert!((v - v.round()).abs() < 1e-6, "non-integer label {}", v);
                assert!((0.0..=13.0).contains(&v));
            }
        }
    }

    #[test]
    fn training_reduces_multiclass_loss() {
        let ss = samples(2);
        let model = Unetr2d::new(
            UnetrConfig::tiny(4, 4, GridOrder::Morton).with_out_channels(14),
            1,
        );
        let mut tr = McSegTrainer::new(model, 14, AdamWConfig { lr: 3e-3, ..Default::default() });
        let (x, y) = mc_batch(&ss, &[0, 1]);
        let first = tr.step(&x, &y);
        let mut last = first;
        for _ in 0..10 {
            last = tr.step(&x, &y);
        }
        assert!(last < first, "{} -> {}", first, last);
    }

    #[test]
    fn prediction_and_dice_are_valid() {
        let ss = samples(2);
        let model = Unetr2d::new(
            UnetrConfig::tiny(4, 4, GridOrder::Morton).with_out_channels(14),
            2,
        );
        let tr = McSegTrainer::new(model, 14, AdamWConfig::default());
        let pred = tr.predict_tokens(&ss[0].tokens);
        assert_eq!(pred.dims(), ss[0].label_tokens.dims());
        assert!(pred.data().iter().all(|&v| (0.0..14.0).contains(&v)));
        let dice = tr.evaluate(&ss);
        assert!((0.0..=100.0).contains(&dice));
    }
}
