//! Loss functions (paper Eq. 7-9): weighted BCE + dice on logits, and
//! softmax cross-entropy for multi-class/classification tasks.

use apf_tensor::prelude::*;

/// Configuration of the combined segmentation loss
/// `L = w * BCE + (1 - w) * Dice`.
#[derive(Debug, Clone, Copy)]
pub struct ComboLossConfig {
    /// BCE weight `w` (paper: 0.5).
    pub bce_weight: f32,
    /// Dice smoothing term `epsilon` (paper: 1.0).
    pub epsilon: f32,
}

impl Default for ComboLossConfig {
    fn default() -> Self {
        ComboLossConfig { bce_weight: 0.5, epsilon: 1.0 }
    }
}

/// Soft dice loss on logits: `1 - (2*sum(p*y) + eps) / (sum p + sum y + eps)`
/// with `p = sigmoid(logits)`. Returns a scalar graph node.
pub fn dice_loss(g: &mut Graph, logits: Var, targets: Var, epsilon: f32) -> Var {
    assert_eq!(
        g.value(logits).shape(),
        g.value(targets).shape(),
        "dice_loss shape mismatch"
    );
    let p = g.sigmoid(logits);
    let inter = g.mul(p, targets);
    let inter = g.sum_all(inter);
    let num = g.scale(inter, 2.0);
    let num = g.add_scalar(num, epsilon);
    let psum = g.sum_all(p);
    let ysum = g.sum_all(targets);
    let den = g.add(psum, ysum);
    let den = g.add_scalar(den, epsilon);
    let ratio = g.div(num, den);
    let neg = g.scale(ratio, -1.0);
    g.add_scalar(neg, 1.0)
}

/// The paper's combined loss (Eq. 7): `w * BCE + (1 - w) * Dice`.
pub fn combo_loss(g: &mut Graph, logits: Var, targets: Var, cfg: ComboLossConfig) -> Var {
    let bce = g.bce_with_logits(logits, targets);
    let dice = dice_loss(g, logits, targets, cfg.epsilon);
    let wb = g.scale(bce, cfg.bce_weight);
    let wd = g.scale(dice, 1.0 - cfg.bce_weight);
    g.add(wb, wd)
}

/// Multi-class segmentation loss: mean softmax cross-entropy over pixels.
/// `logits` is `[.., C]` rows; `targets` one class per row.
pub fn multiclass_ce(g: &mut Graph, logits: Var, targets: std::sync::Arc<Vec<u32>>) -> Var {
    g.softmax_cross_entropy(logits, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dice_loss_zero_for_perfect_confident_prediction() {
        let mut g = Graph::new();
        // Very large logits -> p ~ 1 where y = 1, p ~ 0 where y = 0.
        let logits = g.constant(Tensor::new([4], vec![20.0, -20.0, 20.0, -20.0]));
        let y = g.constant(Tensor::new([4], vec![1.0, 0.0, 1.0, 0.0]));
        let l = dice_loss(&mut g, logits, y, 1.0);
        assert!(g.value(l).item() < 0.01, "{}", g.value(l).item());
    }

    #[test]
    fn dice_loss_high_for_inverted_prediction() {
        let mut g = Graph::new();
        let logits = g.constant(Tensor::new([4], vec![-20.0, 20.0, -20.0, 20.0]));
        let y = g.constant(Tensor::new([4], vec![1.0, 0.0, 1.0, 0.0]));
        let l = dice_loss(&mut g, logits, y, 1.0);
        assert!(g.value(l).item() > 0.7, "{}", g.value(l).item());
    }

    #[test]
    fn dice_loss_in_unit_interval() {
        for seed in 0..5 {
            let mut g = Graph::new();
            let logits = g.constant(Tensor::rand_uniform([32], -3.0, 3.0, seed));
            let y = g.constant(Tensor::rand_uniform([32], 0.0, 1.0, seed + 100).map(f32::round));
            let l = dice_loss(&mut g, logits, y, 1.0);
            let v = g.value(l).item();
            assert!((0.0..=1.0).contains(&v), "dice loss {}", v);
        }
    }

    #[test]
    fn combo_loss_matches_manual_combination() {
        let logits = Tensor::rand_uniform([16], -2.0, 2.0, 1);
        let y = Tensor::rand_uniform([16], 0.0, 1.0, 2).map(f32::round);
        let cfg = ComboLossConfig { bce_weight: 0.3, epsilon: 1.0 };

        let mut g = Graph::new();
        let lv = g.constant(logits.clone());
        let yv = g.constant(y.clone());
        let combo = combo_loss(&mut g, lv, yv, cfg);

        let mut g2 = Graph::new();
        let lv2 = g2.constant(logits);
        let yv2 = g2.constant(y);
        let bce = g2.bce_with_logits(lv2, yv2);
        let dice = dice_loss(&mut g2, lv2, yv2, 1.0);
        let manual = 0.3 * g2.value(bce).item() + 0.7 * g2.value(dice).item();

        assert!((g.value(combo).item() - manual).abs() < 1e-5);
    }

    #[test]
    fn combo_loss_gradient_flows() {
        let mut g = Graph::new();
        let logits = g.leaf(Tensor::rand_uniform([8], -1.0, 1.0, 3));
        let y = g.constant(Tensor::rand_uniform([8], 0.0, 1.0, 4).map(f32::round));
        let l = combo_loss(&mut g, logits, y, ComboLossConfig::default());
        g.backward(l);
        let grad = g.grad(logits).unwrap();
        assert!(grad.norm() > 0.0);
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn combo_loss_decreases_toward_target() {
        // One step of gradient descent on the loss must reduce it.
        let mut x = Tensor::rand_uniform([16], -1.0, 1.0, 5);
        let y = Tensor::rand_uniform([16], 0.0, 1.0, 6).map(f32::round);
        let loss_at = |x: &Tensor| {
            let mut g = Graph::new();
            let lv = g.constant(x.clone());
            let yv = g.constant(y.clone());
            let l = combo_loss(&mut g, lv, yv, ComboLossConfig::default());
            g.value(l).item()
        };
        let before = loss_at(&x);
        let mut g = Graph::new();
        let lv = g.leaf(x.clone());
        let yv = g.constant(y.clone());
        let l = combo_loss(&mut g, lv, yv, ComboLossConfig::default());
        g.backward(l);
        let grad = g.grad(lv).unwrap().clone();
        x = x.sub(&grad.scale(1.0));
        assert!(loss_at(&x) < before);
    }
}
