//! Evaluation metrics: dice score (binary and multi-class mean), top-1
//! accuracy, confusion matrices.

use apf_imaging::image::GrayImage;

/// Dice similarity coefficient between two binary masks, in percent
/// (`2|X ∩ Y| / (|X| + |Y|)`, the paper's Eq. in §IV-E). Returns 100 when
/// both masks are empty (identical).
pub fn dice_score(pred: &GrayImage, truth: &GrayImage, threshold: f32) -> f64 {
    assert_eq!(pred.width(), truth.width());
    assert_eq!(pred.height(), truth.height());
    let mut inter = 0u64;
    let mut psum = 0u64;
    let mut tsum = 0u64;
    for (&p, &t) in pred.data().iter().zip(truth.data().iter()) {
        let pb = p > threshold;
        let tb = t > threshold;
        inter += (pb && tb) as u64;
        psum += pb as u64;
        tsum += tb as u64;
    }
    if psum + tsum == 0 {
        return 100.0;
    }
    200.0 * inter as f64 / (psum + tsum) as f64
}

/// Mean dice over foreground classes for label maps (`0 = background`,
/// classes `1..=num_classes`). Classes absent from both maps are skipped
/// (BTCV convention: report the average over the 13 annotated organs).
pub fn multiclass_dice(pred: &[u8], truth: &[u8], num_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mut inter = vec![0u64; num_classes + 1];
    let mut psum = vec![0u64; num_classes + 1];
    let mut tsum = vec![0u64; num_classes + 1];
    for (&p, &t) in pred.iter().zip(truth.iter()) {
        if (p as usize) <= num_classes {
            psum[p as usize] += 1;
        }
        if (t as usize) <= num_classes {
            tsum[t as usize] += 1;
        }
        if p == t && (p as usize) <= num_classes {
            inter[p as usize] += 1;
        }
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for c in 1..=num_classes {
        if psum[c] + tsum[c] == 0 {
            continue;
        }
        total += 200.0 * inter[c] as f64 / (psum[c] + tsum[c]) as f64;
        counted += 1;
    }
    if counted == 0 {
        100.0
    } else {
        total / counted as f64
    }
}

/// Top-1 accuracy in percent.
pub fn top1_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth.iter()).filter(|(a, b)| a == b).count();
    100.0 * hits as f64 / pred.len() as f64
}

/// Dense confusion matrix: `matrix[truth][pred]` counts.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len());
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &t) in pred.iter().zip(truth.iter()) {
        assert!(p < classes && t < classes, "class out of range");
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(data: Vec<f32>) -> GrayImage {
        let n = (data.len() as f64).sqrt() as usize;
        GrayImage::from_raw(n, n, data)
    }

    #[test]
    fn dice_identical_masks_is_100() {
        let m = img(vec![1., 0., 0., 1.]);
        assert_eq!(dice_score(&m, &m, 0.5), 100.0);
    }

    #[test]
    fn dice_disjoint_masks_is_0() {
        let a = img(vec![1., 0., 0., 0.]);
        let b = img(vec![0., 0., 0., 1.]);
        assert_eq!(dice_score(&a, &b, 0.5), 0.0);
    }

    #[test]
    fn dice_half_overlap() {
        // pred = {0, 1}, truth = {1, 2}: inter 1, sizes 2+2 -> 50%.
        let a = img(vec![1., 1., 0., 0.]);
        let b = img(vec![0., 1., 1., 0.]);
        assert_eq!(dice_score(&a, &b, 0.5), 50.0);
    }

    #[test]
    fn dice_empty_masks_is_100() {
        let a = img(vec![0.0; 4]);
        assert_eq!(dice_score(&a, &a, 0.5), 100.0);
    }

    #[test]
    fn multiclass_dice_perfect_and_skips_absent() {
        let truth = vec![0u8, 1, 2, 2];
        assert_eq!(multiclass_dice(&truth, &truth, 13), 100.0);
        // One wrong pixel in class 1: class1 dice = 0 (pred has none),
        // class2 dice = 100 -> mean 50.
        let pred = vec![0u8, 0, 2, 2];
        assert_eq!(multiclass_dice(&pred, &truth, 13), 50.0);
    }

    #[test]
    fn top1_accuracy_basic() {
        assert_eq!(top1_accuracy(&[0, 1, 2, 2], &[0, 1, 2, 1]), 75.0);
        assert_eq!(top1_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(m[0][0], 2); // truth 0 predicted 0
        assert_eq!(m[0][1], 1); // truth 0 predicted 1
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }
}
