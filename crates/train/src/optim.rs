//! Optimizers: AdamW (decoupled weight decay) with a step-decay schedule —
//! the paper's training setup (AdamW, lr 1e-4, decay 0.1 at milestones).

use apf_models::checkpoint::TrainState;
use apf_models::params::{ParamId, ParamSet};
use apf_tensor::tensor::Tensor;

/// AdamW hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamWConfig {
    /// Initial learning rate (paper: 1e-4).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }
}

/// Step decay: multiply the learning rate by `gamma` at each milestone
/// (paper: 0.1 at epochs [500, 750, 875]).
#[derive(Debug, Clone)]
pub struct StepDecay {
    /// Epochs at which the rate decays.
    pub milestones: Vec<usize>,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepDecay {
    /// The paper's schedule.
    pub fn paper() -> Self {
        StepDecay { milestones: vec![500, 750, 875], gamma: 0.1 }
    }

    /// Learning-rate multiplier at `epoch`.
    pub fn factor(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.gamma.powi(passed as i32)
    }
}

/// AdamW optimizer with per-parameter moment state.
///
/// `Clone` is intentional: the fault-tolerant training loop snapshots the
/// optimizer alongside the parameters so a bad step (NaN/Inf loss) can be
/// rolled back exactly.
#[derive(Clone)]
pub struct AdamW {
    cfg: AdamWConfig,
    /// (m, v) per parameter slot, lazily initialized.
    state: Vec<Option<(Tensor, Tensor)>>,
    step: u64,
    schedule: Option<StepDecay>,
    epoch: usize,
    /// Multiplier applied on top of the schedule; halved by the NaN guard.
    lr_scale: f32,
}

impl AdamW {
    /// Creates the optimizer for a parameter set of known arity.
    pub fn new(cfg: AdamWConfig, param_count: usize) -> Self {
        AdamW {
            cfg,
            state: (0..param_count).map(|_| None).collect(),
            step: 0,
            schedule: None,
            epoch: 0,
            lr_scale: 1.0,
        }
    }

    /// Attaches a step-decay schedule.
    pub fn with_schedule(mut self, schedule: StepDecay) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Informs the optimizer of the current epoch (drives the schedule).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// Effective learning rate right now.
    pub fn current_lr(&self) -> f32 {
        let f = self.schedule.as_ref().map_or(1.0, |s| s.factor(self.epoch));
        self.cfg.lr * f * self.lr_scale
    }

    /// Multiplies the learning-rate scale (the NaN guard passes 0.5).
    pub fn scale_lr(&mut self, factor: f32) {
        self.lr_scale *= factor;
    }

    /// The current learning-rate scale.
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Sets the learning-rate scale (checkpoint restore).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.lr_scale = scale;
    }

    /// Number of optimizer steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Sets the step counter (checkpoint restore; drives bias correction).
    pub fn set_step_count(&mut self, step: u64) {
        self.step = step;
    }

    /// Read access to the per-parameter `(m, v)` moment slots.
    pub fn moments(&self) -> &[Option<(Tensor, Tensor)>] {
        &self.state
    }

    /// Restores one parameter's moment slot (checkpoint restore).
    ///
    /// # Panics
    /// Panics if `index` is out of range for the optimizer's arity.
    pub fn set_moment(&mut self, index: usize, m: Tensor, v: Tensor) {
        self.state[index] = Some((m, v));
    }

    /// Packs the optimizer's state into a checkpointable [`TrainState`]:
    /// moment tensors as `opt.m.<i>` / `opt.v.<i>`, the step counter as
    /// `opt.step`, and the learning-rate scale as `opt.lr_scale`.
    pub fn export_state(&self) -> TrainState {
        let mut state = TrainState::default();
        for (i, slot) in self.state.iter().enumerate() {
            if let Some((m, v)) = slot {
                state.aux.push((format!("opt.m.{i}"), m.clone()));
                state.aux.push((format!("opt.v.{i}"), v.clone()));
            }
        }
        state.counters.push(("opt.step".to_string(), self.step));
        state.scalars.push(("opt.lr_scale".to_string(), self.lr_scale));
        state
    }

    /// Restores moment tensors, step counter, and learning-rate scale from
    /// a [`TrainState`] produced by [`AdamW::export_state`]. Entries for
    /// parameter indices beyond this optimizer's arity are ignored, as are
    /// unrelated aux tensors.
    pub fn import_state(&mut self, state: &TrainState) {
        for (name, tensor) in &state.aux {
            let (which, idx) = match name.strip_prefix("opt.m.") {
                Some(i) => ('m', i),
                None => match name.strip_prefix("opt.v.") {
                    Some(i) => ('v', i),
                    None => continue,
                },
            };
            let Ok(idx) = idx.parse::<usize>() else { continue };
            if idx >= self.state.len() {
                continue;
            }
            let slot = self.state[idx].get_or_insert_with(|| {
                (
                    Tensor::zeros(tensor.shape().clone()),
                    Tensor::zeros(tensor.shape().clone()),
                )
            });
            match which {
                'm' => slot.0 = tensor.clone(),
                _ => slot.1 = tensor.clone(),
            }
        }
        if let Some(step) = state.counter("opt.step") {
            self.step = step;
        }
        if let Some(scale) = state.scalar("opt.lr_scale") {
            self.lr_scale = scale;
        }
    }

    /// Applies one AdamW update for each `(id, grad)` pair.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[(ParamId, Tensor)]) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        let lr = self.current_lr();
        let (b1, b2, eps, wd) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps, self.cfg.weight_decay);

        for (id, grad) in grads {
            let slot = &mut self.state[id.index()];
            let (m, v) = slot.get_or_insert_with(|| {
                (
                    Tensor::zeros(grad.shape().clone()),
                    Tensor::zeros(grad.shape().clone()),
                )
            });
            *m = m.scale(b1).add(&grad.scale(1.0 - b1));
            *v = v.scale(b2).add(&grad.zip_with(grad, |a, b| a * b).scale(1.0 - b2));
            let mhat = m.scale(1.0 / bc1);
            let vhat = v.scale(1.0 / bc2);
            let update = mhat.zip_with(&vhat, |mi, vi| mi / (vi.sqrt() + eps));

            let p = params.get_mut(*id);
            // Decoupled weight decay, then the Adam step.
            let decayed = p.scale(1.0 - lr * wd);
            *p = decayed.sub(&update.scale(lr));
        }
    }
}

/// Clips gradients to a maximum global L2 norm, in place.
///
/// Returns the pre-clip norm. When it exceeds `max_norm`, every gradient is
/// scaled by `max_norm / norm` so the joint update direction is preserved.
pub fn clip_grad_norm(grads: &mut [(ParamId, Tensor)], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let sq_sum: f64 = grads
        .iter()
        .flat_map(|(_, g)| g.data().iter())
        .map(|&v| (v as f64) * (v as f64))
        .sum();
    let norm = sq_sum.sqrt() as f32;
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for (_, g) in grads.iter_mut() {
            *g = g.scale(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_models::params::ParamSet;

    #[test]
    fn step_decay_factors() {
        let s = StepDecay::paper();
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(499), 1.0);
        assert!((s.factor(500) - 0.1).abs() < 1e-7);
        assert!((s.factor(800) - 0.01).abs() < 1e-8);
        assert!((s.factor(900) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn adamw_reduces_quadratic_loss() {
        // Minimize ||x - 3||^2 with AdamW.
        let mut ps = ParamSet::new();
        let id = ps.add("x", Tensor::zeros([4]));
        let mut opt = AdamW::new(
            AdamWConfig { lr: 0.1, weight_decay: 0.0, ..Default::default() },
            ps.len(),
        );
        for _ in 0..200 {
            let x = ps.get(id).clone();
            let grad = x.map(|v| 2.0 * (v - 3.0));
            opt.step(&mut ps, &[(id, grad)]);
        }
        for &v in ps.get(id).data() {
            assert!((v - 3.0).abs() < 0.05, "converged to {}", v);
        }
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut ps = ParamSet::new();
        let id = ps.add("x", Tensor::ones([2]));
        let mut opt = AdamW::new(
            AdamWConfig { lr: 0.1, weight_decay: 0.5, ..Default::default() },
            ps.len(),
        );
        for _ in 0..20 {
            opt.step(&mut ps, &[(id, Tensor::zeros([2]))]);
        }
        assert!(ps.get(id).data()[0] < 0.5, "decay had no effect");
    }

    #[test]
    fn schedule_lowers_effective_lr() {
        let mut opt = AdamW::new(AdamWConfig::default(), 0)
            .with_schedule(StepDecay { milestones: vec![10], gamma: 0.1 });
        assert!((opt.current_lr() - 1e-4).abs() < 1e-9);
        opt.set_epoch(10);
        assert!((opt.current_lr() - 1e-5).abs() < 1e-10);
    }

    #[test]
    fn lr_scale_compounds_with_schedule() {
        let mut opt = AdamW::new(AdamWConfig::default(), 0)
            .with_schedule(StepDecay { milestones: vec![10], gamma: 0.1 });
        opt.scale_lr(0.5);
        opt.scale_lr(0.5);
        assert!((opt.lr_scale() - 0.25).abs() < 1e-9);
        assert!((opt.current_lr() - 2.5e-5).abs() < 1e-10);
        opt.set_epoch(10);
        assert!((opt.current_lr() - 2.5e-6).abs() < 1e-11);
    }

    #[test]
    fn cloned_optimizer_steps_identically() {
        let mut ps = ParamSet::new();
        let id = ps.add("x", Tensor::ones([3]));
        let mut a = AdamW::new(AdamWConfig { lr: 0.05, ..Default::default() }, ps.len());
        // Warm up so the moment state is non-trivial before the snapshot.
        for _ in 0..3 {
            a.step(&mut ps, &[(id, Tensor::ones([3]))]);
        }
        let mut b = a.clone();
        let mut ps_b = ps.clone();
        a.step(&mut ps, &[(id, Tensor::ones([3]))]);
        b.step(&mut ps_b, &[(id, Tensor::ones([3]))]);
        assert_eq!(ps.get(id).to_vec(), ps_b.get(id).to_vec());
        assert_eq!(a.step_count(), b.step_count());
    }

    #[test]
    fn clip_grad_norm_scales_only_when_needed() {
        let id = ParamSet::new().add("x", Tensor::zeros([1]));
        let mut grads = vec![(id, Tensor::new([4], vec![3.0, 0.0, 4.0, 0.0]))];
        // Norm 5 > 1: clipped to unit norm, direction preserved.
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let clipped = grads[0].1.to_vec();
        assert!((clipped[0] - 0.6).abs() < 1e-6);
        assert!((clipped[2] - 0.8).abs() < 1e-6);
        // Norm 1 <= 10: untouched.
        let pre2 = clip_grad_norm(&mut grads, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
        assert_eq!(grads[0].1.to_vec(), clipped);
    }
}
