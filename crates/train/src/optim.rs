//! Optimizers: AdamW (decoupled weight decay) with a step-decay schedule —
//! the paper's training setup (AdamW, lr 1e-4, decay 0.1 at milestones).

use apf_models::params::{ParamId, ParamSet};
use apf_tensor::tensor::Tensor;

/// AdamW hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamWConfig {
    /// Initial learning rate (paper: 1e-4).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }
}

/// Step decay: multiply the learning rate by `gamma` at each milestone
/// (paper: 0.1 at epochs [500, 750, 875]).
#[derive(Debug, Clone)]
pub struct StepDecay {
    /// Epochs at which the rate decays.
    pub milestones: Vec<usize>,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepDecay {
    /// The paper's schedule.
    pub fn paper() -> Self {
        StepDecay { milestones: vec![500, 750, 875], gamma: 0.1 }
    }

    /// Learning-rate multiplier at `epoch`.
    pub fn factor(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.gamma.powi(passed as i32)
    }
}

/// AdamW optimizer with per-parameter moment state.
pub struct AdamW {
    cfg: AdamWConfig,
    /// (m, v) per parameter slot, lazily initialized.
    state: Vec<Option<(Tensor, Tensor)>>,
    step: u64,
    schedule: Option<StepDecay>,
    epoch: usize,
}

impl AdamW {
    /// Creates the optimizer for a parameter set of known arity.
    pub fn new(cfg: AdamWConfig, param_count: usize) -> Self {
        AdamW {
            cfg,
            state: (0..param_count).map(|_| None).collect(),
            step: 0,
            schedule: None,
            epoch: 0,
        }
    }

    /// Attaches a step-decay schedule.
    pub fn with_schedule(mut self, schedule: StepDecay) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Informs the optimizer of the current epoch (drives the schedule).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// Effective learning rate right now.
    pub fn current_lr(&self) -> f32 {
        let f = self.schedule.as_ref().map_or(1.0, |s| s.factor(self.epoch));
        self.cfg.lr * f
    }

    /// Applies one AdamW update for each `(id, grad)` pair.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[(ParamId, Tensor)]) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        let lr = self.current_lr();
        let (b1, b2, eps, wd) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps, self.cfg.weight_decay);

        for (id, grad) in grads {
            let slot = &mut self.state[id.index()];
            let (m, v) = slot.get_or_insert_with(|| {
                (
                    Tensor::zeros(grad.shape().clone()),
                    Tensor::zeros(grad.shape().clone()),
                )
            });
            *m = m.scale(b1).add(&grad.scale(1.0 - b1));
            *v = v.scale(b2).add(&grad.zip_with(grad, |a, b| a * b).scale(1.0 - b2));
            let mhat = m.scale(1.0 / bc1);
            let vhat = v.scale(1.0 / bc2);
            let update = mhat.zip_with(&vhat, |mi, vi| mi / (vi.sqrt() + eps));

            let p = params.get_mut(*id);
            // Decoupled weight decay, then the Adam step.
            let decayed = p.scale(1.0 - lr * wd);
            *p = decayed.sub(&update.scale(lr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_models::params::ParamSet;

    #[test]
    fn step_decay_factors() {
        let s = StepDecay::paper();
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(499), 1.0);
        assert!((s.factor(500) - 0.1).abs() < 1e-7);
        assert!((s.factor(800) - 0.01).abs() < 1e-8);
        assert!((s.factor(900) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn adamw_reduces_quadratic_loss() {
        // Minimize ||x - 3||^2 with AdamW.
        let mut ps = ParamSet::new();
        let id = ps.add("x", Tensor::zeros([4]));
        let mut opt = AdamW::new(
            AdamWConfig { lr: 0.1, weight_decay: 0.0, ..Default::default() },
            ps.len(),
        );
        for _ in 0..200 {
            let x = ps.get(id).clone();
            let grad = x.map(|v| 2.0 * (v - 3.0));
            opt.step(&mut ps, &[(id, grad)]);
        }
        for &v in ps.get(id).data() {
            assert!((v - 3.0).abs() < 0.05, "converged to {}", v);
        }
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut ps = ParamSet::new();
        let id = ps.add("x", Tensor::ones([2]));
        let mut opt = AdamW::new(
            AdamWConfig { lr: 0.1, weight_decay: 0.5, ..Default::default() },
            ps.len(),
        );
        for _ in 0..20 {
            opt.step(&mut ps, &[(id, Tensor::zeros([2]))]);
        }
        assert!(ps.get(id).data()[0] < 0.5, "decay had no effect");
    }

    #[test]
    fn schedule_lowers_effective_lr() {
        let mut opt = AdamW::new(AdamWConfig::default(), 0)
            .with_schedule(StepDecay { milestones: vec![10], gamma: 0.1 });
        assert!((opt.current_lr() - 1e-4).abs() < 1e-9);
        opt.set_epoch(10);
        assert!((opt.current_lr() - 1e-5).abs() < 1e-10);
    }
}
