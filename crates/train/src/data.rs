//! Dataset assembly: token-sequence segmentation samples (APF or uniform),
//! batching, and train/val/test splitting.

use apf_core::patchify::PatchSequence;
use apf_core::pipeline::AdaptivePatcher;
use apf_core::uniform::uniform_patches;
use apf_imaging::image::GrayImage;
use apf_tensor::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Index split for train/validation/test (paper: 0.7 / 0.1 / 0.2).
#[derive(Debug, Clone)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub val: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

/// Shuffles `0..n` and splits by the given fractions (test takes the rest).
pub fn split_indices(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Split {
    assert!(train_frac + val_frac <= 1.0, "fractions exceed 1");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = ((n as f64) * train_frac).round() as usize;
    let n_val = ((n as f64) * val_frac).round() as usize;
    Split {
        train: idx[..n_train].to_vec(),
        val: idx[n_train..(n_train + n_val).min(n)].to_vec(),
        test: idx[(n_train + n_val).min(n)..].to_vec(),
    }
}

/// One segmentation sample as token sequences plus everything needed to
/// score a full-resolution prediction.
#[derive(Clone)]
pub struct TokenSegSample {
    /// `[L, P²]` image tokens.
    pub tokens: Tensor,
    /// `[L, P²]` mask tokens aligned with `tokens`.
    pub mask_tokens: Tensor,
    /// The patch sequence (leaf regions) used to reconstruct masks.
    pub seq: PatchSequence,
    /// Full-resolution ground truth.
    pub full_mask: GrayImage,
}

/// A token-sequence segmentation dataset; all samples share one `L` and
/// `P_m` so they can be batched.
#[derive(Clone, Default)]
pub struct TokenSegDataset {
    /// The samples.
    pub samples: Vec<TokenSegSample>,
}

impl TokenSegDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Builds an APF dataset: every `(image, mask)` pair through the
    /// adaptive patcher (which must have a `target_len` so lengths match).
    pub fn adaptive(pairs: &[(GrayImage, GrayImage)], patcher: &AdaptivePatcher) -> Self {
        assert!(
            patcher.config().target_len.is_some(),
            "adaptive datasets require a fixed target_len for batching"
        );
        let samples = pairs
            .iter()
            .map(|(img, mask)| {
                let (xs, ys) = patcher.patchify_with_mask(img, mask);
                TokenSegSample {
                    tokens: xs.to_tensor(),
                    mask_tokens: ys.to_tensor(),
                    seq: xs,
                    full_mask: mask.clone(),
                }
            })
            .collect();
        TokenSegDataset { samples }
    }

    /// Builds a uniform-grid dataset at patch size `p`.
    pub fn uniform(pairs: &[(GrayImage, GrayImage)], p: usize) -> Self {
        let samples = pairs
            .iter()
            .map(|(img, mask)| {
                let xs = uniform_patches(img, p);
                let ys = uniform_patches(mask, p);
                TokenSegSample {
                    tokens: xs.to_tensor(),
                    mask_tokens: ys.to_tensor(),
                    seq: xs,
                    full_mask: mask.clone(),
                }
            })
            .collect();
        TokenSegDataset { samples }
    }

    /// Selects a subset by indices (for splits).
    pub fn subset(&self, idx: &[usize]) -> Self {
        TokenSegDataset {
            samples: idx.iter().map(|&i| self.samples[i].clone()).collect(),
        }
    }

    /// Stacks samples `idx` into `([B, L, P²] tokens, [B, L, P²] masks)`.
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Tensor) {
        assert!(!idx.is_empty(), "empty batch");
        let l = self.samples[idx[0]].tokens.dims()[0];
        let d = self.samples[idx[0]].tokens.dims()[1];
        let mut xs = Vec::with_capacity(idx.len() * l * d);
        let mut ys = Vec::with_capacity(idx.len() * l * d);
        for &i in idx {
            let s = &self.samples[i];
            assert_eq!(s.tokens.dims(), &[l, d], "inconsistent sample shapes");
            xs.extend_from_slice(s.tokens.data());
            ys.extend_from_slice(s.mask_tokens.data());
        }
        (
            Tensor::new([idx.len(), l, d], xs),
            Tensor::new([idx.len(), l, d], ys),
        )
    }

    /// Random batch order for one epoch.
    pub fn epoch_batches(&self, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx.chunks(batch_size.max(1)).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_core::pipeline::PatcherConfig;
    use apf_imaging::paip::{PaipConfig, PaipGenerator};

    fn pairs(n: usize, res: usize) -> Vec<(GrayImage, GrayImage)> {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
        (0..n)
            .map(|i| {
                let s = gen.generate(i);
                (s.image, s.mask)
            })
            .collect()
    }

    #[test]
    fn split_fractions_and_determinism() {
        let s = split_indices(100, 0.7, 0.1, 1);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 20);
        let s2 = split_indices(100, 0.7, 0.1, 1);
        assert_eq!(s.train, s2.train);
        // No index lost or duplicated.
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn adaptive_dataset_batches() {
        let data = pairs(3, 64);
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(32),
        );
        let ds = TokenSegDataset::adaptive(&data, &patcher);
        assert_eq!(ds.len(), 3);
        let (x, y) = ds.batch(&[0, 1, 2]);
        assert_eq!(x.dims(), &[3, 32, 16]);
        assert_eq!(y.dims(), &[3, 32, 16]);
    }

    #[test]
    #[should_panic(expected = "target_len")]
    fn adaptive_without_target_len_panics() {
        let data = pairs(1, 64);
        let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(64));
        TokenSegDataset::adaptive(&data, &patcher);
    }

    #[test]
    fn uniform_dataset_batches() {
        let data = pairs(2, 32);
        let ds = TokenSegDataset::uniform(&data, 8);
        let (x, _) = ds.batch(&[0, 1]);
        assert_eq!(x.dims(), &[2, 16, 64]);
    }

    #[test]
    fn mask_tokens_match_mask_content() {
        let data = pairs(1, 64);
        let ds = TokenSegDataset::uniform(&data, 8);
        // Mean of the mask tokens equals coverage of the full mask.
        let cov = data[0].1.coverage(0.5);
        let token_mean = ds.samples[0].mask_tokens.mean();
        assert!((cov - token_mean).abs() < 0.01);
    }

    #[test]
    fn epoch_batches_cover_all_samples() {
        let data = pairs(5, 32);
        let ds = TokenSegDataset::uniform(&data, 8);
        let batches = ds.epoch_batches(2, 3);
        let mut seen: Vec<usize> = batches.concat();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[2].len(), 1);
    }
}
