//! End-to-end determinism of the training loop under both kernel modes.
//!
//! The fast kernels use a fixed blocking/accumulation order, so repeated
//! runs at the same seed must produce bit-identical losses — in fast mode
//! AND with the fast paths force-disabled (the `APF_NAIVE_KERNELS`
//! escape hatch). The two modes reassociate float reductions differently,
//! so across modes the losses only agree to a tolerance.
//!
//! This is one `#[test]` (not one per mode) because `force_kernel_mode`
//! is process-global: splitting it would let the harness interleave the
//! overrides.

use apf_models::vit::{ViTConfig, ViTSegmenter};
use apf_tensor::kernels::{force_kernel_mode, KernelMode};
use apf_tensor::prelude::*;
use apf_train::optim::AdamWConfig;
use apf_train::SegTrainer;

const STEPS: usize = 3;

/// Runs `STEPS` trainer steps from a fresh seeded model and returns the
/// per-step losses.
fn run_losses() -> Vec<f64> {
    let cfg = ViTConfig { patch_dim: 16, seq_len: 12, dim: 16, depth: 2, heads: 2 };
    let model = ViTSegmenter::new(cfg, 42);
    let mut tr = SegTrainer::new(model, AdamWConfig { lr: 1e-3, ..Default::default() });
    let tokens = Tensor::rand_uniform([2, 12, 16], -1.0, 1.0, 7);
    let masks = Tensor::rand_uniform([2, 12, 16], 0.0, 1.0, 8).map(|v| if v > 0.5 { 1.0 } else { 0.0 });
    (0..STEPS).map(|_| tr.step(&tokens, &masks)).collect()
}

#[test]
fn training_is_bit_deterministic_in_both_kernel_modes() {
    force_kernel_mode(Some(KernelMode::Naive));
    let naive_a = run_losses();
    let naive_b = run_losses();
    force_kernel_mode(Some(KernelMode::Fast));
    let fast_a = run_losses();
    let fast_b = run_losses();
    force_kernel_mode(None);

    assert_eq!(
        naive_a.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        naive_b.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "naive-mode losses must be bit-identical across runs: {:?} vs {:?}",
        naive_a,
        naive_b
    );
    assert_eq!(
        fast_a.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        fast_b.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "fast-mode losses must be bit-identical across runs: {:?} vs {:?}",
        fast_a,
        fast_b
    );
    for (i, (f, n)) in fast_a.iter().zip(naive_a.iter()).enumerate() {
        assert!(f.is_finite() && n.is_finite(), "step {} loss not finite", i);
        let rel = (f - n).abs() / n.abs().max(1e-12);
        assert!(
            rel < 1e-3,
            "step {}: fast loss {} vs naive loss {} (rel {})",
            i,
            f,
            n,
            rel
        );
    }
}
