//! Property-based tests of losses, metrics, and optimizer invariants.

use apf_imaging::image::GrayImage;
use apf_models::params::ParamSet;
use apf_tensor::prelude::*;
use apf_train::loss::{combo_loss, dice_loss, ComboLossConfig};
use apf_train::metrics::{dice_score, multiclass_dice, top1_accuracy};
use apf_train::optim::{AdamW, AdamWConfig, StepDecay};
use apf_train::data::split_indices;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dice_score_is_symmetric_and_bounded(bits in prop::collection::vec(0u8..2, 16)) {
        let a = GrayImage::from_raw(4, 4, bits.iter().map(|&b| b as f32).collect());
        let b = GrayImage::from_raw(4, 4, bits.iter().rev().map(|&v| v as f32).collect());
        let d_ab = dice_score(&a, &b, 0.5);
        let d_ba = dice_score(&b, &a, 0.5);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!((0.0..=100.0).contains(&d_ab));
        prop_assert_eq!(dice_score(&a, &a, 0.5), 100.0);
    }

    #[test]
    fn multiclass_dice_bounded_and_perfect_on_self(labels in prop::collection::vec(0u8..5, 25)) {
        let d = multiclass_dice(&labels, &labels, 4);
        prop_assert_eq!(d, 100.0);
        let shifted: Vec<u8> = labels.iter().map(|&l| (l + 1) % 5).collect();
        let d2 = multiclass_dice(&shifted, &labels, 4);
        prop_assert!((0.0..=100.0).contains(&d2));
    }

    #[test]
    fn top1_accuracy_bounds(preds in prop::collection::vec(0usize..4, 1..20)) {
        let truth: Vec<usize> = preds.iter().map(|&p| (p + 1) % 4).collect();
        prop_assert_eq!(top1_accuracy(&preds, &preds), 100.0);
        prop_assert_eq!(top1_accuracy(&preds, &truth), 0.0);
    }

    #[test]
    fn losses_are_finite_and_nonnegative(
        n in 1usize..64,
        seed in 0u64..1000,
        w in 0.0f32..1.0,
    ) {
        let logits = Tensor::rand_uniform([n], -10.0, 10.0, seed);
        let targets = Tensor::rand_uniform([n], 0.0, 1.0, seed + 1).map(f32::round);
        let mut g = Graph::new();
        let lv = g.constant(logits);
        let tv = g.constant(targets);
        let dice = dice_loss(&mut g, lv, tv, 1.0);
        let combo = combo_loss(&mut g, lv, tv, ComboLossConfig { bce_weight: w, epsilon: 1.0 });
        let dv = g.value(dice).item();
        let cv = g.value(combo).item();
        prop_assert!(dv.is_finite() && (0.0..=1.0).contains(&dv));
        prop_assert!(cv.is_finite() && cv >= 0.0);
    }

    #[test]
    fn dice_loss_gradient_points_toward_target(n in 4usize..32, seed in 0u64..100) {
        // Moving logits one gradient step must not increase the loss.
        let logits = Tensor::rand_uniform([n], -2.0, 2.0, seed);
        let targets = Tensor::rand_uniform([n], 0.0, 1.0, seed + 7).map(f32::round);
        let loss_of = |x: &Tensor| {
            let mut g = Graph::new();
            let lv = g.constant(x.clone());
            let tv = g.constant(targets.clone());
            let l = dice_loss(&mut g, lv, tv, 1.0);
            g.value(l).item()
        };
        let before = loss_of(&logits);
        let mut g = Graph::new();
        let lv = g.leaf(logits.clone());
        let tv = g.constant(targets.clone());
        let l = dice_loss(&mut g, lv, tv, 1.0);
        g.backward(l);
        let grad = g.grad(lv).unwrap().clone();
        let stepped = logits.sub(&grad.scale(0.1));
        prop_assert!(loss_of(&stepped) <= before + 1e-5);
    }

    #[test]
    fn adamw_zero_grad_only_decays(decay in 0.0f32..0.5, steps in 1usize..20) {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::ones([4]));
        let mut opt = AdamW::new(
            AdamWConfig { lr: 0.1, weight_decay: decay, ..Default::default() },
            1,
        );
        for _ in 0..steps {
            opt.step(&mut ps, &[(id, Tensor::zeros([4]))]);
        }
        let expect = (1.0 - 0.1 * decay).powi(steps as i32);
        for &v in ps.get(id).data() {
            prop_assert!((v - expect).abs() < 1e-4, "{} vs {}", v, expect);
        }
    }

    #[test]
    fn step_decay_is_monotone_nonincreasing(milestone in 1usize..100, epoch in 0usize..200) {
        let s = StepDecay { milestones: vec![milestone, milestone * 2], gamma: 0.1 };
        prop_assert!(s.factor(epoch + 1) <= s.factor(epoch));
        prop_assert!(s.factor(epoch) > 0.0);
    }

    #[test]
    fn split_indices_partitions_exactly(n in 1usize..200, seed in 0u64..50) {
        let s = split_indices(n, 0.7, 0.1, seed);
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
