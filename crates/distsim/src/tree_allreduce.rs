//! Binary-tree all-reduce (reduce-to-root + broadcast) — the classic
//! alternative to the ring, better for small messages (O(log P) latency)
//! and worse for large ones (root link carries full buffers).
//!
//! Implemented both as an analytic cost model and as a real multi-threaded
//! algorithm, so the ring-vs-tree tradeoff the fabric model predicts can be
//! checked against measured thread timings (`cargo bench -p apf-bench`
//! `ring_allreduce` vs the `allreduce_comparison` experiment).

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::allreduce::{merge_errors, open, seal, AllReduceError, Message};
use crate::gpu::Fabric;

/// Predicted seconds for a tree all-reduce of `bytes` over `gpus` devices:
/// `2 * log2(P)` hops each carrying the full buffer.
pub fn tree_allreduce_seconds(bytes: f64, gpus: usize, fabric: &Fabric) -> f64 {
    if gpus <= 1 {
        return 0.0;
    }
    let hops = 2.0 * (gpus as f64).log2().ceil();
    let bw = fabric.ring_bandwidth(gpus);
    let lat = fabric.ring_latency(gpus);
    hops * (bytes / bw + lat)
}

/// Real tree all-reduce across threads: every worker contributes one buffer
/// and receives the elementwise **mean**.
///
/// Reduction pairs workers at stride 1, 2, 4, ... (non-power-of-two counts
/// fold the tail into the tree); the root scales and broadcasts back down
/// the same edges. Messages are CRC-checked; no corruption is injected
/// here, so the checked variant cannot fail.
pub fn tree_allreduce_mean(buffers: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    tree_allreduce_mean_checked(buffers, &[]).expect("uncorrupted tree all-reduce cannot fail")
}

/// Tree all-reduce with checksum verification and optional fault injection:
/// each rank in `corrupt_ranks` flips one bit of its first outgoing message
/// (after the CRC is computed), whether that message is a reduce-phase send
/// to its parent or a broadcast-phase send to a child.
///
/// # Errors
/// [`AllReduceError::Corrupted`] when a receiver detects a bad checksum;
/// the collective aborts so callers can retry with their retained inputs.
pub fn tree_allreduce_mean_checked(
    buffers: Vec<Vec<f32>>,
    corrupt_ranks: &[usize],
) -> Result<Vec<Vec<f32>>, AllReduceError> {
    let p = buffers.len();
    assert!(p > 0, "no buffers");
    let n = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == n), "buffer length mismatch");
    if p == 1 {
        return Ok(buffers);
    }

    // Channel matrix: pair (from, to) used during reduce and reversed
    // during broadcast.
    let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut connect = |a: usize, b: usize| {
        if txs[a][b].is_none() {
            let (t1, r1) = bounded::<Message>(1);
            txs[a][b] = Some(t1);
            rxs[b][a] = Some(r1);
            let (t2, r2) = bounded::<Message>(1);
            txs[b][a] = Some(t2);
            rxs[a][b] = Some(r2);
        }
    };
    // Plan the reduction schedule so we know which edges to create.
    let mut stride = 1;
    let mut schedule: Vec<(usize, usize)> = Vec::new(); // (child, parent)
    while stride < p {
        let mut r = 0;
        while r + stride < p {
            if r % (2 * stride) == 0 {
                schedule.push((r + stride, r));
            }
            r += stride;
        }
        stride *= 2;
    }
    for &(c, par) in &schedule {
        connect(c, par);
    }

    let inv_p = 1.0f32 / p as f32;
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = buffers
            .into_iter()
            .enumerate()
            .map(|(rank, mut buf)| {
                let my_tx: Vec<Option<Sender<Message>>> = txs[rank].iter_mut().map(|t| t.take()).collect();
                let my_rx: Vec<Option<Receiver<Message>>> = rxs[rank].iter_mut().map(|r| r.take()).collect();
                let schedule = schedule.clone();
                let mut corrupt_pending = corrupt_ranks.contains(&rank);
                scope.spawn(move || -> Result<Vec<f32>, AllReduceError> {
                    let fail = AllReduceError::Disconnected { observed_by: rank };
                    // Reduce phase.
                    for &(child, parent) in &schedule {
                        if rank == child {
                            let (msg, applied) = seal(std::mem::take(&mut buf), corrupt_pending);
                            corrupt_pending &= !applied;
                            my_tx[parent].as_ref().expect("edge").send(msg).map_err(|_| fail)?;
                        } else if rank == parent {
                            let raw = my_rx[child].as_ref().expect("edge").recv().map_err(|_| fail)?;
                            let incoming = open(raw, rank)?;
                            for (d, s) in buf.iter_mut().zip(incoming.iter()) {
                                *d += s;
                            }
                        }
                    }
                    if rank == 0 {
                        for v in &mut buf {
                            *v *= inv_p;
                        }
                    }
                    // Broadcast phase: reverse schedule.
                    for &(child, parent) in schedule.iter().rev() {
                        if rank == parent {
                            let (msg, applied) = seal(buf.clone(), corrupt_pending);
                            corrupt_pending &= !applied;
                            my_tx[child].as_ref().expect("edge").send(msg).map_err(|_| fail)?;
                        } else if rank == child {
                            let raw = my_rx[parent].as_ref().expect("edge").recv().map_err(|_| fail)?;
                            buf = open(raw, rank)?;
                        }
                    }
                    Ok(buf)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    merge_errors(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_mean(inputs: &[Vec<f32>]) -> Vec<f32> {
        let p = inputs.len() as f32;
        (0..inputs[0].len())
            .map(|i| inputs.iter().map(|b| b[i]).sum::<f32>() / p)
            .collect()
    }

    #[test]
    fn tree_matches_mean_for_all_worker_counts() {
        for p in [2usize, 3, 4, 5, 8, 9] {
            let inputs: Vec<Vec<f32>> = (0..p)
                .map(|r| (0..57).map(|i| ((r * 31 + i * 3) % 17) as f32 - 8.0).collect())
                .collect();
            let expect = expect_mean(&inputs);
            let out = tree_allreduce_mean(inputs);
            assert_eq!(out.len(), p);
            for o in &out {
                for (a, b) in o.iter().zip(expect.iter()) {
                    assert!((a - b).abs() < 1e-4, "p={}", p);
                }
            }
        }
    }

    #[test]
    fn tree_and_ring_agree() {
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..100).map(|i| (r * 100 + i) as f32).collect())
            .collect();
        let ring = crate::allreduce::ring_allreduce_mean(inputs.clone());
        let tree = tree_allreduce_mean(inputs);
        for (a, b) in ring[0].iter().zip(tree[0].iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cost_model_tradeoff_ring_vs_tree() {
        let f = Fabric::frontier();
        // Small message, many GPUs: tree's O(log P) latency wins.
        let small = 1e3;
        let t_tree = tree_allreduce_seconds(small, 1024, &f);
        let t_ring = crate::allreduce::ring_allreduce_seconds(small, 1024, &f);
        assert!(t_tree < t_ring, "tree {} vs ring {}", t_tree, t_ring);
        // Large message: ring's (P-1)/P bandwidth term wins.
        let large = 1e9;
        let t_tree = tree_allreduce_seconds(large, 64, &f);
        let t_ring = crate::allreduce::ring_allreduce_seconds(large, 64, &f);
        assert!(t_ring < t_tree, "ring {} vs tree {}", t_ring, t_tree);
    }

    #[test]
    fn single_worker_identity() {
        let out = tree_allreduce_mean(vec![vec![5.0, 6.0]]);
        assert_eq!(out, vec![vec![5.0, 6.0]]);
    }

    #[test]
    fn tree_corruption_is_detected_for_every_rank() {
        // Rank 0 only sends during broadcast; leaves only send during
        // reduce — exercise both paths.
        for p in [2usize, 3, 4, 5] {
            for bad_rank in 0..p {
                let inputs: Vec<Vec<f32>> =
                    (0..p).map(|r| (0..13).map(|i| (r * 7 + i) as f32).collect()).collect();
                let err = tree_allreduce_mean_checked(inputs, &[bad_rank])
                    .expect_err("corruption must be detected");
                assert!(
                    matches!(err, AllReduceError::Corrupted { .. }),
                    "p={} bad_rank={} got {:?}",
                    p,
                    bad_rank,
                    err
                );
            }
        }
    }

    #[test]
    fn checked_tree_without_faults_matches_mean() {
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|r| (0..23).map(|i| ((r * 13 + i * 5) % 11) as f32 - 5.0).collect())
            .collect();
        let expect = expect_mean(&inputs);
        let out = tree_allreduce_mean_checked(inputs, &[]).expect("no faults injected");
        for o in &out {
            for (a, b) in o.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
