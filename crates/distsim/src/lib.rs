//! # apf-distsim
//!
//! Distributed-training substrate for the APF reproduction, standing in for
//! the paper's 9,408-node Frontier deployment:
//!
//! - [`gpu`] — MI250X-like device model and the two-level Frontier fabric
//!   (Infinity Fabric intra-node, Slingshot-11 inter-node).
//! - [`allreduce`] — ring all-reduce: analytic cost model **and** a real
//!   multi-threaded implementation used for gradient averaging.
//! - [`cost`] — FLOP/memory accounting of transformer training as a
//!   function of sequence length (the quantity APF reduces).
//! - [`cluster`] — sec/image predictions for N-GPU data-parallel training,
//!   calibrated once against a single measured row of the paper.
//! - [`engine`] — a genuine thread-per-GPU data-parallel trainer whose
//!   tests prove step-equivalence with single-worker training.

pub mod allreduce;
pub mod cluster;
pub mod cost;
pub mod engine;
pub mod gpu;
pub mod tree_allreduce;

pub use allreduce::{ring_allreduce_mean, ring_allreduce_seconds};
pub use cluster::{calibrate, ClusterModel, Prediction};
pub use cost::{step_cost, ModelDims, StepCost};
pub use engine::{DataParallelEngine, StepReport};
pub use gpu::{Fabric, GpuSpec};
pub use tree_allreduce::{tree_allreduce_mean, tree_allreduce_seconds};
