//! # apf-distsim
//!
//! Distributed-training substrate for the APF reproduction, standing in for
//! the paper's 9,408-node Frontier deployment:
//!
//! - [`gpu`] — MI250X-like device model and the two-level Frontier fabric
//!   (Infinity Fabric intra-node, Slingshot-11 inter-node).
//! - [`allreduce`] — ring all-reduce: analytic cost model **and** a real
//!   multi-threaded implementation used for gradient averaging.
//! - [`cost`] — FLOP/memory accounting of transformer training as a
//!   function of sequence length (the quantity APF reduces).
//! - [`cluster`] — sec/image predictions for N-GPU data-parallel training,
//!   calibrated once against a single measured row of the paper.
//! - [`engine`] — a genuine thread-per-GPU data-parallel trainer whose
//!   tests prove step-equivalence with single-worker training.
//! - [`fault`] — deterministic fault injection (crashes, wire corruption,
//!   stragglers, NaN gradients) and the recovery trace the engine records
//!   while surviving them.
//! - [`fabric`] — a generic work-stealing worker pool over arbitrary
//!   indexed work lists, with `(worker, nth-item)`-keyed fault plans and a
//!   deterministic virtual-time schedule simulator; the substrate the
//!   gigapixel distributed stitcher runs on.

pub mod allreduce;
pub mod cluster;
pub mod cost;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod gpu;
pub mod tree_allreduce;

pub use allreduce::{
    ring_allreduce_mean, ring_allreduce_mean_checked, ring_allreduce_seconds, AllReduceError,
};
pub use cluster::{calibrate, ClusterModel, Prediction};
pub use cost::{step_cost, ModelDims, StepCost};
pub use engine::{DataParallelEngine, StepReport};
pub use fabric::{
    install_quiet_fabric_panics, run_ordered, simulate_makespan, FabricError, FabricFaultEvent,
    FabricFaultKind, FabricFaultPlan, FabricFaultRates, FabricStats, Next, SimulatedSchedule,
    StealScheduler, FABRIC_THREAD_PREFIX,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, RecoveryEvent};
pub use gpu::{Fabric, GpuSpec};
pub use tree_allreduce::{tree_allreduce_mean, tree_allreduce_mean_checked, tree_allreduce_seconds};
