//! Deterministic fault injection for the data-parallel engine.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — worker crashes,
//! transient gradient corruption on the wire, and stragglers — that the
//! engine consults at the start of every step. Plans are either written
//! explicitly or generated from a seed, and the same plan always produces
//! the same recovery behaviour (verified by the determinism tests), so
//! failure scenarios at any scale can be replayed exactly.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies permanently at the start of the step. The engine
    /// removes it from the collective and re-shards the batch over the
    /// survivors.
    WorkerCrash {
        /// Rank of the dying worker.
        rank: usize,
    },
    /// The worker's outgoing all-reduce traffic is corrupted by a single
    /// bit flip this step. Transient: the retry succeeds.
    GradCorruption {
        /// Rank whose message is corrupted.
        rank: usize,
    },
    /// The worker stalls for `delay_ms` before computing its shard. No
    /// correctness impact; inflates the step's compute time.
    Straggler {
        /// Rank of the slow worker.
        rank: usize,
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
    /// The worker's gradient contribution contains a NaN this step
    /// (modelling an overflow in mixed-precision compute). Transient; the
    /// engine's guard rolls the step back.
    NanGrad {
        /// Rank producing the NaN.
        rank: usize,
    },
}

impl FaultKind {
    /// The rank this fault targets.
    pub fn rank(&self) -> usize {
        match *self {
            FaultKind::WorkerCrash { rank }
            | FaultKind::GradCorruption { rank }
            | FaultKind::Straggler { rank, .. }
            | FaultKind::NanGrad { rank } => rank,
        }
    }
}

/// A fault scheduled for a specific engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Engine step (0-based) at which the fault fires.
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Probabilities for [`FaultPlan::random`], per worker-step.
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// Probability a live worker crashes on a given step.
    pub crash: f64,
    /// Probability a worker's all-reduce traffic is corrupted on a step.
    pub corruption: f64,
    /// Probability a worker straggles on a step.
    pub straggler: f64,
    /// Straggler delay range in milliseconds.
    pub straggler_ms: (u64, u64),
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            crash: 0.01,
            corruption: 0.02,
            straggler: 0.05,
            straggler_ms: (1, 20),
        }
    }
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (sorted by step internally).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.step);
        FaultPlan { events }
    }

    /// Generates a seeded random plan over `steps` steps and `workers`
    /// ranks. The same `(seed, steps, workers, rates)` always yields the
    /// same plan. At most `workers - 1` crashes are scheduled so the
    /// collective never empties.
    pub fn random(seed: u64, steps: u64, workers: usize, rates: FaultRates) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut crashes = 0usize;
        let mut dead = vec![false; workers];
        for step in 0..steps {
            for (rank, is_dead) in dead.iter_mut().enumerate() {
                if *is_dead {
                    continue;
                }
                if crashes + 1 < workers && rng.gen_bool(rates.crash) {
                    events.push(FaultEvent { step, kind: FaultKind::WorkerCrash { rank } });
                    *is_dead = true;
                    crashes += 1;
                    continue;
                }
                if rng.gen_bool(rates.corruption) {
                    events.push(FaultEvent { step, kind: FaultKind::GradCorruption { rank } });
                }
                if rng.gen_bool(rates.straggler) {
                    let delay_ms = rng.gen_range(rates.straggler_ms.0..=rates.straggler_ms.1);
                    events.push(FaultEvent {
                        step,
                        kind: FaultKind::Straggler { rank, delay_ms },
                    });
                }
            }
        }
        FaultPlan { events }
    }

    /// All scheduled events, ordered by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events scheduled for `step`.
    pub fn events_at(&self, step: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One entry in the engine's recovery trace: what the fault-tolerance
/// machinery observed and did. Traces are `PartialEq` so tests can assert
/// that identical plans produce identical recoveries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryEvent {
    /// A worker died; the collective was rebuilt over the survivors.
    WorkerLost {
        /// Step at which the crash fired.
        step: u64,
        /// The dead worker's rank.
        rank: usize,
        /// Surviving world size after removal.
        world_after: usize,
    },
    /// An all-reduce round failed its checksum and was retried.
    CommRetry {
        /// Step at which corruption was detected.
        step: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// A straggler delayed the step.
    StragglerObserved {
        /// Step the delay occurred on.
        step: u64,
        /// The slow worker's rank.
        rank: usize,
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
    /// A non-finite loss or gradient was caught; the update was skipped,
    /// parameters and optimizer rolled back, and the learning rate halved.
    RolledBack {
        /// Step that produced the non-finite value.
        step: u64,
        /// Learning-rate scale in effect after the halving.
        lr_scale_after: f32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_sorts_and_filters_by_step() {
        let plan = FaultPlan::new(vec![
            FaultEvent { step: 5, kind: FaultKind::WorkerCrash { rank: 1 } },
            FaultEvent { step: 2, kind: FaultKind::Straggler { rank: 0, delay_ms: 3 } },
            FaultEvent { step: 5, kind: FaultKind::GradCorruption { rank: 2 } },
        ]);
        assert_eq!(plan.events()[0].step, 2);
        assert_eq!(plan.events_at(5).count(), 2);
        assert_eq!(plan.events_at(3).count(), 0);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(7, 50, 4, FaultRates::default());
        let b = FaultPlan::random(7, 50, 4, FaultRates::default());
        let c = FaultPlan::random(8, 50, 4, FaultRates::default());
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ (vanishingly unlikely otherwise)");
    }

    #[test]
    fn random_plan_never_kills_all_workers() {
        for seed in 0..20 {
            let heavy = FaultRates { crash: 0.5, ..Default::default() };
            let plan = FaultPlan::random(seed, 100, 3, heavy);
            let crashes = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::WorkerCrash { .. }))
                .count();
            assert!(crashes < 3, "seed {} killed everyone", seed);
        }
    }

    #[test]
    fn crashed_workers_emit_no_further_events() {
        let heavy = FaultRates { crash: 0.3, corruption: 0.3, straggler: 0.3, ..Default::default() };
        let plan = FaultPlan::random(3, 60, 4, heavy);
        let mut dead_at: Vec<Option<u64>> = vec![None; 4];
        for e in plan.events() {
            let rank = e.kind.rank();
            if let Some(d) = dead_at[rank] {
                panic!("rank {} acted at step {} after dying at {}", rank, e.step, d);
            }
            if matches!(e.kind, FaultKind::WorkerCrash { .. }) {
                dead_at[rank] = Some(e.step);
            }
        }
    }
}
