//! FLOP and memory accounting for transformer training.
//!
//! The model counts the dominant dense work of a ViT/UNETR training step as
//! a function of sequence length — the quantity APF reduces. It separates
//! the `O(N)` projection/MLP work from the `O(N²)` attention work, so the
//! crossover behaviour in the paper's tables emerges naturally.

use serde::Serialize;

/// Architecture description for cost purposes.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ModelDims {
    /// Encoder depth (transformer layers).
    pub layers: usize,
    /// Model width D.
    pub dim: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: usize,
    /// Patch side P (decoder upsampling work scales with it).
    pub patch: usize,
    /// Decoder base channels.
    pub decoder_ch: usize,
}

impl ModelDims {
    /// The ViT-Base-like encoder the paper trains (depth 12, width 768).
    pub fn vit_base(patch: usize) -> Self {
        ModelDims { layers: 12, dim: 768, mlp_ratio: 4, patch, decoder_ch: 64 }
    }

    /// Parameter bytes (f32) of encoder + decoder — the all-reduce volume.
    pub fn param_bytes(&self) -> f64 {
        let d = self.dim as f64;
        let per_layer = 4.0 * d * d + 2.0 * d * (self.mlp_ratio as f64) * d;
        let decoder = (self.decoder_ch as f64) * d * 16.0; // head + skips, coarse
        ((self.layers as f64) * per_layer + decoder) * 4.0
    }
}

/// FLOPs for one training step on one image (forward + backward) given a
/// sequence length.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StepCost {
    /// Work linear in N: QKV/out projections + MLP + embeddings.
    pub linear_flops: f64,
    /// Work quadratic in N: attention scores and application.
    pub quadratic_flops: f64,
    /// Decoder conv work (per-pixel, scales with N * P²).
    pub decoder_flops: f64,
    /// Attention-matrix activation bytes that must be materialized.
    pub attn_bytes: f64,
}

impl StepCost {
    /// Total FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.linear_flops + self.quadratic_flops + self.decoder_flops
    }
}

/// Cost of one image through `dims` with sequence length `n`.
///
/// Forward GEMM counts use the standard `2 * m * n * k`; backward costs
/// twice the forward (two GEMMs per forward GEMM).
pub fn step_cost(dims: &ModelDims, n: usize) -> StepCost {
    let nf = n as f64;
    let d = dims.dim as f64;
    let l = dims.layers as f64;
    let fwd_bwd = 3.0; // forward + ~2x backward

    // Per layer: QKV + output projections (4 GEMMs of N x D x D) and the
    // two MLP GEMMs (N x D x 4D each way).
    let proj = 4.0 * 2.0 * nf * d * d;
    let mlp = 2.0 * 2.0 * nf * d * (dims.mlp_ratio as f64) * d;
    let linear_flops = l * (proj + mlp) * fwd_bwd;

    // Attention: scores (N x N x D) and application (N x N x D).
    let quadratic_flops = l * 2.0 * 2.0 * nf * nf * d * fwd_bwd;

    // Decoder: a few conv layers over N * P^2 output pixels.
    let out_pixels = nf * (dims.patch as f64) * (dims.patch as f64);
    let decoder_flops = 2.0 * out_pixels * (dims.decoder_ch as f64).powi(2) * 9.0 * fwd_bwd;

    // Attention matrices: L layers of N x N f32 (forward activations kept
    // for backward).
    let attn_bytes = l * nf * nf * 4.0;

    StepCost { linear_flops, quadratic_flops, decoder_flops, attn_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_term_dominates_long_sequences() {
        let dims = ModelDims::vit_base(4);
        let short = step_cost(&dims, 256);
        let long = step_cost(&dims, 16384);
        assert!(short.linear_flops > short.quadratic_flops);
        assert!(long.quadratic_flops > long.linear_flops);
    }

    #[test]
    fn cost_scales_quadratically_in_n() {
        let dims = ModelDims::vit_base(4);
        let a = step_cost(&dims, 1024).quadratic_flops;
        let b = step_cost(&dims, 2048).quadratic_flops;
        assert!((b / a - 4.0).abs() < 0.01);
        let la = step_cost(&dims, 1024).linear_flops;
        let lb = step_cost(&dims, 2048).linear_flops;
        assert!((lb / la - 2.0).abs() < 0.01);
    }

    #[test]
    fn paper_example_sequence_reduction_cuts_cost() {
        // Fig. 1: 4096 -> 424 tokens is a ~9.7x sequence reduction; total
        // step cost must fall by a large factor (more than 5x).
        let dims = ModelDims::vit_base(4);
        let uniform = step_cost(&dims, 4096).total_flops();
        let apf = step_cost(&dims, 424).total_flops();
        assert!(uniform / apf > 5.0, "ratio {}", uniform / apf);
    }

    #[test]
    fn param_bytes_reasonable_for_vit_base() {
        // ViT-Base is ~86M params; our encoder-only count should be within
        // the same order of magnitude (x4 bytes).
        let b = ModelDims::vit_base(4).param_bytes();
        assert!(b > 1e8 && b < 1e9, "{}", b);
    }
}
