//! Ring all-reduce: an analytic cost model and a real multi-threaded
//! implementation over crossbeam channels.
//!
//! The thread version implements the classic two-phase ring algorithm
//! (reduce-scatter then all-gather, each `P - 1` steps over `1/P`-sized
//! segments); it is what the data-parallel engine uses to average
//! gradients, so gradient synchronization in this workspace is genuinely
//! implemented rather than assumed.
//!
//! Every message on the wire carries a CRC-32 of its payload. A receiver
//! that sees a checksum mismatch aborts the collective, which surfaces as
//! an [`AllReduceError`] the engine can retry — transient link corruption
//! is detected instead of silently averaged into the gradients.

use std::fmt;

use apf_core::crc32::crc32_f32;
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::gpu::Fabric;

/// Why a collective failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceError {
    /// A message failed its CRC-32 check.
    Corrupted {
        /// Rank that detected the bad message.
        detected_by: usize,
    },
    /// A peer disappeared mid-collective (its channels disconnected).
    Disconnected {
        /// Rank that observed the disconnect.
        observed_by: usize,
    },
}

impl fmt::Display for AllReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllReduceError::Corrupted { detected_by } => {
                write!(f, "all-reduce checksum mismatch detected by rank {}", detected_by)
            }
            AllReduceError::Disconnected { observed_by } => {
                write!(f, "all-reduce peer disconnected, observed by rank {}", observed_by)
            }
        }
    }
}

impl std::error::Error for AllReduceError {}

/// A payload plus the CRC-32 of its contents.
pub(crate) type Message = (Vec<f32>, u32);

/// Wraps a payload with its checksum, optionally flipping one bit AFTER
/// the checksum is computed (the fault injector's model of transient link
/// corruption). Returns whether corruption was actually applied.
pub(crate) fn seal(payload: Vec<f32>, corrupt: bool) -> (Message, bool) {
    let crc = crc32_f32(&payload);
    let mut payload = payload;
    let mut applied = false;
    if corrupt && !payload.is_empty() {
        let bits = payload[0].to_bits() ^ 0x0000_0400;
        payload[0] = f32::from_bits(bits);
        applied = true;
    }
    ((payload, crc), applied)
}

/// Verifies a received message's checksum.
pub(crate) fn open(msg: Message, rank: usize) -> Result<Vec<f32>, AllReduceError> {
    let (payload, crc) = msg;
    if crc32_f32(&payload) != crc {
        return Err(AllReduceError::Corrupted { detected_by: rank });
    }
    Ok(payload)
}

/// Picks the most informative error out of a set of per-worker results:
/// corruption beats disconnection (workers that abort on corruption tear
/// down their channels, so peers see disconnects as a side effect).
pub(crate) fn merge_errors(
    results: Vec<Result<Vec<f32>, AllReduceError>>,
) -> Result<Vec<Vec<f32>>, AllReduceError> {
    let mut disconnect = None;
    let mut ok = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(buf) => ok.push(buf),
            Err(e @ AllReduceError::Corrupted { .. }) => return Err(e),
            Err(e @ AllReduceError::Disconnected { .. }) => disconnect = Some(e),
        }
    }
    match disconnect {
        Some(e) => Err(e),
        None => Ok(ok),
    }
}

/// Predicted seconds for a ring all-reduce of `bytes` over `gpus` devices.
///
/// Standard model: `2 * (P-1)/P * bytes` cross the bottleneck link, plus
/// `2 * (P-1)` hop latencies.
pub fn ring_allreduce_seconds(bytes: f64, gpus: usize, fabric: &Fabric) -> f64 {
    if gpus <= 1 {
        return 0.0;
    }
    let p = gpus as f64;
    let bw = fabric.ring_bandwidth(gpus);
    let lat = fabric.ring_latency(gpus);
    2.0 * (p - 1.0) / p * bytes / bw + 2.0 * (p - 1.0) * lat
}

/// Real ring all-reduce across threads: every worker contributes one buffer
/// and receives the elementwise **mean** of all buffers.
///
/// Buffers must share one length. Workers are OS threads connected in a
/// ring of bounded channels; each runs reduce-scatter then all-gather on
/// `P` segments. Messages are CRC-checked; since no corruption is injected
/// here, a failure is impossible and this wrapper unwraps it.
pub fn ring_allreduce_mean(buffers: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    ring_allreduce_mean_checked(buffers, &[]).expect("uncorrupted ring all-reduce cannot fail")
}

/// Ring all-reduce with checksum verification and optional fault injection:
/// each rank listed in `corrupt_ranks` flips one bit of its first outgoing
/// message (after the CRC is computed, modelling corruption on the wire).
///
/// # Errors
/// [`AllReduceError::Corrupted`] when a receiver detects a bad checksum;
/// the collective aborts and no buffer is returned, so callers retry with
/// their retained inputs.
pub fn ring_allreduce_mean_checked(
    mut buffers: Vec<Vec<f32>>,
    corrupt_ranks: &[usize],
) -> Result<Vec<Vec<f32>>, AllReduceError> {
    let p = buffers.len();
    assert!(p > 0, "no buffers");
    let n = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == n),
        "all buffers must have equal length"
    );
    if p == 1 || n == 0 {
        return Ok(buffers);
    }

    // Segment boundaries: P segments covering 0..n.
    let bounds: Vec<(usize, usize)> = (0..p)
        .map(|s| (s * n / p, (s + 1) * n / p))
        .collect();

    // Ring channels: worker i sends to (i + 1) % p.
    let mut senders: Vec<Option<Sender<Message>>> = Vec::with_capacity(p);
    let mut receivers: Vec<Option<Receiver<Message>>> = (0..p).map(|_| None).collect();
    for i in 0..p {
        let (tx, rx) = bounded::<Message>(2);
        senders.push(Some(tx));
        receivers[(i + 1) % p] = Some(rx);
    }

    let inv_p = 1.0f32 / p as f32;
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = buffers
            .drain(..)
            .enumerate()
            .map(|(rank, mut buf)| {
                let tx = senders[rank].take().expect("sender");
                let rx = receivers[rank].take().expect("receiver");
                let bounds = bounds.clone();
                let mut corrupt_pending = corrupt_ranks.contains(&rank);
                scope.spawn(move || -> Result<Vec<f32>, AllReduceError> {
                    let fail = AllReduceError::Disconnected { observed_by: rank };
                    // Phase 1: reduce-scatter. After step k, the segment
                    // `(rank - k) mod p` we just received holds partial sums.
                    for k in 0..p - 1 {
                        let send_seg = (rank + p - k) % p;
                        let (s0, s1) = bounds[send_seg];
                        let (msg, applied) = seal(buf[s0..s1].to_vec(), corrupt_pending);
                        corrupt_pending &= !applied;
                        tx.send(msg).map_err(|_| fail)?;
                        let recv_seg = (rank + p - k - 1) % p;
                        let (r0, r1) = bounds[recv_seg];
                        let incoming = open(rx.recv().map_err(|_| fail)?, rank)?;
                        for (dst, src) in buf[r0..r1].iter_mut().zip(incoming.iter()) {
                            *dst += src;
                        }
                    }
                    // Rank now owns the fully-reduced segment (rank + 1) % p.
                    // Scale it to a mean before circulating.
                    {
                        let own = (rank + 1) % p;
                        let (s0, s1) = bounds[own];
                        for v in &mut buf[s0..s1] {
                            *v *= inv_p;
                        }
                    }
                    // Phase 2: all-gather of the reduced segments.
                    for k in 0..p - 1 {
                        let send_seg = (rank + 1 + p - k) % p;
                        let (s0, s1) = bounds[send_seg];
                        let (msg, applied) = seal(buf[s0..s1].to_vec(), corrupt_pending);
                        corrupt_pending &= !applied;
                        tx.send(msg).map_err(|_| fail)?;
                        let recv_seg = (rank + p - k) % p;
                        let (r0, r1) = bounds[recv_seg];
                        let incoming = open(rx.recv().map_err(|_| fail)?, rank)?;
                        buf[r0..r1].copy_from_slice(&incoming);
                    }
                    Ok(buf)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    merge_errors(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_mean(inputs: &[Vec<f32>]) -> Vec<f32> {
        let p = inputs.len() as f32;
        let n = inputs[0].len();
        (0..n)
            .map(|i| inputs.iter().map(|b| b[i]).sum::<f32>() / p)
            .collect()
    }

    #[test]
    fn allreduce_two_workers() {
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let expect = expect_mean(&inputs);
        let out = ring_allreduce_mean(inputs);
        for o in &out {
            for (a, b) in o.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", o, expect);
            }
        }
    }

    #[test]
    fn allreduce_matches_mean_for_many_workers() {
        for p in [2usize, 3, 4, 7, 8] {
            let inputs: Vec<Vec<f32>> = (0..p)
                .map(|r| (0..103).map(|i| ((r * 131 + i * 7) % 23) as f32 - 11.0).collect())
                .collect();
            let expect = expect_mean(&inputs);
            let out = ring_allreduce_mean(inputs);
            assert_eq!(out.len(), p);
            for o in &out {
                for (a, b) in o.iter().zip(expect.iter()) {
                    assert!((a - b).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn allreduce_single_worker_is_identity() {
        let out = ring_allreduce_mean(vec![vec![1.0, 2.0]]);
        assert_eq!(out, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn allreduce_short_buffer_edge_case() {
        // Fewer elements than workers: some segments are empty.
        let inputs = vec![vec![4.0], vec![8.0], vec![0.0]];
        let out = ring_allreduce_mean(inputs);
        for o in &out {
            assert!((o[0] - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn corrupted_message_is_detected_and_aborts() {
        for p in [2usize, 3, 5] {
            for bad_rank in 0..p {
                let inputs: Vec<Vec<f32>> =
                    (0..p).map(|r| (0..17).map(|i| (r * 31 + i) as f32).collect()).collect();
                let err = ring_allreduce_mean_checked(inputs, &[bad_rank])
                    .expect_err("corruption must be detected");
                assert!(
                    matches!(err, AllReduceError::Corrupted { .. }),
                    "p={} bad_rank={} got {:?}",
                    p,
                    bad_rank,
                    err
                );
            }
        }
    }

    #[test]
    fn checked_allreduce_without_faults_matches_mean() {
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let expect = expect_mean(&inputs);
        let out = ring_allreduce_mean_checked(inputs, &[]).expect("no faults injected");
        for o in &out {
            for (a, b) in o.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn seal_and_open_round_trip_and_detect_flip() {
        let (msg, applied) = seal(vec![1.5, -2.0], false);
        assert!(!applied);
        assert_eq!(open(msg, 0).unwrap(), vec![1.5, -2.0]);

        let (bad, applied) = seal(vec![1.5, -2.0], true);
        assert!(applied);
        assert_eq!(open(bad, 3), Err(AllReduceError::Corrupted { detected_by: 3 }));

        // Empty payloads cannot carry the injected flip.
        let (empty, applied) = seal(Vec::new(), true);
        assert!(!applied);
        assert_eq!(open(empty, 0).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn cost_model_monotonic_in_bytes_and_capped_factor() {
        let f = Fabric::frontier();
        let t1 = ring_allreduce_seconds(1e6, 8, &f);
        let t2 = ring_allreduce_seconds(2e6, 8, &f);
        assert!(t2 > t1);
        // The (P-1)/P factor approaches 1: doubling GPUs at fixed bytes
        // less-than-doubles the bandwidth term.
        let t8 = ring_allreduce_seconds(1e9, 8, &f);
        let t1024 = ring_allreduce_seconds(1e9, 1024, &f);
        assert!(t1024 < t8 * 2.0);
        assert_eq!(ring_allreduce_seconds(1e9, 1, &f), 0.0);
    }
}
