//! Ring all-reduce: an analytic cost model and a real multi-threaded
//! implementation over crossbeam channels.
//!
//! The thread version implements the classic two-phase ring algorithm
//! (reduce-scatter then all-gather, each `P - 1` steps over `1/P`-sized
//! segments); it is what the data-parallel engine uses to average
//! gradients, so gradient synchronization in this workspace is genuinely
//! implemented rather than assumed.

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::gpu::Fabric;

/// Predicted seconds for a ring all-reduce of `bytes` over `gpus` devices.
///
/// Standard model: `2 * (P-1)/P * bytes` cross the bottleneck link, plus
/// `2 * (P-1)` hop latencies.
pub fn ring_allreduce_seconds(bytes: f64, gpus: usize, fabric: &Fabric) -> f64 {
    if gpus <= 1 {
        return 0.0;
    }
    let p = gpus as f64;
    let bw = fabric.ring_bandwidth(gpus);
    let lat = fabric.ring_latency(gpus);
    2.0 * (p - 1.0) / p * bytes / bw + 2.0 * (p - 1.0) * lat
}

/// Real ring all-reduce across threads: every worker contributes one buffer
/// and receives the elementwise **mean** of all buffers.
///
/// Buffers must share one length. Workers are OS threads connected in a
/// ring of bounded channels; each runs reduce-scatter then all-gather on
/// `P` segments.
pub fn ring_allreduce_mean(mut buffers: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let p = buffers.len();
    assert!(p > 0, "no buffers");
    let n = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == n),
        "all buffers must have equal length"
    );
    if p == 1 {
        return buffers;
    }
    if n == 0 {
        return buffers;
    }

    // Segment boundaries: P segments covering 0..n.
    let bounds: Vec<(usize, usize)> = (0..p)
        .map(|s| (s * n / p, (s + 1) * n / p))
        .collect();

    // Ring channels: worker i sends to (i + 1) % p.
    let mut senders: Vec<Option<Sender<Vec<f32>>>> = Vec::with_capacity(p);
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = (0..p).map(|_| None).collect();
    for i in 0..p {
        let (tx, rx) = bounded::<Vec<f32>>(2);
        senders.push(Some(tx));
        receivers[(i + 1) % p] = Some(rx);
    }

    let inv_p = 1.0f32 / p as f32;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buffers
            .drain(..)
            .enumerate()
            .map(|(rank, mut buf)| {
                let tx = senders[rank].take().expect("sender");
                let rx = receivers[rank].take().expect("receiver");
                let bounds = bounds.clone();
                scope.spawn(move || {
                    // Phase 1: reduce-scatter. After step k, the segment
                    // `(rank - k) mod p` we just received holds partial sums.
                    for k in 0..p - 1 {
                        let send_seg = (rank + p - k) % p;
                        let (s0, s1) = bounds[send_seg];
                        tx.send(buf[s0..s1].to_vec()).expect("ring send");
                        let recv_seg = (rank + p - k - 1) % p;
                        let (r0, r1) = bounds[recv_seg];
                        let incoming = rx.recv().expect("ring recv");
                        for (dst, src) in buf[r0..r1].iter_mut().zip(incoming.iter()) {
                            *dst += src;
                        }
                    }
                    // Rank now owns the fully-reduced segment (rank + 1) % p.
                    // Scale it to a mean before circulating.
                    {
                        let own = (rank + 1) % p;
                        let (s0, s1) = bounds[own];
                        for v in &mut buf[s0..s1] {
                            *v *= inv_p;
                        }
                    }
                    // Phase 2: all-gather of the reduced segments.
                    for k in 0..p - 1 {
                        let send_seg = (rank + 1 + p - k) % p;
                        let (s0, s1) = bounds[send_seg];
                        tx.send(buf[s0..s1].to_vec()).expect("ring send");
                        let recv_seg = (rank + p - k) % p;
                        let (r0, r1) = bounds[recv_seg];
                        let incoming = rx.recv().expect("ring recv");
                        buf[r0..r1].copy_from_slice(&incoming);
                    }
                    buf
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_mean(inputs: &[Vec<f32>]) -> Vec<f32> {
        let p = inputs.len() as f32;
        let n = inputs[0].len();
        (0..n)
            .map(|i| inputs.iter().map(|b| b[i]).sum::<f32>() / p)
            .collect()
    }

    #[test]
    fn allreduce_two_workers() {
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let expect = expect_mean(&inputs);
        let out = ring_allreduce_mean(inputs);
        for o in &out {
            for (a, b) in o.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", o, expect);
            }
        }
    }

    #[test]
    fn allreduce_matches_mean_for_many_workers() {
        for p in [2usize, 3, 4, 7, 8] {
            let inputs: Vec<Vec<f32>> = (0..p)
                .map(|r| (0..103).map(|i| ((r * 131 + i * 7) % 23) as f32 - 11.0).collect())
                .collect();
            let expect = expect_mean(&inputs);
            let out = ring_allreduce_mean(inputs);
            assert_eq!(out.len(), p);
            for o in &out {
                for (a, b) in o.iter().zip(expect.iter()) {
                    assert!((a - b).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn allreduce_single_worker_is_identity() {
        let out = ring_allreduce_mean(vec![vec![1.0, 2.0]]);
        assert_eq!(out, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn allreduce_short_buffer_edge_case() {
        // Fewer elements than workers: some segments are empty.
        let inputs = vec![vec![4.0], vec![8.0], vec![0.0]];
        let out = ring_allreduce_mean(inputs);
        for o in &out {
            assert!((o[0] - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_model_monotonic_in_bytes_and_capped_factor() {
        let f = Fabric::frontier();
        let t1 = ring_allreduce_seconds(1e6, 8, &f);
        let t2 = ring_allreduce_seconds(2e6, 8, &f);
        assert!(t2 > t1);
        // The (P-1)/P factor approaches 1: doubling GPUs at fixed bytes
        // less-than-doubles the bandwidth term.
        let t8 = ring_allreduce_seconds(1e9, 8, &f);
        let t1024 = ring_allreduce_seconds(1e9, 1024, &f);
        assert!(t1024 < t8 * 2.0);
        assert_eq!(ring_allreduce_seconds(1e9, 1, &f), 0.0);
    }
}
