//! Device and fabric models of a Frontier-like system.
//!
//! Numbers follow the paper's §IV-A description of Frontier nodes: four
//! AMD Instinct MI250X per node (128 GB HBM each), 50 GB/s Infinity-Fabric
//! GPU-GPU links inside a node, Slingshot-11 at 100 GB/s between nodes.

use serde::Serialize;

/// A GPU's sustained-performance model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GpuSpec {
    /// Marketing name (for reports).
    pub name: &'static str,
    /// Peak dense f32 throughput, FLOP/s.
    pub peak_flops: f64,
    /// HBM capacity in bytes.
    pub mem_bytes: f64,
    /// HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fraction of peak achieved by real training kernels (calibrated).
    pub efficiency: f64,
}

impl GpuSpec {
    /// An MI250X-like device (one dual-GCD module).
    pub fn mi250x() -> Self {
        GpuSpec {
            name: "MI250X",
            peak_flops: 47.9e12, // fp32 vector peak of the module
            mem_bytes: 128e9,
            mem_bw: 3.2e12,
            efficiency: 0.33,
        }
    }

    /// Sustained FLOP/s after the efficiency factor.
    pub fn sustained_flops(&self) -> f64 {
        self.peak_flops * self.efficiency
    }
}

/// Two-level interconnect: fast intra-node links, slower inter-node fabric.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fabric {
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Intra-node per-link bandwidth, bytes/s.
    pub intra_bw: f64,
    /// Inter-node per-node injection bandwidth, bytes/s.
    pub inter_bw: f64,
    /// Per-message latency within a node, seconds.
    pub intra_latency: f64,
    /// Per-message latency across nodes, seconds.
    pub inter_latency: f64,
}

impl Fabric {
    /// Frontier-like: 4 MI250X/node, Infinity Fabric 50 GB/s, Slingshot-11
    /// 100 GB/s.
    pub fn frontier() -> Self {
        Fabric {
            gpus_per_node: 4,
            intra_bw: 50e9,
            inter_bw: 100e9,
            intra_latency: 2e-6,
            inter_latency: 10e-6,
        }
    }

    /// Bottleneck per-hop bandwidth for a ring spanning `gpus` devices.
    pub fn ring_bandwidth(&self, gpus: usize) -> f64 {
        if gpus <= self.gpus_per_node {
            self.intra_bw
        } else {
            // A ring over many nodes is limited by the inter-node hop; the
            // per-node injection bandwidth is shared by the node's GPUs.
            self.inter_bw / self.gpus_per_node as f64
        }
    }

    /// Per-hop latency for a ring spanning `gpus` devices.
    pub fn ring_latency(&self, gpus: usize) -> f64 {
        if gpus <= self.gpus_per_node {
            self.intra_latency
        } else {
            self.inter_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi250x_sustained_below_peak() {
        let g = GpuSpec::mi250x();
        assert!(g.sustained_flops() < g.peak_flops);
        assert!(g.sustained_flops() > 0.2 * g.peak_flops);
    }

    #[test]
    fn ring_bandwidth_drops_across_nodes() {
        let f = Fabric::frontier();
        assert_eq!(f.ring_bandwidth(4), 50e9);
        assert!(f.ring_bandwidth(8) < f.ring_bandwidth(4));
        assert!(f.ring_latency(8) > f.ring_latency(4));
    }
}
