//! Cluster-level performance prediction: sec/image for data-parallel
//! training on a Frontier-like system.
//!
//! The model composes [`crate::cost::step_cost`] (per-image FLOPs from the
//! sequence length) with the device model and the ring all-reduce cost. A
//! single calibration constant aligns the absolute scale with the paper's
//! measured 512² baseline row; every other prediction then follows from the
//! model with no further fitting, so *shapes* (who wins, how speedups move
//! with resolution) are genuine predictions.

use serde::Serialize;

use crate::allreduce::ring_allreduce_seconds;
use crate::cost::{step_cost, ModelDims};
use crate::gpu::{Fabric, GpuSpec};

/// A modeled data-parallel training deployment.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Device model.
    pub gpu: GpuSpec,
    /// Interconnect model.
    pub fabric: Fabric,
    /// Per-GPU images per step (micro-batch).
    pub per_gpu_batch: usize,
}

/// Prediction breakdown for one configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Prediction {
    /// Seconds of compute per image on one GPU.
    pub compute_s: f64,
    /// All-reduce seconds per step (amortized over the global batch in
    /// `sec_per_image`).
    pub comm_s: f64,
    /// End-to-end seconds per image at the global scale.
    pub sec_per_image: f64,
    /// Whether the attention activations fit in one GPU's memory.
    pub fits_memory: bool,
}

impl ClusterModel {
    /// A Frontier-like deployment with per-GPU batch 1 (long sequences).
    pub fn frontier() -> Self {
        ClusterModel {
            gpu: GpuSpec::mi250x(),
            fabric: Fabric::frontier(),
            per_gpu_batch: 1,
        }
    }

    /// Predicts training throughput for a model processing sequences of
    /// length `n` on `gpus` devices.
    ///
    /// `calibration` multiplies the compute time; calibrate once against a
    /// measured row (see [`calibrate`]).
    pub fn predict(&self, dims: &ModelDims, n: usize, gpus: usize, calibration: f64) -> Prediction {
        let cost = step_cost(dims, n);
        let compute_s = cost.total_flops() / self.gpu.sustained_flops() * calibration;
        let comm_s = ring_allreduce_seconds(dims.param_bytes(), gpus, &self.fabric);
        // Data parallel: each step processes gpus * per_gpu_batch images;
        // compute is per image, comm amortizes over the per-GPU batch.
        let sec_per_image = compute_s + comm_s / self.per_gpu_batch as f64;
        let fits_memory = cost.attn_bytes * self.per_gpu_batch as f64 * 2.0 < self.gpu.mem_bytes;
        Prediction {
            compute_s,
            comm_s,
            sec_per_image,
            fits_memory,
        }
    }
}

/// Solves for the calibration constant that makes `predict` reproduce a
/// measured `sec_per_image` at a reference configuration.
pub fn calibrate(
    cluster: &ClusterModel,
    dims: &ModelDims,
    n: usize,
    gpus: usize,
    measured_sec_per_image: f64,
) -> f64 {
    let raw = cluster.predict(dims, n, gpus, 1.0);
    let comm = raw.comm_s / cluster.per_gpu_batch as f64;
    let target_compute = (measured_sec_per_image - comm).max(1e-9);
    target_compute / raw.compute_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_reference_row() {
        // Paper Table II: UNETR-4 on 512^2 (N = 16384) on 1 GPU measured
        // 0.4863 s/image.
        let cluster = ClusterModel::frontier();
        let dims = ModelDims::vit_base(4);
        let c = calibrate(&cluster, &dims, 16384, 1, 0.4863);
        let p = cluster.predict(&dims, 16384, 1, c);
        assert!((p.sec_per_image - 0.4863).abs() / 0.4863 < 0.01, "{}", p.sec_per_image);
    }

    #[test]
    fn shorter_sequences_are_faster() {
        let cluster = ClusterModel::frontier();
        let dims = ModelDims::vit_base(4);
        let long = cluster.predict(&dims, 16384, 1, 1.0);
        let short = cluster.predict(&dims, 1024, 1, 1.0);
        assert!(short.sec_per_image < long.sec_per_image / 5.0);
    }

    #[test]
    fn communication_grows_then_saturates_with_gpus() {
        let cluster = ClusterModel::frontier();
        let dims = ModelDims::vit_base(4);
        let p4 = cluster.predict(&dims, 1024, 4, 1.0);
        let p64 = cluster.predict(&dims, 1024, 64, 1.0);
        let p2048 = cluster.predict(&dims, 1024, 2048, 1.0);
        assert!(p64.comm_s > p4.comm_s);
        // (P-1)/P saturation: 2048 vs 64 GPUs differ by < 35% in bandwidth
        // terms (latency term still grows).
        assert!(p2048.comm_s < p64.comm_s * 3.0);
    }

    #[test]
    fn long_sequences_blow_memory() {
        let cluster = ClusterModel::frontier();
        let dims = ModelDims::vit_base(4);
        // 16K tokens: 12 layers x (16384^2 x 4B) = ~12.9 GB -> fits 128 GB.
        assert!(cluster.predict(&dims, 16384, 1, 1.0).fits_memory);
        // 262144 tokens (512^2 image at patch 1): attention matrices alone
        // are ~3.3 PB -> cannot fit.
        assert!(!cluster.predict(&dims, 262_144, 1, 1.0).fits_memory);
    }
}
