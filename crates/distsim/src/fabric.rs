//! A generic work-stealing worker fabric.
//!
//! PR 1's [`crate::engine`] fixed the unit of distribution at "one training
//! step"; this module generalizes the same ideas — seeded fault plans,
//! permanent worker death with work re-sharding, deterministic replay — to
//! an arbitrary indexed work list, so other subsystems (notably the
//! gigapixel stitcher's sliding-window schedule) can ride the same fabric.
//!
//! Three layers:
//!
//! - [`FabricFaultPlan`] — per-`(worker, nth-item)` injected panics and
//!   stragglers, mirroring `apf-serve`'s `ServeFaultPlan` keying (the
//!   engine's [`crate::FaultPlan`] is step-keyed and does not fit a pool
//!   where workers process different numbers of items).
//! - [`StealScheduler`] — the shared queue discipline: each worker owns a
//!   deque seeded with a contiguous block of item indices, pops its own
//!   front, and when empty steals from the back of the longest surviving
//!   victim. A dead worker's queued and in-flight items are re-queued to
//!   survivors; when every worker is dead with work outstanding the pool
//!   reports failure instead of hanging.
//! - [`simulate_makespan`] — a deterministic virtual-time replay of the
//!   same stealing discipline over measured per-item costs, used by the
//!   benches to extrapolate throughput scaling beyond the physical core
//!   count of the host (the idiom of `bench/src/bin/scaling.rs`).
//!
//! [`run_ordered`] bundles the layers into a convenience pool that runs a
//! closure over every item with unwind containment and returns results in
//! item order.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use apf_telemetry::{Telemetry, TraceContext};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Thread-name prefix of fabric workers; used by the quiet panic hook.
pub const FABRIC_THREAD_PREFIX: &str = "apf-fabric-worker";

/// One kind of injected fabric failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFaultKind {
    /// The worker thread panics mid-item. The pool contains the unwind,
    /// marks the worker permanently dead, and re-queues the item.
    Panic,
    /// The worker stalls for `delay_ms` before processing the item. No
    /// correctness impact; exercises stall-tolerant completion paths.
    Straggler {
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
}

/// A fault scheduled for the `nth` item a given worker picks up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricFaultEvent {
    /// Worker index the fault targets.
    pub worker: usize,
    /// 0-based count of items this worker has started when the fault fires.
    pub nth: u64,
    /// What happens.
    pub kind: FabricFaultKind,
}

/// Probabilities for [`FabricFaultPlan::random`], per worker-item.
#[derive(Debug, Clone, Copy)]
pub struct FabricFaultRates {
    /// Probability a worker panics on a given item.
    pub panic: f64,
    /// Probability a worker straggles on a given item.
    pub straggler: f64,
    /// Straggler delay range in milliseconds.
    pub straggler_ms: (u64, u64),
}

impl Default for FabricFaultRates {
    fn default() -> Self {
        FabricFaultRates { panic: 0.01, straggler: 0.05, straggler_ms: (1, 10) }
    }
}

/// A deterministic `(worker, nth)`-keyed schedule of fabric faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricFaultPlan {
    events: Vec<FabricFaultEvent>,
}

impl FabricFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FabricFaultPlan::default()
    }

    /// Builds a plan from explicit events (sorted for binary lookup).
    pub fn new(mut events: Vec<FabricFaultEvent>) -> Self {
        events.sort_by_key(|e| (e.worker, e.nth));
        events.dedup_by_key(|e| (e.worker, e.nth));
        FabricFaultPlan { events }
    }

    /// Seeded random plan over `per_worker` items on each of `workers`
    /// workers. At most `workers - 1` panics are scheduled so the pool
    /// never empties. Same inputs, same plan.
    pub fn random(seed: u64, per_worker: u64, workers: usize, rates: FabricFaultRates) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut panics = 0usize;
        for worker in 0..workers {
            for nth in 0..per_worker {
                if panics + 1 < workers && rng.gen_bool(rates.panic) {
                    events.push(FabricFaultEvent { worker, nth, kind: FabricFaultKind::Panic });
                    panics += 1;
                    // A dead worker picks up nothing further.
                    break;
                }
                if rng.gen_bool(rates.straggler) {
                    let delay_ms = rng.gen_range(rates.straggler_ms.0..=rates.straggler_ms.1);
                    events.push(FabricFaultEvent {
                        worker,
                        nth,
                        kind: FabricFaultKind::Straggler { delay_ms },
                    });
                }
            }
        }
        FabricFaultPlan::new(events)
    }

    /// Adds a burst of identical faults on one worker's items
    /// `[start, start + len)`.
    pub fn with_burst(mut self, worker: usize, start: u64, len: u64, kind: FabricFaultKind) -> Self {
        for nth in start..start + len {
            self.events.push(FabricFaultEvent { worker, nth, kind });
        }
        FabricFaultPlan::new(self.events)
    }

    /// The fault (if any) for the `nth` item `worker` starts.
    pub fn fault_for(&self, worker: usize, nth: u64) -> Option<FabricFaultKind> {
        self.events
            .binary_search_by_key(&(worker, nth), |e| (e.worker, e.nth))
            .ok()
            .map(|i| self.events[i].kind)
    }

    /// All scheduled events, sorted by `(worker, nth)`.
    pub fn events(&self) -> &[FabricFaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// What [`StealScheduler::next`] hands a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Process this item index.
    Item(usize),
    /// Nothing available right now, but items are still in flight on
    /// other workers (and may be re-queued if an owner dies) — back off
    /// and ask again.
    Wait,
    /// All items are complete, or this worker is dead: exit.
    Done,
}

struct SchedState {
    deques: Vec<VecDeque<usize>>,
    in_flight: Vec<Option<usize>>,
    alive: Vec<bool>,
    /// Items not yet completed (queued + in flight).
    remaining: usize,
    steals: u64,
    deaths: u64,
}

/// Shared work-stealing queue over item indices `0..items`.
///
/// Item indices are dealt to workers in contiguous blocks (locality: for
/// the stitcher, adjacent windows share slide tile rows). All decisions on
/// which item runs where are made under one mutex; the merge order of
/// results is the consumer's concern, so the scheduler itself never
/// constrains completion order.
pub struct StealScheduler {
    state: Mutex<SchedState>,
    abort: AtomicBool,
}

impl StealScheduler {
    /// Deals `items` indices to `workers` deques in contiguous blocks.
    pub fn new(items: usize, workers: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        let base = items / workers;
        let extra = items % workers;
        let mut next = 0usize;
        for (w, dq) in deques.iter_mut().enumerate() {
            let take = base + usize::from(w < extra);
            dq.extend(next..next + take);
            next += take;
        }
        StealScheduler {
            state: Mutex::new(SchedState {
                deques,
                in_flight: vec![None; workers],
                alive: vec![true; workers],
                remaining: items,
                steals: 0,
                deaths: 0,
            }),
            abort: AtomicBool::new(false),
        }
    }

    /// Next item for `worker`: own front, else the back of the longest
    /// surviving victim's deque (a steal), else wait/done.
    pub fn next(&self, worker: usize) -> Next {
        if self.aborted() {
            return Next::Done;
        }
        let mut s = self.state.lock().unwrap();
        if !s.alive[worker] {
            return Next::Done;
        }
        if let Some(i) = s.deques[worker].pop_front() {
            s.in_flight[worker] = Some(i);
            return Next::Item(i);
        }
        let victim = (0..s.deques.len())
            .filter(|&v| v != worker && s.alive[v] && !s.deques[v].is_empty())
            .max_by_key(|&v| s.deques[v].len());
        if let Some(v) = victim {
            let i = s.deques[v].pop_back().expect("victim checked non-empty");
            s.steals += 1;
            s.in_flight[worker] = Some(i);
            return Next::Item(i);
        }
        if s.remaining > 0 {
            Next::Wait
        } else {
            Next::Done
        }
    }

    /// Marks `worker`'s current item complete.
    pub fn complete(&self, worker: usize) {
        let mut s = self.state.lock().unwrap();
        if s.in_flight[worker].take().is_some() {
            s.remaining -= 1;
        }
    }

    /// Marks `worker` permanently dead; its in-flight item and queued
    /// backlog are re-queued to the least-loaded survivor. Returns `false`
    /// when no survivors remain but work is still outstanding — the
    /// caller must surface a typed error rather than hang.
    pub fn worker_died(&self, worker: usize) -> bool {
        let mut s = self.state.lock().unwrap();
        if !s.alive[worker] {
            return s.remaining == 0 || s.alive.iter().any(|&a| a);
        }
        s.alive[worker] = false;
        s.deaths += 1;
        let mut orphans: Vec<usize> = s.in_flight[worker].take().into_iter().collect();
        orphans.extend(s.deques[worker].drain(..));
        let survivors: Vec<usize> = (0..s.alive.len()).filter(|&v| s.alive[v]).collect();
        if survivors.is_empty() {
            return s.remaining == 0;
        }
        for i in orphans {
            let target = *survivors
                .iter()
                .min_by_key(|&&v| s.deques[v].len())
                .expect("survivors non-empty");
            // Front of the queue: orphaned work is the oldest outstanding
            // and the merge frontier is usually waiting on it.
            s.deques[target].push_front(i);
        }
        true
    }

    /// Requests cooperative shutdown; workers observe it on their next
    /// [`StealScheduler::next`] call.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::SeqCst);
    }

    /// True once [`StealScheduler::abort`] has been called.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Cross-worker steals so far.
    pub fn steals(&self) -> u64 {
        self.state.lock().unwrap().steals
    }

    /// Workers marked dead so far.
    pub fn deaths(&self) -> u64 {
        self.state.lock().unwrap().deaths
    }

    /// True when every worker is dead with items still outstanding.
    pub fn exhausted(&self) -> bool {
        let s = self.state.lock().unwrap();
        s.remaining > 0 && s.alive.iter().all(|&a| !a)
    }

    /// Items not yet completed.
    pub fn remaining(&self) -> usize {
        self.state.lock().unwrap().remaining
    }
}

/// Outcome of a virtual-time schedule replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedSchedule {
    /// Virtual seconds until the last item completes.
    pub makespan: f64,
    /// Virtual busy seconds per worker.
    pub per_worker_busy: Vec<f64>,
    /// Items each worker processed.
    pub per_worker_items: Vec<u64>,
    /// Cross-worker steals the replay performed.
    pub steals: u64,
}

/// Replays the [`StealScheduler`] discipline in deterministic virtual
/// time over measured per-item costs: workers advance their own clocks,
/// the globally-earliest idle worker (ties to the lowest index) claims
/// the next item under the same own-front/steal-longest-back policy, and
/// the makespan is the latest worker clock. No threads, no wall clock —
/// the same costs and worker count always produce the same schedule,
/// which is what lets a single-core host project 4–8-worker throughput
/// from calibrated single-worker measurements.
pub fn simulate_makespan(costs: &[f64], workers: usize) -> SimulatedSchedule {
    assert!(workers > 0, "simulation needs at least one worker");
    let sched = StealScheduler::new(costs.len(), workers);
    let mut clock = vec![0.0f64; workers];
    let mut busy = vec![0.0f64; workers];
    let mut items = vec![0u64; workers];
    loop {
        // Earliest-idle worker claims next; lowest index breaks ties so
        // the replay is fully deterministic.
        let w = (0..workers)
            .min_by(|&a, &b| clock[a].total_cmp(&clock[b]).then(a.cmp(&b)))
            .expect("workers > 0");
        match sched.next(w) {
            Next::Item(i) => {
                clock[w] += costs[i];
                busy[w] += costs[i];
                items[w] += 1;
                sched.complete(w);
            }
            // Virtual workers never hold items in flight across turns, so
            // an empty scheduler means completion, not waiting.
            Next::Wait | Next::Done => break,
        }
    }
    SimulatedSchedule {
        makespan: clock.iter().cloned().fold(0.0, f64::max),
        per_worker_busy: busy,
        per_worker_items: items,
        steals: sched.steals(),
    }
}

/// Why [`run_ordered`] failed.
#[derive(Debug)]
pub enum FabricError {
    /// Every worker died (injected or organic panics) with items left.
    AllWorkersDead {
        /// Items that completed before the pool emptied.
        completed: usize,
        /// Total items requested.
        total: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::AllWorkersDead { completed, total } => write!(
                f,
                "all fabric workers died with {}/{} items complete",
                completed, total
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// Per-run statistics from [`run_ordered`].
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Cross-worker steals.
    pub steals: u64,
    /// Workers lost to (injected or organic) panics.
    pub worker_panics: u64,
    /// Items processed per worker (successful completions).
    pub per_worker_items: Vec<u64>,
    /// Wall seconds per item, indexed by item.
    pub item_seconds: Vec<f64>,
}

/// Keeps injected fabric-worker panics from spraying default panic-hook
/// backtraces over test and bench output. Chains to the previous hook for
/// every other thread; installed at most once per process.
pub fn install_quiet_fabric_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(FABRIC_THREAD_PREFIX));
            if !quiet {
                prev(info);
            }
        }));
    });
}

/// Runs `job` over every item on a work-stealing pool of `workers`
/// threads, containing panics (a panicking worker dies permanently and
/// its items move to survivors), and returns results in item order.
///
/// `job(worker, index, &item)` may panic; [`FabricFaultPlan`] faults are
/// applied per `(worker, nth-started-item)` before the closure runs.
pub fn run_ordered<T, R, F>(
    items: &[T],
    workers: usize,
    faults: &FabricFaultPlan,
    tel: &Telemetry,
    job: F,
) -> Result<(Vec<R>, FabricStats), FabricError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    assert!(workers > 0, "fabric needs at least one worker");
    install_quiet_fabric_panics();
    let _span = tel.span("distsim.fabric");
    let items_total = tel.counter("apf_distsim_fabric_items_total", "Items completed by the fabric");
    let steals_total =
        tel.counter("apf_distsim_fabric_steals_total", "Items stolen across fabric workers");
    let deaths_total =
        tel.counter("apf_distsim_fabric_deaths_total", "Fabric workers lost to panics");
    let item_s =
        tel.histogram("apf_distsim_fabric_item_seconds", "Per-item fabric processing time");

    let sched = StealScheduler::new(items.len(), workers);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let durations: Mutex<Vec<f64>> = Mutex::new(vec![0.0; items.len()]);
    let per_worker: Mutex<Vec<u64>> = Mutex::new(vec![0; workers]);

    // OS threads do not inherit the caller's trace context; hand it across
    // the spawn explicitly so worker spans parent under the fabric span.
    let ctx = TraceContext::current();
    // Mirror of `StealScheduler::new`'s contiguous deal: items executed by
    // a worker other than their dealt owner (steals, or re-queues after a
    // death) carry a "steal" note on their span.
    let base = items.len() / workers;
    let extra = items.len() % workers;
    let dealt_owner = move |i: usize| -> usize {
        let cut = extra * (base + 1);
        if i < cut {
            i / (base + 1)
        } else {
            extra + (i - cut) / base.max(1)
        }
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let sched = &sched;
            let results = &results;
            let durations = &durations;
            let per_worker = &per_worker;
            let job = &job;
            let item_s = &item_s;
            std::thread::Builder::new()
                .name(format!("{}-{}", FABRIC_THREAD_PREFIX, w))
                .spawn_scoped(scope, move || {
                    let _ctx_guard = ctx.map(TraceContext::install);
                    let mut nth = 0u64;
                    loop {
                        match sched.next(w) {
                            Next::Done => break,
                            Next::Wait => {
                                std::thread::sleep(Duration::from_millis(1));
                                continue;
                            }
                            Next::Item(i) => {
                                let fault = faults.fault_for(w, nth);
                                nth += 1;
                                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                                    // Opened inside the unwind boundary: a
                                    // panicking item still flushes its span,
                                    // marked truncated by the guard.
                                    let _item_span = if dealt_owner(i) == w {
                                        tel.span_id("distsim.fabric.item", i as u64)
                                    } else {
                                        tel.span_noted("distsim.fabric.item", i as u64, "steal")
                                    };
                                    if let Some(FabricFaultKind::Straggler { delay_ms }) = fault {
                                        std::thread::sleep(Duration::from_millis(delay_ms));
                                    }
                                    if let Some(FabricFaultKind::Panic) = fault {
                                        panic!("injected fabric fault: worker {} item {}", w, i);
                                    }
                                    let t0 = Instant::now();
                                    let r = job(w, i, &items[i]);
                                    (r, t0.elapsed().as_secs_f64())
                                }));
                                match outcome {
                                    Ok((r, secs)) => {
                                        results.lock().unwrap()[i] = Some(r);
                                        durations.lock().unwrap()[i] = secs;
                                        per_worker.lock().unwrap()[w] += 1;
                                        item_s.record(secs);
                                        sched.complete(w);
                                    }
                                    Err(_) => {
                                        tel.flight("fabric_worker_death", || {
                                            format!("worker={w} item={i}")
                                        });
                                        sched.worker_died(w);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                })
                .expect("spawn fabric worker");
        }
    });

    let stats = FabricStats {
        steals: sched.steals(),
        worker_panics: sched.deaths(),
        per_worker_items: per_worker.into_inner().unwrap(),
        item_seconds: durations.into_inner().unwrap(),
    };
    steals_total.add(stats.steals);
    deaths_total.add(stats.worker_panics);

    if sched.remaining() > 0 {
        return Err(FabricError::AllWorkersDead {
            completed: items.len() - sched.remaining(),
            total: items.len(),
        });
    }
    let out: Vec<R> = results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("all items completed"))
        .collect();
    items_total.add(out.len() as u64);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic_and_lookup_works() {
        let a = FabricFaultPlan::random(7, 40, 4, FabricFaultRates::default());
        let b = FabricFaultPlan::random(7, 40, 4, FabricFaultRates::default());
        assert_eq!(a, b);
        let plan = FabricFaultPlan::none().with_burst(1, 3, 2, FabricFaultKind::Panic);
        assert_eq!(plan.fault_for(1, 3), Some(FabricFaultKind::Panic));
        assert_eq!(plan.fault_for(1, 4), Some(FabricFaultKind::Panic));
        assert_eq!(plan.fault_for(1, 5), None);
        assert_eq!(plan.fault_for(0, 3), None);
    }

    #[test]
    fn random_plan_never_panics_every_worker() {
        for seed in 0..20 {
            let heavy = FabricFaultRates { panic: 0.6, ..Default::default() };
            let plan = FabricFaultPlan::random(seed, 50, 3, heavy);
            let panics = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FabricFaultKind::Panic))
                .count();
            assert!(panics < 3, "seed {} would kill the whole pool", seed);
        }
    }

    #[test]
    fn scheduler_deals_blocks_and_steals_from_longest() {
        let sched = StealScheduler::new(6, 2);
        // Worker 1 drains its own block (items 3..6) then steals from 0.
        assert_eq!(sched.next(1), Next::Item(3));
        sched.complete(1);
        assert_eq!(sched.next(1), Next::Item(4));
        sched.complete(1);
        assert_eq!(sched.next(1), Next::Item(5));
        sched.complete(1);
        // Steal comes from the victim's back.
        assert_eq!(sched.next(1), Next::Item(2));
        sched.complete(1);
        assert_eq!(sched.steals(), 1);
        assert_eq!(sched.next(0), Next::Item(0));
        sched.complete(0);
        assert_eq!(sched.next(0), Next::Item(1));
        sched.complete(0);
        assert_eq!(sched.next(0), Next::Done);
        assert_eq!(sched.remaining(), 0);
    }

    #[test]
    fn dead_worker_requeues_backlog_and_in_flight() {
        let sched = StealScheduler::new(4, 2);
        let Next::Item(first) = sched.next(0) else { panic!("expected an item") };
        assert_eq!(first, 0);
        // Worker 0 dies holding item 0, with 1 still queued.
        assert!(sched.worker_died(0));
        let mut got = Vec::new();
        while let Next::Item(i) = sched.next(1) {
            got.push(i);
            sched.complete(1);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "orphans must reach the survivor");
        assert_eq!(sched.next(0), Next::Done, "dead workers stay dead");
        assert!(!sched.exhausted());
    }

    #[test]
    fn all_dead_is_reported_not_hung() {
        let sched = StealScheduler::new(3, 2);
        sched.next(0);
        assert!(sched.worker_died(0), "one survivor remains");
        sched.next(1);
        assert!(!sched.worker_died(1), "no survivors with work outstanding");
        assert!(sched.exhausted());
        assert_eq!(sched.next(0), Next::Done);
        assert_eq!(sched.next(1), Next::Done);
    }

    #[test]
    fn simulation_is_deterministic_and_scales() {
        let costs: Vec<f64> = (0..64).map(|i| 1.0 + 0.01 * (i % 7) as f64).collect();
        let serial: f64 = costs.iter().sum();
        let a = simulate_makespan(&costs, 4);
        let b = simulate_makespan(&costs, 4);
        assert_eq!(a, b, "virtual-time replay must be deterministic");
        assert!(a.makespan < serial / 3.0, "4 workers should beat 3x");
        let c = simulate_makespan(&costs, 8);
        assert!(c.makespan < serial / 5.0, "8 workers should beat 5x");
        assert!(
            (serial - a.per_worker_busy.iter().sum::<f64>()).abs() < 1e-9,
            "busy time must conserve total work"
        );
        let one = simulate_makespan(&costs, 1);
        assert!((one.makespan - serial).abs() < 1e-9);
    }

    #[test]
    fn run_ordered_preserves_item_order() {
        let tel = Telemetry::disabled();
        let items: Vec<usize> = (0..40).collect();
        let (out, stats) =
            run_ordered(&items, 4, &FabricFaultPlan::none(), &tel, |_w, _i, &x| x * 2).unwrap();
        assert_eq!(out, (0..40).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.per_worker_items.iter().sum::<u64>(), 40);
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn panics_are_contained_and_orphaned_work_completes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let tel = Telemetry::enabled();
        let items: Vec<usize> = (0..24).collect();
        // The first worker to touch item 5 panics; the retry on a
        // survivor succeeds. Guarantees exactly one contained death
        // regardless of which worker the scheduler hands item 5 to.
        let tripped = AtomicBool::new(false);
        let (out, stats) = run_ordered(&items, 4, &FabricFaultPlan::none(), &tel, |_w, i, &x| {
            if i == 5 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("organic worker failure on item 5");
            }
            x + 1
        })
        .unwrap();
        assert_eq!(out, (1..=24).collect::<Vec<_>>());
        assert_eq!(stats.worker_panics, 1);
        let snap = tel.snapshot();
        let deaths = snap.get("apf_distsim_fabric_deaths_total", &[]).expect("metric registered");
        assert!(deaths.value >= 1.0);
    }

    #[test]
    fn worker_spans_join_the_callers_trace_and_panics_flush_truncated() {
        let tel = Telemetry::enabled();
        let ctx = tel.new_trace().expect("sampling defaults to on");
        let _guard = ctx.install();
        let items: Vec<usize> = (0..16).collect();
        let plan = FabricFaultPlan::none().with_burst(1, 0, 1, FabricFaultKind::Panic);
        // Items must outlast thread spawn, or the first worker drains the
        // whole list before worker 1 ever picks up its faulted item.
        let (_, stats) = run_ordered(&items, 3, &plan, &tel, |_w, _i, &x| {
            std::thread::sleep(Duration::from_millis(3));
            x
        })
        .unwrap();
        assert_eq!(stats.worker_panics, 1);

        let events = tel.trace_events();
        let item_spans: Vec<_> =
            events.iter().filter(|e| e.name == "distsim.fabric.item").collect();
        assert!(item_spans.len() > items.len(), "panicked item retries add a span");
        // Every worker span crossed the thread spawn with the caller's trace.
        assert!(item_spans.iter().all(|e| e.trace_id == ctx.trace_id));
        // The injected panic flushed a partial span marked truncated...
        let truncated: Vec<_> = item_spans.iter().filter(|e| e.truncated).collect();
        assert_eq!(truncated.len(), 1);
        // ...and its retry on a survivor is annotated as moved work.
        let id = truncated[0].id.expect("item spans carry the item index");
        assert!(item_spans
            .iter()
            .any(|e| e.id == Some(id) && !e.truncated && e.note == Some("steal")));
        // The death is on the flight recorder with the trace stamped.
        let deaths: Vec<_> =
            tel.flight_events().into_iter().filter(|f| f.kind == "fabric_worker_death").collect();
        assert_eq!(deaths.len(), 1);
        assert_eq!(deaths[0].trace_id, ctx.trace_id);
    }

    #[test]
    fn all_workers_dead_is_a_typed_error() {
        let tel = Telemetry::disabled();
        let items: Vec<usize> = (0..10).collect();
        let plan = FabricFaultPlan::none()
            .with_burst(0, 0, 1, FabricFaultKind::Panic)
            .with_burst(1, 0, 1, FabricFaultKind::Panic);
        let err = run_ordered(&items, 2, &plan, &tel, |_w, _i, &x| x).unwrap_err();
        match err {
            FabricError::AllWorkersDead { completed, total } => {
                assert_eq!(completed, 0);
                assert_eq!(total, 10);
            }
        }
    }

    #[test]
    fn stragglers_delay_but_do_not_break() {
        let tel = Telemetry::disabled();
        let items: Vec<usize> = (0..8).collect();
        let plan =
            FabricFaultPlan::none().with_burst(0, 0, 2, FabricFaultKind::Straggler { delay_ms: 5 });
        let (out, _) = run_ordered(&items, 2, &plan, &tel, |_w, _i, &x| x).unwrap();
        assert_eq!(out, items);
    }
}
