//! A real data-parallel training engine: one OS thread per simulated GPU,
//! genuine gradient averaging through the ring all-reduce.
//!
//! Each worker owns a full model replica (same seed => identical weights).
//! Every step, the global batch is sharded across workers; each computes
//! gradients on its shard; the flattened gradients are averaged with
//! [`crate::allreduce::ring_allreduce_mean_checked`]; a single AdamW step
//! is applied to the master parameters which are then broadcast back to the
//! replicas. This makes data-parallel training mathematically identical to
//! large-batch single-worker training — and the engine's tests verify
//! exactly that.
//!
//! ## Fault tolerance
//!
//! The engine consults a [`FaultPlan`] at the start of every step and
//! survives what it finds there:
//!
//! - **Worker crashes** remove the replica permanently; the collective is
//!   rebuilt over the survivors and the batch re-sharded (unevenly if
//!   needed — shard gradients and losses are weighted by `n_i/B` so the
//!   degraded step still optimizes the exact global-mean objective).
//! - **Wire corruption** is caught by the all-reduce checksums; the engine
//!   retries the collective with its retained gradient buffers.
//! - **Stragglers** delay their shard; the step completes correctly,
//!   just slower.
//! - **Non-finite losses or gradients** (injected or organic) skip the
//!   update, roll parameters and optimizer back to the last good step, and
//!   halve the learning rate, with a bounded retry budget.
//!
//! Every recovery action is appended to a [`RecoveryEvent`] trace so tests
//! can assert that identical plans produce identical recoveries.

use std::io;
use std::path::Path;

use apf_models::checkpoint::{self, CheckpointError};
use apf_models::params::{ParamId, ParamSet};
use apf_telemetry::{Counter, Gauge, Histogram, Telemetry};
use apf_tensor::tensor::Tensor;
use apf_train::data::TokenSegDataset;
use apf_train::loss::{combo_loss, ComboLossConfig};
use apf_train::optim::{AdamW, AdamWConfig};
use apf_train::trainer::TokenSegModel;

use crate::allreduce::{ring_allreduce_mean, ring_allreduce_mean_checked};
use crate::fault::{FaultKind, FaultPlan, RecoveryEvent};

/// Flattens ordered per-parameter gradients into one buffer (ring input).
fn flatten_grads(params: &ParamSet, grads: &[(ParamId, Tensor)]) -> Vec<f32> {
    // Missing grads become zeros so every worker contributes equal-length
    // buffers regardless of which parameters were touched.
    let mut dense: Vec<Option<&Tensor>> = vec![None; params.len()];
    for (id, g) in grads {
        dense[id.index()] = Some(g);
    }
    let mut out = Vec::with_capacity(params.num_scalars());
    for (id, _, t) in params.iter() {
        match dense[id.index()] {
            Some(g) => out.extend_from_slice(g.data()),
            None => out.extend(std::iter::repeat_n(0.0, t.numel())),
        }
    }
    out
}

/// Splits a flat buffer back into per-parameter tensors.
fn unflatten_grads(params: &ParamSet, flat: &[f32]) -> Vec<(ParamId, Tensor)> {
    let mut out = Vec::with_capacity(params.len());
    let mut off = 0;
    for (id, _, t) in params.iter() {
        let n = t.numel();
        out.push((id, Tensor::new(t.shape().clone(), flat[off..off + n].to_vec())));
        off += n;
    }
    out
}

/// Per-step telemetry from the engine.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Weighted mean loss over all shards (weights `n_i/B`).
    pub loss: f64,
    /// Wall-clock seconds of the compute phase (max over workers).
    pub compute_s: f64,
    /// Wall-clock seconds of the all-reduce + update phase.
    pub sync_s: f64,
    /// Workers that participated in this step.
    pub world_size: usize,
    /// True once any worker has been lost: the engine is running a
    /// degraded configuration relative to its launch world size.
    pub degraded: bool,
    /// All-reduce retries forced by checksum failures this step.
    pub comm_retries: u32,
    /// True when a non-finite loss/gradient was caught and the update was
    /// skipped (parameters rolled back, learning rate halved).
    pub rolled_back: bool,
}

/// Registry handles for the engine (`apf_distsim_*`). All handles are
/// inert when built from [`Telemetry::disabled`].
#[derive(Clone, Default)]
struct DistTel {
    tel: Telemetry,
    compute_s: Histogram,
    allreduce_s: Histogram,
    optimizer_s: Histogram,
    step_s: Histogram,
    steps_total: Counter,
    comm_bytes: Counter,
    comm_retries: Counter,
    rollbacks: Counter,
    workers_lost: Counter,
    world_size: Gauge,
}

impl DistTel {
    fn new(tel: Telemetry) -> Self {
        let phase = |p: &'static str| {
            tel.histogram_with(
                "apf_distsim_step_phase_seconds",
                vec![("phase", p.to_string())],
                "Wall-clock seconds per data-parallel step phase",
            )
        };
        DistTel {
            compute_s: phase("compute"),
            allreduce_s: phase("allreduce"),
            optimizer_s: phase("optimizer"),
            step_s: tel.histogram(
                "apf_distsim_step_seconds",
                "Wall-clock seconds per full data-parallel step",
            ),
            steps_total: tel.counter("apf_distsim_steps_total", "Completed engine steps"),
            comm_bytes: tel.counter(
                "apf_distsim_comm_bytes_total",
                "Bytes moved over the simulated ring (2(W-1)N x 4 per attempt)",
            ),
            comm_retries: tel.counter(
                "apf_distsim_comm_retries_total",
                "All-reduce retries forced by checksum failures",
            ),
            rollbacks: tel.counter(
                "apf_distsim_rollbacks_total",
                "Updates skipped by the non-finite guard (params restored, LR halved)",
            ),
            workers_lost: tel.counter(
                "apf_distsim_workers_lost_total",
                "Replicas permanently removed by injected crashes",
            ),
            world_size: tel.gauge("apf_distsim_world_size", "Live workers in the collective"),
            tel,
        }
    }
}

/// The data-parallel engine over `W` model replicas.
pub struct DataParallelEngine<M: TokenSegModel + Send> {
    replicas: Vec<M>,
    /// Original launch rank of each surviving replica (crash bookkeeping).
    orig_rank: Vec<usize>,
    initial_workers: usize,
    master: ParamSet,
    opt: AdamW,
    loss_cfg: ComboLossConfig,
    fault_plan: FaultPlan,
    step_idx: u64,
    trace: Vec<RecoveryEvent>,
    max_comm_retries: u32,
    max_rollbacks: u32,
    rollbacks: u32,
    tm: DistTel,
}

impl<M: TokenSegModel + Send> DataParallelEngine<M> {
    /// Builds the engine from a replica factory. The factory MUST be
    /// deterministic (same weights for every call), mirroring a broadcast
    /// of the initial model.
    pub fn new(factory: impl Fn() -> M, workers: usize, opt_cfg: AdamWConfig) -> Self {
        assert!(workers >= 1);
        let replicas: Vec<M> = (0..workers).map(|_| factory()).collect();
        let master = replicas[0].params().clone();
        for r in &replicas {
            assert_eq!(
                r.params().num_scalars(),
                master.num_scalars(),
                "factory produced differing replicas"
            );
        }
        let opt = AdamW::new(opt_cfg, master.len());
        DataParallelEngine {
            replicas,
            orig_rank: (0..workers).collect(),
            initial_workers: workers,
            master,
            opt,
            loss_cfg: ComboLossConfig::default(),
            fault_plan: FaultPlan::none(),
            step_idx: 0,
            trace: Vec::new(),
            max_comm_retries: 3,
            max_rollbacks: 8,
            rollbacks: 0,
            tm: DistTel::default(),
        }
    }

    /// Installs a fault schedule (see [`FaultPlan`]); builder style.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Records per-phase step timing, comms volume/retries, and recovery
    /// events into `tel` (`apf_distsim_*` metrics); builder style.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tm = DistTel::new(tel);
        self.tm.world_size.set(self.replicas.len() as f64);
        self
    }

    /// Number of currently-live simulated GPUs.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// True once any worker has crashed out of the collective.
    pub fn degraded(&self) -> bool {
        self.replicas.len() < self.initial_workers
    }

    /// Engine step counter (increments once per [`Self::step`]).
    pub fn step_index(&self) -> u64 {
        self.step_idx
    }

    /// Current learning-rate scale (halved on every NaN rollback).
    pub fn lr_scale(&self) -> f32 {
        self.opt.lr_scale()
    }

    /// Everything the fault-tolerance machinery observed and did so far.
    pub fn recovery_trace(&self) -> &[RecoveryEvent] {
        &self.trace
    }

    /// Overrides the loss configuration (default: the paper's 0.5 BCE +
    /// 0.5 dice). Note that the dice term is computed per shard, as in
    /// real distributed data parallel.
    pub fn set_loss(&mut self, cfg: ComboLossConfig) {
        self.loss_cfg = cfg;
    }

    /// Read access to the synchronized master parameters.
    pub fn master_params(&self) -> &ParamSet {
        &self.master
    }

    /// Writes a crash-safe v2 checkpoint: master parameters, full AdamW
    /// state, and the engine step counter, CRC-protected and atomically
    /// renamed into place.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut state = self.opt.export_state();
        state.counters.push(("engine.step".to_string(), self.step_idx));
        checkpoint::save_with_state(&self.master, &state, path)
    }

    /// Restores master parameters, optimizer state, and the step counter
    /// from a checkpoint written by [`Self::save_checkpoint`]. Replicas are
    /// refreshed from the master at the start of the next step, so training
    /// resumes bit-identically.
    pub fn resume_from(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let state = checkpoint::load_with_state(&mut self.master, path)?;
        self.opt.import_state(&state);
        self.step_idx = state.counter("engine.step").unwrap_or(0);
        Ok(())
    }

    /// Applies this step's scheduled faults. Returns, for each surviving
    /// worker position: (straggler delay ms, corrupt outgoing traffic,
    /// poison gradients with NaN).
    fn apply_faults(&mut self, step: u64) -> (Vec<u64>, Vec<usize>, Vec<usize>) {
        let events: Vec<_> = self.fault_plan.events_at(step).copied().collect();
        // Crashes first: the surviving positions shift, and the remaining
        // events target the post-crash topology.
        for e in &events {
            if let FaultKind::WorkerCrash { rank } = e.kind {
                let Some(pos) = self.orig_rank.iter().position(|&r| r == rank) else {
                    continue; // already dead
                };
                if self.replicas.len() == 1 {
                    continue; // never empty the collective
                }
                self.replicas.remove(pos);
                self.orig_rank.remove(pos);
                self.tm.workers_lost.inc();
                self.trace.push(RecoveryEvent::WorkerLost {
                    step,
                    rank,
                    world_after: self.replicas.len(),
                });
            }
        }
        let mut delays = vec![0u64; self.replicas.len()];
        let mut corrupt = Vec::new();
        let mut poison = Vec::new();
        for e in &events {
            let Some(pos) = self.orig_rank.iter().position(|&r| r == e.kind.rank()) else {
                continue; // targets a dead worker
            };
            match e.kind {
                FaultKind::WorkerCrash { .. } => {}
                FaultKind::GradCorruption { .. } => corrupt.push(pos),
                FaultKind::Straggler { rank, delay_ms } => {
                    delays[pos] = delay_ms;
                    self.trace.push(RecoveryEvent::StragglerObserved { step, rank, delay_ms });
                }
                FaultKind::NanGrad { .. } => poison.push(pos),
            }
        }
        (delays, corrupt, poison)
    }

    /// One data-parallel step over a global batch, sharded contiguously
    /// across the live workers. `tokens`/`masks` are `[B, L, D]`; `B` must
    /// be divisible by the worker count while the engine is at full
    /// strength. After a crash, uneven shards are allowed: gradients and
    /// losses are weighted by shard size so the degraded step still
    /// optimizes the global-mean objective exactly.
    pub fn step(&mut self, tokens: &Tensor, masks: &Tensor) -> StepReport {
        let step = self.step_idx;
        let _step_span = self.tm.tel.span_id("distsim.step", step);
        let _step_timer = self.tm.step_s.start_timer();
        let (delays, corrupt, poison) = self.apply_faults(step);

        let w = self.replicas.len();
        self.tm.world_size.set(w as f64);
        let b = tokens.dims()[0];
        if !self.degraded() {
            assert!(b.is_multiple_of(w), "global batch {} not divisible by {} workers", b, w);
        }
        // Contiguous shards; the first `b % w` workers take one extra
        // sample when the batch no longer divides evenly.
        let base = b / w;
        let extra = b % w;
        let sizes: Vec<usize> = (0..w).map(|i| base + usize::from(i < extra)).collect();
        let mut offsets = Vec::with_capacity(w);
        let mut acc = 0usize;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        let l = tokens.dims()[1];
        let d = tokens.dims()[2];

        // Broadcast master weights to the replicas.
        for r in &mut self.replicas {
            r.params_mut().copy_from(&self.master);
        }

        let loss_cfg = self.loss_cfg;
        let compute_span = self.tm.tel.span_id("distsim.compute", step);
        let t0 = std::time::Instant::now();
        // Compute phase: each worker thread processes its shard. Uneven
        // shards pre-scale their gradients by `n_i * W / B` so the ring's
        // uniform mean yields `sum_i (n_i/B) g_i` — the exact global mean.
        let results: Vec<(f64, Vec<f32>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .replicas
                .iter_mut()
                .enumerate()
                .map(|(pos, replica)| {
                    let shard = sizes[pos];
                    let start = offsets[pos] * l * d;
                    let xs = Tensor::new([shard, l, d], tokens.data()[start..start + shard * l * d].to_vec());
                    let ys = Tensor::new([shard, l, d], masks.data()[start..start + shard * l * d].to_vec());
                    let delay_ms = delays[pos];
                    let poisoned = poison.contains(&pos);
                    let grad_scale = (shard * w) as f32 / b as f32;
                    scope.spawn(move || {
                        if delay_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                        }
                        let replica: &M = replica;
                        let mut g = apf_tensor::Graph::new();
                        let bp = replica.params().bind(&mut g);
                        let x = g.constant(xs);
                        let y = g.constant(ys);
                        let logits = replica.forward(&mut g, &bp, x, true);
                        let loss = combo_loss(&mut g, logits, y, loss_cfg);
                        g.backward(loss);
                        let lv = g.value(loss).item() as f64;
                        let grads: Vec<(ParamId, Tensor)> = bp
                            .iter()
                            .filter_map(|(id, v)| g.take_grad(v).map(|t| (id, t)))
                            .collect();
                        let mut flat = flatten_grads(replica.params(), &grads);
                        if grad_scale != 1.0 {
                            for v in &mut flat {
                                *v *= grad_scale;
                            }
                        }
                        if poisoned && !flat.is_empty() {
                            flat[0] = f32::NAN;
                        }
                        (lv, flat)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        let compute_s = t0.elapsed().as_secs_f64();
        drop(compute_span);
        self.tm.compute_s.record(compute_s);

        let t1 = std::time::Instant::now();
        // Shard losses weighted by shard size; the weights sum to 1.
        let loss = results
            .iter()
            .enumerate()
            .map(|(i, (lv, _))| lv * sizes[i] as f64 / b as f64)
            .sum::<f64>();
        let buffers: Vec<Vec<f32>> = results.into_iter().map(|(_, b)| b).collect();

        // Each ring pass moves 2(W-1)/W chunks of the N-float buffer per
        // worker: 2(W-1)·N·4 bytes total per attempt.
        let bytes_per_attempt =
            (2 * w.saturating_sub(1) * buffers.first().map_or(0, Vec::len) * 4) as u64;

        // Sync phase: checksum-verified all-reduce, retried on transient
        // corruption with the retained gradient buffers.
        let mut comm_retries = 0u32;
        let reduced = {
            let _span = self.tm.tel.span_id("distsim.allreduce", step);
            let _t = self.tm.allreduce_s.start_timer();
            self.tm.comm_bytes.add(bytes_per_attempt);
            if corrupt.is_empty() {
                ring_allreduce_mean(buffers)
            } else {
                let mut attempt = 0u32;
                loop {
                    // The injected corruption is transient: it hits the first
                    // attempt only, mirroring a one-off link error.
                    let inject: &[usize] = if attempt == 0 { &corrupt } else { &[] };
                    match ring_allreduce_mean_checked(buffers.clone(), inject) {
                        Ok(r) => break r,
                        Err(_) => {
                            attempt += 1;
                            comm_retries = attempt;
                            self.tm.comm_retries.inc();
                            self.tm.comm_bytes.add(bytes_per_attempt);
                            self.trace.push(RecoveryEvent::CommRetry { step, attempt });
                            assert!(
                                attempt <= self.max_comm_retries,
                                "all-reduce corruption persisted through {} retries",
                                self.max_comm_retries
                            );
                        }
                    }
                }
            }
        };

        // Non-finite guard: a NaN/Inf loss or gradient skips the update,
        // restores the last good parameters and optimizer state, and
        // halves the learning rate (bounded retry budget).
        let update_span = self.tm.tel.span_id("distsim.update", step);
        let update_timer = self.tm.optimizer_s.start_timer();
        let grads_finite = reduced[0].iter().all(|v| v.is_finite());
        let mut rolled_back = false;
        if !loss.is_finite() || !grads_finite {
            rolled_back = true;
        } else {
            let snapshot_params = self.master.clone();
            let snapshot_opt = self.opt.clone();
            let grads = unflatten_grads(&self.master, &reduced[0]);
            self.opt.step(&mut self.master, &grads);
            let params_finite =
                self.master.iter().all(|(_, _, t)| t.data().iter().all(|v| v.is_finite()));
            if !params_finite {
                self.master = snapshot_params;
                self.opt = snapshot_opt;
                rolled_back = true;
            }
        }
        if rolled_back {
            self.rollbacks += 1;
            self.tm.rollbacks.inc();
            assert!(
                self.rollbacks <= self.max_rollbacks,
                "non-finite loss persisted through {} rollbacks; aborting",
                self.max_rollbacks
            );
            self.opt.scale_lr(0.5);
            self.trace.push(RecoveryEvent::RolledBack {
                step,
                lr_scale_after: self.opt.lr_scale(),
            });
        }
        drop(update_timer);
        drop(update_span);
        let sync_s = t1.elapsed().as_secs_f64();

        self.step_idx += 1;
        self.tm.steps_total.inc();
        StepReport {
            loss,
            compute_s,
            sync_s,
            world_size: w,
            degraded: self.degraded(),
            comm_retries,
            rolled_back,
        }
    }

    /// Trains one epoch over a dataset; returns mean loss.
    pub fn train_epoch(&mut self, data: &TokenSegDataset, global_batch: usize, seed: u64) -> f64 {
        let batches = data.epoch_batches(global_batch, seed);
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches {
            // Skip ragged tails that don't shard evenly.
            if idx.len() % self.workers() != 0 {
                continue;
            }
            let (x, y) = data.batch(&idx);
            total += self.step(&x, &y).loss;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultRates};
    use apf_core::pipeline::{AdaptivePatcher, PatcherConfig};
    use apf_imaging::paip::{PaipConfig, PaipGenerator};
    use apf_models::rearrange::GridOrder;
    use apf_models::unetr::{Unetr2d, UnetrConfig};

    fn dataset(n: usize) -> TokenSegDataset {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let s = gen.generate(i);
                (s.image, s.mask)
            })
            .collect();
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(16),
        );
        TokenSegDataset::adaptive(&pairs, &patcher)
    }

    fn factory() -> Unetr2d {
        Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 42)
    }

    fn params_bits(p: &ParamSet) -> Vec<u32> {
        p.iter().flat_map(|(_, _, t)| t.data().iter().map(|v| v.to_bits())).collect()
    }

    #[test]
    fn replicas_start_identical() {
        let e = DataParallelEngine::new(factory, 3, AdamWConfig::default());
        assert_eq!(e.workers(), 3);
        assert!(!e.degraded());
        assert!(e.recovery_trace().is_empty());
    }

    #[test]
    fn data_parallel_equals_single_worker_for_decomposable_loss() {
        // With a pure-BCE loss (which IS shard-decomposable: the global
        // mean equals the mean of equal-shard means) and a model without
        // batch statistics (ViT segmenter — BatchNorm would need SyncBN,
        // exactly as in real DDP), W workers on shards must match 1 worker
        // on the full batch, step for step.
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);

        let vit_factory = || {
            apf_models::vit::ViTSegmenter::new(apf_models::vit::ViTConfig::tiny(16, 16), 42)
        };
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let bce_only = ComboLossConfig { bce_weight: 1.0, epsilon: 1.0 };
        let mut single = DataParallelEngine::new(vit_factory, 1, cfg);
        single.set_loss(bce_only);
        let mut quad = DataParallelEngine::new(vit_factory, 4, cfg);
        quad.set_loss(bce_only);

        for step in 0..3 {
            let r1 = single.step(&x, &y);
            let r4 = quad.step(&x, &y);
            assert!(
                (r1.loss - r4.loss).abs() < 1e-4,
                "step {} loss {} vs {}",
                step,
                r1.loss,
                r4.loss
            );
            assert_eq!(r4.world_size, 4);
            assert!(!r4.degraded);
            assert_eq!(r4.comm_retries, 0);
            assert!(!r4.rolled_back);
        }
        // Parameters must match to float tolerance.
        for ((_, n1, t1), (_, _, t4)) in single
            .master_params()
            .iter()
            .zip(quad.master_params().iter())
        {
            let max_diff = t1
                .data()
                .iter()
                .zip(t4.data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 2e-3, "param {} diverged by {}", n1, max_diff);
        }
    }

    #[test]
    fn engine_matches_serial_sharded_reference() {
        // With the full combo loss (dice is per-shard, as in real DDP),
        // the threaded engine must match a serial re-implementation of
        // the same sharded computation: per-shard graphs, flattened grads,
        // mean, one AdamW step.
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let w = 2usize;
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };

        let mut engine = DataParallelEngine::new(factory, w, cfg);

        // Serial reference.
        let reference_model = factory();
        let mut ref_params = reference_model.params().clone();
        let mut ref_opt = AdamW::new(cfg, ref_params.len());
        let (b, l, d) = (4usize, x.dims()[1], x.dims()[2]);
        let shard = b / w;
        for _ in 0..2 {
            let mut flat_sum: Vec<f64> = Vec::new();
            for rank in 0..w {
                let xs = Tensor::new(
                    [shard, l, d],
                    x.data()[rank * shard * l * d..(rank + 1) * shard * l * d].to_vec(),
                );
                let ys = Tensor::new(
                    [shard, l, d],
                    y.data()[rank * shard * l * d..(rank + 1) * shard * l * d].to_vec(),
                );
                let mut g = apf_tensor::Graph::new();
                // Bind the reference weights into the replica structure.
                let mut replica = factory();
                replica.params_mut().copy_from(&ref_params);
                let bp = replica.params().bind(&mut g);
                let xv = g.constant(xs);
                let yv = g.constant(ys);
                let logits = replica.forward(&mut g, &bp, xv, true);
                let loss = combo_loss(&mut g, logits, yv, ComboLossConfig::default());
                g.backward(loss);
                let grads: Vec<(ParamId, Tensor)> = bp
                    .iter()
                    .filter_map(|(id, v)| g.take_grad(v).map(|t| (id, t)))
                    .collect();
                let flat = flatten_grads(replica.params(), &grads);
                if flat_sum.is_empty() {
                    flat_sum = flat.iter().map(|&v| v as f64).collect();
                } else {
                    for (a, &b) in flat_sum.iter_mut().zip(flat.iter()) {
                        *a += b as f64;
                    }
                }
            }
            let mean: Vec<f32> = flat_sum.iter().map(|&v| (v / w as f64) as f32).collect();
            let grads = unflatten_grads(&ref_params, &mean);
            ref_opt.step(&mut ref_params, &grads);

            engine.step(&x, &y);
        }
        for ((_, n, te), (_, _, tr)) in engine.master_params().iter().zip(ref_params.iter()) {
            let max_diff = te
                .data()
                .iter()
                .zip(tr.data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 2e-3, "param {} diverged by {}", n, max_diff);
        }
    }

    #[test]
    fn training_reduces_loss_with_multiple_workers() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let mut e = DataParallelEngine::new(
            factory,
            2,
            AdamWConfig { lr: 3e-3, ..Default::default() },
        );
        let first = e.step(&x, &y).loss;
        let mut last = first;
        for _ in 0..10 {
            last = e.step(&x, &y).loss;
        }
        assert!(last < first, "{} -> {}", first, last);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn ragged_batch_panics() {
        let ds = dataset(3);
        let (x, y) = ds.batch(&[0, 1, 2]);
        let mut e = DataParallelEngine::new(factory, 2, AdamWConfig::default());
        e.step(&x, &y);
    }

    #[test]
    fn train_epoch_runs() {
        let ds = dataset(4);
        let mut e = DataParallelEngine::new(factory, 2, AdamWConfig::default());
        let loss = e.train_epoch(&ds, 2, 1);
        assert!(loss > 0.0);
    }

    #[test]
    fn crash_recovery_continues_bit_identically_to_surviving_world_size() {
        // The kill-at-step-k scenario: 3 workers, rank 1 dies at step 2.
        // A checkpoint taken just before the crash, resumed into a fresh
        // engine launched at the surviving world size, must reproduce the
        // faulted engine's post-crash trajectory bit for bit.
        let ds = dataset(6);
        let (x, y) = ds.batch(&[0, 1, 2, 3, 4, 5]);
        let cfg = AdamWConfig { lr: 2e-3, ..Default::default() };
        let dir = std::env::temp_dir().join(format!("apf_crash_demo_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("step2.apf2");

        let plan = FaultPlan::new(vec![FaultEvent {
            step: 2,
            kind: FaultKind::WorkerCrash { rank: 1 },
        }]);
        let mut faulted = DataParallelEngine::new(factory, 3, cfg).with_fault_plan(plan);
        let mut faulted_losses = Vec::new();
        for step in 0..5u64 {
            if step == 2 {
                faulted.save_checkpoint(&ckpt).unwrap();
            }
            let r = faulted.step(&x, &y);
            faulted_losses.push(r.loss);
            if step >= 2 {
                assert_eq!(r.world_size, 2, "step {}", step);
                assert!(r.degraded);
            } else {
                assert_eq!(r.world_size, 3);
                assert!(!r.degraded);
            }
        }
        assert!(faulted.recovery_trace().contains(&RecoveryEvent::WorkerLost {
            step: 2,
            rank: 1,
            world_after: 2,
        }));

        // Fresh engine at the surviving world size, resumed from the
        // pre-crash checkpoint (seed 7 factory proves resume overwrites).
        let other_factory = || Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 7);
        let mut survivor = DataParallelEngine::new(other_factory, 2, cfg);
        survivor.resume_from(&ckpt).unwrap();
        assert_eq!(survivor.step_index(), 2);
        let mut survivor_losses = Vec::new();
        for _ in 2..5u64 {
            survivor_losses.push(survivor.step(&x, &y).loss);
        }
        assert_eq!(
            faulted_losses[2..]
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            survivor_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "post-crash losses must be bit-identical to the surviving-world run"
        );
        assert_eq!(
            params_bits(faulted.master_params()),
            params_bits(survivor.master_params()),
            "post-crash parameters must be bit-identical to the surviving-world run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uneven_resharding_preserves_global_mean_objective() {
        // 4 workers, batch 4; after rank 3 dies the shards are uneven
        // (2, 1, 1). With the decomposable BCE loss, the weighted degraded
        // step must still match a single worker on the full batch.
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let vit_factory = || {
            apf_models::vit::ViTSegmenter::new(apf_models::vit::ViTConfig::tiny(16, 16), 42)
        };
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let bce_only = ComboLossConfig { bce_weight: 1.0, epsilon: 1.0 };

        let plan = FaultPlan::new(vec![FaultEvent {
            step: 0,
            kind: FaultKind::WorkerCrash { rank: 3 },
        }]);
        let mut degraded = DataParallelEngine::new(vit_factory, 4, cfg).with_fault_plan(plan);
        degraded.set_loss(bce_only);
        let mut single = DataParallelEngine::new(vit_factory, 1, cfg);
        single.set_loss(bce_only);

        for step in 0..3 {
            let rd = degraded.step(&x, &y);
            let r1 = single.step(&x, &y);
            assert_eq!(rd.world_size, 3);
            assert!(rd.degraded);
            assert!(
                (rd.loss - r1.loss).abs() < 1e-4,
                "step {}: degraded loss {} vs single {}",
                step,
                rd.loss,
                r1.loss
            );
        }
        for ((_, n, td), (_, _, t1)) in
            degraded.master_params().iter().zip(single.master_params().iter())
        {
            let max_diff = td
                .data()
                .iter()
                .zip(t1.data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 2e-3, "param {} diverged by {}", n, max_diff);
        }
    }

    #[test]
    fn transient_corruption_is_retried_without_changing_the_result() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };

        let plan = FaultPlan::new(vec![FaultEvent {
            step: 1,
            kind: FaultKind::GradCorruption { rank: 1 },
        }]);
        let mut faulted = DataParallelEngine::new(factory, 2, cfg).with_fault_plan(plan);
        let mut clean = DataParallelEngine::new(factory, 2, cfg);

        for step in 0..3u64 {
            let rf = faulted.step(&x, &y);
            let rc = clean.step(&x, &y);
            assert_eq!(rf.comm_retries, u32::from(step == 1), "step {}", step);
            assert_eq!(rf.loss.to_bits(), rc.loss.to_bits(), "step {}", step);
        }
        assert!(faulted
            .recovery_trace()
            .contains(&RecoveryEvent::CommRetry { step: 1, attempt: 1 }));
        assert_eq!(
            params_bits(faulted.master_params()),
            params_bits(clean.master_params()),
            "retried corruption must not perturb training"
        );
    }

    #[test]
    fn telemetry_mirrors_step_reports_and_recovery_events() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let plan = FaultPlan::new(vec![
            FaultEvent { step: 1, kind: FaultKind::GradCorruption { rank: 1 } },
            FaultEvent { step: 2, kind: FaultKind::NanGrad { rank: 0 } },
            FaultEvent { step: 3, kind: FaultKind::WorkerCrash { rank: 1 } },
        ]);
        let tel = apf_telemetry::Telemetry::enabled();
        let mut e = DataParallelEngine::new(factory, 2, cfg)
            .with_fault_plan(plan)
            .with_telemetry(tel.clone());

        let mut retries = 0u64;
        let mut rollbacks = 0u64;
        for _ in 0..4u64 {
            let r = e.step(&x, &y);
            retries += u64::from(r.comm_retries);
            rollbacks += u64::from(r.rolled_back);
        }
        assert_eq!(retries, 1);
        assert_eq!(rollbacks, 1);

        let snap = tel.snapshot();
        let val = |name: &str| snap.get(name, &[]).map(|m| m.value).unwrap_or(-1.0);
        assert_eq!(val("apf_distsim_steps_total"), 4.0);
        assert_eq!(val("apf_distsim_comm_retries_total"), retries as f64);
        assert_eq!(val("apf_distsim_rollbacks_total"), rollbacks as f64);
        assert_eq!(val("apf_distsim_workers_lost_total"), 1.0);
        assert_eq!(val("apf_distsim_world_size"), 1.0, "gauge reflects the post-crash world");
        // 4 ring attempts at W=2 (3 full-strength steps, one of them
        // retried) each move 2(W-1)·n·4 bytes; the post-crash solo step
        // moves nothing.
        let n = e.master_params().num_scalars() as u64;
        let attempts = 4;
        let w = 2u64;
        assert_eq!(val("apf_distsim_comm_bytes_total"), (attempts * 2 * (w - 1) * n * 4) as f64);

        for phase in ["compute", "allreduce", "optimizer"] {
            let h = snap
                .get("apf_distsim_step_phase_seconds", &[("phase", phase)])
                .and_then(|m| m.histogram.clone())
                .unwrap_or_else(|| panic!("phase {} registered", phase));
            assert_eq!(h.count, 4, "phase {} recorded every step", phase);
        }
        let names: Vec<&str> = tel.trace_events().iter().map(|e| e.name).collect();
        for name in ["distsim.step", "distsim.compute", "distsim.allreduce", "distsim.update"] {
            assert!(names.contains(&name), "missing span {}", name);
        }
    }

    #[test]
    fn nan_guard_rolls_back_and_halves_lr() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 1,
            kind: FaultKind::NanGrad { rank: 0 },
        }]);
        let mut e = DataParallelEngine::new(factory, 2, cfg).with_fault_plan(plan);

        e.step(&x, &y);
        let before = params_bits(e.master_params());
        let r = e.step(&x, &y);
        assert!(r.rolled_back);
        assert_eq!(e.lr_scale(), 0.5);
        assert_eq!(
            before,
            params_bits(e.master_params()),
            "rolled-back step must leave parameters untouched"
        );
        assert!(e
            .recovery_trace()
            .contains(&RecoveryEvent::RolledBack { step: 1, lr_scale_after: 0.5 }));
        // Training continues at the halved rate.
        let r2 = e.step(&x, &y);
        assert!(!r2.rolled_back);
        assert!(r2.loss.is_finite());
        assert_ne!(before, params_bits(e.master_params()));
    }

    #[test]
    fn straggler_delays_but_does_not_perturb_training() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 0,
            kind: FaultKind::Straggler { rank: 1, delay_ms: 20 },
        }]);
        let mut slow = DataParallelEngine::new(factory, 2, cfg).with_fault_plan(plan);
        let mut clean = DataParallelEngine::new(factory, 2, cfg);
        let rs = slow.step(&x, &y);
        let rc = clean.step(&x, &y);
        assert_eq!(rs.loss.to_bits(), rc.loss.to_bits());
        assert!(slow.recovery_trace().contains(&RecoveryEvent::StragglerObserved {
            step: 0,
            rank: 1,
            delay_ms: 20,
        }));
        assert_eq!(params_bits(slow.master_params()), params_bits(clean.master_params()));
    }

    #[test]
    fn same_fault_plan_produces_identical_recovery_traces() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let rates = FaultRates {
            crash: 0.05,
            corruption: 0.1,
            straggler: 0.1,
            straggler_ms: (1, 3),
        };
        let run = |seed: u64| {
            let plan = FaultPlan::random(seed, 6, 4, rates);
            let mut e = DataParallelEngine::new(factory, 4, cfg).with_fault_plan(plan);
            let mut losses = Vec::new();
            for _ in 0..6 {
                losses.push(e.step(&x, &y).loss.to_bits());
            }
            (losses, e.recovery_trace().to_vec(), params_bits(e.master_params()))
        };
        let (l1, t1, p1) = run(11);
        let (l2, t2, p2) = run(11);
        assert!(!t1.is_empty(), "seed 11 should schedule at least one fault");
        assert_eq!(t1, t2, "recovery traces must be deterministic");
        assert_eq!(l1, l2, "loss trajectories must be deterministic");
        assert_eq!(p1, p2, "final parameters must be deterministic");
    }
}
