//! A real data-parallel training engine: one OS thread per simulated GPU,
//! genuine gradient averaging through the ring all-reduce.
//!
//! Each worker owns a full model replica (same seed => identical weights).
//! Every step, the global batch is sharded across workers; each computes
//! gradients on its shard; the flattened gradients are averaged with
//! [`crate::allreduce::ring_allreduce_mean`]; a single AdamW step is applied
//! to the master parameters which are then broadcast back to the replicas.
//! This makes data-parallel training mathematically identical to large-batch
//! single-worker training — and the engine's tests verify exactly that.

use apf_models::params::{ParamId, ParamSet};
use apf_tensor::tensor::Tensor;
use apf_train::data::TokenSegDataset;
use apf_train::loss::{combo_loss, ComboLossConfig};
use apf_train::optim::{AdamW, AdamWConfig};
use apf_train::trainer::TokenSegModel;

use crate::allreduce::ring_allreduce_mean;

/// Flattens ordered per-parameter gradients into one buffer (ring input).
fn flatten_grads(params: &ParamSet, grads: &[(ParamId, Tensor)]) -> Vec<f32> {
    // Missing grads become zeros so every worker contributes equal-length
    // buffers regardless of which parameters were touched.
    let mut dense: Vec<Option<&Tensor>> = vec![None; params.len()];
    for (id, g) in grads {
        dense[id.index()] = Some(g);
    }
    let mut out = Vec::with_capacity(params.num_scalars());
    for (id, _, t) in params.iter() {
        match dense[id.index()] {
            Some(g) => out.extend_from_slice(g.data()),
            None => out.extend(std::iter::repeat_n(0.0, t.numel())),
        }
    }
    out
}

/// Splits a flat buffer back into per-parameter tensors.
fn unflatten_grads(params: &ParamSet, flat: &[f32]) -> Vec<(ParamId, Tensor)> {
    let mut out = Vec::with_capacity(params.len());
    let mut off = 0;
    for (id, _, t) in params.iter() {
        let n = t.numel();
        out.push((id, Tensor::new(t.shape().clone(), flat[off..off + n].to_vec())));
        off += n;
    }
    out
}

/// Per-step telemetry from the engine.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Mean loss over all shards.
    pub loss: f64,
    /// Wall-clock seconds of the compute phase (max over workers).
    pub compute_s: f64,
    /// Wall-clock seconds of the all-reduce + update phase.
    pub sync_s: f64,
}

/// The data-parallel engine over `W` model replicas.
pub struct DataParallelEngine<M: TokenSegModel + Send> {
    replicas: Vec<M>,
    master: ParamSet,
    opt: AdamW,
    loss_cfg: ComboLossConfig,
}

impl<M: TokenSegModel + Send> DataParallelEngine<M> {
    /// Builds the engine from a replica factory. The factory MUST be
    /// deterministic (same weights for every call), mirroring a broadcast
    /// of the initial model.
    pub fn new(factory: impl Fn() -> M, workers: usize, opt_cfg: AdamWConfig) -> Self {
        assert!(workers >= 1);
        let replicas: Vec<M> = (0..workers).map(|_| factory()).collect();
        let master = replicas[0].params().clone();
        for r in &replicas {
            assert_eq!(
                r.params().num_scalars(),
                master.num_scalars(),
                "factory produced differing replicas"
            );
        }
        let opt = AdamW::new(opt_cfg, master.len());
        DataParallelEngine {
            replicas,
            master,
            opt,
            loss_cfg: ComboLossConfig::default(),
        }
    }

    /// Number of simulated GPUs.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// Overrides the loss configuration (default: the paper's 0.5 BCE +
    /// 0.5 dice). Note that the dice term is computed per shard, as in
    /// real distributed data parallel.
    pub fn set_loss(&mut self, cfg: ComboLossConfig) {
        self.loss_cfg = cfg;
    }

    /// Read access to the synchronized master parameters.
    pub fn master_params(&self) -> &ParamSet {
        &self.master
    }

    /// One data-parallel step over a global batch, sharded contiguously
    /// across workers. `tokens`/`masks` are `[B, L, D]` with `B` divisible
    /// by the worker count.
    pub fn step(&mut self, tokens: &Tensor, masks: &Tensor) -> StepReport {
        let w = self.replicas.len();
        let b = tokens.dims()[0];
        assert!(b.is_multiple_of(w), "global batch {} not divisible by {} workers", b, w);
        let shard = b / w;
        let l = tokens.dims()[1];
        let d = tokens.dims()[2];
        let xsz = shard * l * d;

        // Broadcast master weights to the replicas.
        for r in &mut self.replicas {
            r.params_mut().copy_from(&self.master);
        }

        let loss_cfg = self.loss_cfg;
        let t0 = std::time::Instant::now();
        // Compute phase: each worker thread processes its shard.
        let results: Vec<(f64, Vec<f32>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .replicas
                .iter_mut()
                .enumerate()
                .map(|(rank, replica)| {
                    let xs = Tensor::new(
                        [shard, l, d],
                        tokens.data()[rank * xsz..(rank + 1) * xsz].to_vec(),
                    );
                    let ys = Tensor::new(
                        [shard, l, d],
                        masks.data()[rank * xsz..(rank + 1) * xsz].to_vec(),
                    );
                    scope.spawn(move || {
                        let replica: &M = replica;
                        let mut g = apf_tensor::Graph::new();
                        let bp = replica.params().bind(&mut g);
                        let x = g.constant(xs);
                        let y = g.constant(ys);
                        let logits = replica.forward(&mut g, &bp, x, true);
                        let loss = combo_loss(&mut g, logits, y, loss_cfg);
                        g.backward(loss);
                        let lv = g.value(loss).item() as f64;
                        let grads: Vec<(ParamId, Tensor)> = bp
                            .iter()
                            .filter_map(|(id, v)| g.take_grad(v).map(|t| (id, t)))
                            .collect();
                        (lv, flatten_grads(replica.params(), &grads))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        let compute_s = t0.elapsed().as_secs_f64();

        let t1 = std::time::Instant::now();
        let loss = results.iter().map(|(l, _)| l).sum::<f64>() / w as f64;
        let buffers: Vec<Vec<f32>> = results.into_iter().map(|(_, b)| b).collect();
        let reduced = ring_allreduce_mean(buffers);
        let grads = unflatten_grads(&self.master, &reduced[0]);
        self.opt.step(&mut self.master, &grads);
        let sync_s = t1.elapsed().as_secs_f64();

        StepReport { loss, compute_s, sync_s }
    }

    /// Trains one epoch over a dataset; returns mean loss.
    pub fn train_epoch(&mut self, data: &TokenSegDataset, global_batch: usize, seed: u64) -> f64 {
        let batches = data.epoch_batches(global_batch, seed);
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches {
            // Skip ragged tails that don't shard evenly.
            if idx.len() % self.workers() != 0 {
                continue;
            }
            let (x, y) = data.batch(&idx);
            total += self.step(&x, &y).loss;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_core::pipeline::{AdaptivePatcher, PatcherConfig};
    use apf_imaging::paip::{PaipConfig, PaipGenerator};
    use apf_models::rearrange::GridOrder;
    use apf_models::unetr::{Unetr2d, UnetrConfig};

    fn dataset(n: usize) -> TokenSegDataset {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let s = gen.generate(i);
                (s.image, s.mask)
            })
            .collect();
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(16),
        );
        TokenSegDataset::adaptive(&pairs, &patcher)
    }

    fn factory() -> Unetr2d {
        Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 42)
    }

    #[test]
    fn replicas_start_identical() {
        let e = DataParallelEngine::new(factory, 3, AdamWConfig::default());
        assert_eq!(e.workers(), 3);
    }

    #[test]
    fn data_parallel_equals_single_worker_for_decomposable_loss() {
        // With a pure-BCE loss (which IS shard-decomposable: the global
        // mean equals the mean of equal-shard means) and a model without
        // batch statistics (ViT segmenter — BatchNorm would need SyncBN,
        // exactly as in real DDP), W workers on shards must match 1 worker
        // on the full batch, step for step.
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);

        let vit_factory = || {
            apf_models::vit::ViTSegmenter::new(apf_models::vit::ViTConfig::tiny(16, 16), 42)
        };
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };
        let bce_only = ComboLossConfig { bce_weight: 1.0, epsilon: 1.0 };
        let mut single = DataParallelEngine::new(vit_factory, 1, cfg);
        single.set_loss(bce_only);
        let mut quad = DataParallelEngine::new(vit_factory, 4, cfg);
        quad.set_loss(bce_only);

        for step in 0..3 {
            let r1 = single.step(&x, &y);
            let r4 = quad.step(&x, &y);
            assert!(
                (r1.loss - r4.loss).abs() < 1e-4,
                "step {} loss {} vs {}",
                step,
                r1.loss,
                r4.loss
            );
        }
        // Parameters must match to float tolerance.
        for ((_, n1, t1), (_, _, t4)) in single
            .master_params()
            .iter()
            .zip(quad.master_params().iter())
        {
            let max_diff = t1
                .data()
                .iter()
                .zip(t4.data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 2e-3, "param {} diverged by {}", n1, max_diff);
        }
    }

    #[test]
    fn engine_matches_serial_sharded_reference() {
        // With the full combo loss (dice is per-shard, as in real DDP),
        // the threaded engine must match a serial re-implementation of
        // the same sharded computation: per-shard graphs, flattened grads,
        // mean, one AdamW step.
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let w = 2usize;
        let cfg = AdamWConfig { lr: 1e-3, ..Default::default() };

        let mut engine = DataParallelEngine::new(factory, w, cfg);

        // Serial reference.
        let reference_model = factory();
        let mut ref_params = reference_model.params().clone();
        let mut ref_opt = AdamW::new(cfg, ref_params.len());
        let (b, l, d) = (4usize, x.dims()[1], x.dims()[2]);
        let shard = b / w;
        for _ in 0..2 {
            let mut flat_sum: Vec<f64> = Vec::new();
            for rank in 0..w {
                let xs = Tensor::new(
                    [shard, l, d],
                    x.data()[rank * shard * l * d..(rank + 1) * shard * l * d].to_vec(),
                );
                let ys = Tensor::new(
                    [shard, l, d],
                    y.data()[rank * shard * l * d..(rank + 1) * shard * l * d].to_vec(),
                );
                let mut g = apf_tensor::Graph::new();
                // Bind the reference weights into the replica structure.
                let mut replica = factory();
                replica.params_mut().copy_from(&ref_params);
                let bp = replica.params().bind(&mut g);
                let xv = g.constant(xs);
                let yv = g.constant(ys);
                let logits = replica.forward(&mut g, &bp, xv, true);
                let loss = combo_loss(&mut g, logits, yv, ComboLossConfig::default());
                g.backward(loss);
                let grads: Vec<(ParamId, Tensor)> = bp
                    .iter()
                    .filter_map(|(id, v)| g.take_grad(v).map(|t| (id, t)))
                    .collect();
                let flat = flatten_grads(replica.params(), &grads);
                if flat_sum.is_empty() {
                    flat_sum = flat.iter().map(|&v| v as f64).collect();
                } else {
                    for (a, &b) in flat_sum.iter_mut().zip(flat.iter()) {
                        *a += b as f64;
                    }
                }
            }
            let mean: Vec<f32> = flat_sum.iter().map(|&v| (v / w as f64) as f32).collect();
            let grads = unflatten_grads(&ref_params, &mean);
            ref_opt.step(&mut ref_params, &grads);

            engine.step(&x, &y);
        }
        for ((_, n, te), (_, _, tr)) in engine.master_params().iter().zip(ref_params.iter()) {
            let max_diff = te
                .data()
                .iter()
                .zip(tr.data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 2e-3, "param {} diverged by {}", n, max_diff);
        }
    }

    #[test]
    fn training_reduces_loss_with_multiple_workers() {
        let ds = dataset(4);
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        let mut e = DataParallelEngine::new(
            factory,
            2,
            AdamWConfig { lr: 3e-3, ..Default::default() },
        );
        let first = e.step(&x, &y).loss;
        let mut last = first;
        for _ in 0..10 {
            last = e.step(&x, &y).loss;
        }
        assert!(last < first, "{} -> {}", first, last);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn ragged_batch_panics() {
        let ds = dataset(3);
        let (x, y) = ds.batch(&[0, 1, 2]);
        let mut e = DataParallelEngine::new(factory, 2, AdamWConfig::default());
        e.step(&x, &y);
    }

    #[test]
    fn train_epoch_runs() {
        let ds = dataset(4);
        let mut e = DataParallelEngine::new(factory, 2, AdamWConfig::default());
        let loss = e.train_epoch(&ds, 2, 1);
        assert!(loss > 0.0);
    }
}
