#!/usr/bin/env bash
# Full pre-merge gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> serve_soak resilience gate"
# A failed soak must not leave yesterday's results lying around looking
# fresh: clear the artifacts up front and require the binary (which writes
# atomically via temp-file + rename) to have produced them again.
rm -f results/serve_soak.json results/serve_soak_trace.jsonl results/serve_soak_metrics.prom
cargo run --release -q -p apf-bench --bin serve_soak -- --steps 200 --seed 7
for f in results/serve_soak.json results/serve_soak_trace.jsonl results/serve_soak_metrics.prom; do
  test -s "$f" || { echo "missing soak artifact: $f" >&2; exit 1; }
done

echo "==> frontdoor_soak gate (wire protocol, quotas, mid-soak drain, tracing, flight recorder)"
# The binary asserts every front-door invariant internally (any violation
# panics), and the archived JSON is re-checked here so a regression that
# silently weakens the binary's own asserts still fails the gate.
rm -f results/frontdoor_soak.json results/frontdoor_soak_metrics.prom results/frontdoor_trace.json
cargo run --release -q -p apf-bench --bin frontdoor_soak -- --quick
for f in results/frontdoor_soak.json results/frontdoor_soak_metrics.prom results/frontdoor_trace.json; do
  test -s "$f" || { echo "missing frontdoor artifact: $f" >&2; exit 1; }
done
grep -q '"untyped_client_failures": 0' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: untyped client failures" >&2; exit 1; }
grep -q '"quota_drift": 0' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: quota accounting drifted" >&2; exit 1; }
grep -q '"server_panics": 0' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: server panicked" >&2; exit 1; }
grep -q '"drain_within_bound": true' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: drain exceeded its bound" >&2; exit 1; }
grep -q 'apf_serve_quota_rejections_total' results/frontdoor_soak_metrics.prom \
  || { echo "frontdoor_soak: quota metrics missing from exposition" >&2; exit 1; }
grep -q 'apf_serve_wire_quota_checked_total' results/frontdoor_soak_metrics.prom \
  || { echo "frontdoor_soak: wire-door counters missing from exposition" >&2; exit 1; }
# Trace completeness: one probe request must stitch client -> wire server
# -> engine -> >=2 stitch workers -> merge under a single trace id, with
# no orphaned parent links, archived as a Chrome trace.
grep -q '"trace_complete": true' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: probe trace did not stitch end to end" >&2; exit 1; }
grep -q '"traceEvents"' results/frontdoor_trace.json \
  || { echo "frontdoor_soak: archived trace is not Chrome trace JSON" >&2; exit 1; }
# Admin plane parity + black-box dump from the injected worker panic.
grep -q '"admin_matches_prom": true' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: admin metrics diverged from the exposition" >&2; exit 1; }
grep -q '"flight_dump_ok": true' results/frontdoor_soak.json \
  || { echo "frontdoor_soak: no flight-recorder dump from the injected panic" >&2; exit 1; }
ls results/flight_panic_*.jsonl >/dev/null 2>&1 \
  || { echo "frontdoor_soak: flight dump file missing" >&2; exit 1; }

echo "==> batch_bench gate (batched == solo within 1e-5, >= 2x throughput at concurrency 16, >= 90% cache hits)"
# The binary asserts its gates internally; the archived JSON is re-checked
# so a silently weakened assert still fails here.
rm -f results/batch_bench.json
cargo run --release -q -p apf-bench --bin batch_bench
test -s results/batch_bench.json || { echo "missing batch_bench.json" >&2; exit 1; }
grep -q '"equivalence_ok": true' results/batch_bench.json \
  || { echo "batch_bench: batched forward diverged from solo" >&2; exit 1; }
grep -q '"bit_exact_ok": true' results/batch_bench.json \
  || { echo "batch_bench: batch of one not bit-exact" >&2; exit 1; }
grep -q '"speedup_ok": true' results/batch_bench.json \
  || { echo "batch_bench: batched throughput below 2x baseline" >&2; exit 1; }
grep -q '"cache_hit_rate_ok": true' results/batch_bench.json \
  || { echo "batch_bench: cache hit rate below 90%" >&2; exit 1; }

echo "==> frontdoor_soak --scale gate (>= 1e5 batched requests, zero failures, >= 90% cache hits)"
rm -f results/frontdoor_soak_scale.json
cargo run --release -q -p apf-bench --bin frontdoor_soak -- --scale
test -s results/frontdoor_soak_scale.json || { echo "missing frontdoor_soak_scale.json" >&2; exit 1; }
grep -q '"untyped_client_failures": 0' results/frontdoor_soak_scale.json \
  || { echo "frontdoor_soak --scale: client thread panicked" >&2; exit 1; }
grep -q '"typed_client_failures": 0' results/frontdoor_soak_scale.json \
  || { echo "frontdoor_soak --scale: requests failed" >&2; exit 1; }
grep -q '"no_orphaned_worker_slots": true' results/frontdoor_soak_scale.json \
  || { echo "frontdoor_soak --scale: orphaned worker slots" >&2; exit 1; }
grep -q '"batching_active": true' results/frontdoor_soak_scale.json \
  || { echo "frontdoor_soak --scale: batches never formed" >&2; exit 1; }
grep -q '"cache_hit_rate_ok": true' results/frontdoor_soak_scale.json \
  || { echo "frontdoor_soak --scale: cache hit rate below 90%" >&2; exit 1; }

echo "==> telemetry_overhead gate (disabled hooks, flight recorder included, < 2%)"
rm -f results/telemetry_overhead.json
cargo run --release -q -p apf-bench --bin telemetry_overhead
test -s results/telemetry_overhead.json || { echo "missing telemetry_overhead.json" >&2; exit 1; }

echo "==> kernel-oracle differential suite (release: exercises the vectorized paths)"
# Twice: once under the best-detected SIMD backend (the default), once with
# dispatch pinned to the scalar reference backend — so a backend bug cannot
# hide behind the matrix test's own forcing, and the forced-env path itself
# stays exercised.
cargo test --release -q -p apf-tensor --test kernel_oracle
APF_KERNEL_BACKEND=scalar cargo test --release -q -p apf-tensor --test kernel_oracle

echo "==> backend dispatch-layer tests (detection order, overrides, telemetry)"
cargo test --release -q -p apf-tensor --test backend_dispatch

echo "==> kernel_bench gate (per backend; best: packed SGEMM >= 2x, fused attention >= 1.05x)"
rm -f results/kernel_bench.json
cargo run --release -q -p apf-bench --bin kernel_bench
test -s results/kernel_bench.json || { echo "missing kernel_bench.json" >&2; exit 1; }

echo "==> gigapixel_bench gate (out-of-core memory budget + stitched-vs-full 1e-5 cross-check)"
# --quick segments a 4096^2 slide under half its dense bytes and runs the
# same cross-checks as the full run; drop the flag for the headline
# 16384^2-under-1/8 proof (about two minutes of wall clock).
rm -f results/gigapixel_bench.json
cargo run --release -q -p apf-bench --bin gigapixel_bench -- --quick
test -s results/gigapixel_bench.json || { echo "missing gigapixel_bench.json" >&2; exit 1; }

echo "==> kill/resume crash-safety suite (release: distributed stitch, checkpoint corruption)"
cargo test --release -q -p apf-gigapixel --test kill_resume --test checkpoint_corruption

echo "==> distributed_slide_bench gate (bit-identical distributed stitch + window throughput scaling)"
# --quick proves bit-identity and the >=3x@4 / >=5x@8 scaling gates on a
# 4096^2 slide; drop the flag for the headline 16384^2 / 289-window run.
rm -f results/distributed_slide_bench.json
cargo run --release -q -p apf-bench --bin distributed_slide_bench -- --quick
test -s results/distributed_slide_bench.json || { echo "missing distributed_slide_bench.json" >&2; exit 1; }

echo "==> all checks passed"
