#!/usr/bin/env bash
# Full pre-merge gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> serve_soak resilience gate"
cargo run --release -q -p apf-bench --bin serve_soak -- --steps 200 --seed 7

echo "==> all checks passed"
