#!/usr/bin/env bash
# Full pre-merge gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> all checks passed"
