//! Offline stand-in for `serde`.
//!
//! The workspace only ever serializes result/report structures to JSON (via
//! `serde_json::to_string_pretty`), so the shim collapses serde's data-model
//! machinery into one trait: [`Serialize`] writes compact JSON directly into
//! a `String`. The companion `serde_derive` shim generates implementations
//! for plain structs and fieldless enums. `Deserialize` exists as a marker
//! (and no-op derive) purely so `use serde::{Deserialize, Serialize}` lines
//! keep compiling; nothing in the workspace deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// Writes `self` as compact JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker matching upstream's trait-namespace `Deserialize` import.
pub trait Deserialize<'de>: Sized {}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
serialize_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(&3usize), "3");
        assert_eq!(json(&-2i32), "-2");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f32::NAN), "null");
        assert_eq!(json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(4u8)), "4");
        assert_eq!(json(&Option::<u8>::None), "null");
        assert_eq!(json(&(1u8, "x")), "[1,\"x\"]");
    }
}
