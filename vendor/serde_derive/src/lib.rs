//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no `syn`/`quote` available in a hermetic build).
//!
//! Supports the shapes this workspace actually derives on:
//! - structs with named fields -> JSON objects
//! - tuple structs -> JSON arrays
//! - unit structs -> `null`
//! - enums with unit and/or named-field variants -> externally tagged
//!   (`"Variant"` or `{"Variant":{...}}`), matching upstream serde
//!
//! `#[derive(Deserialize)]` expands to nothing: the workspace never
//! deserializes, the derive only needs to be accepted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait writing compact JSON).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({:?});", msg).parse().unwrap(),
    }
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    kind: ItemKind,
    name: String,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

fn generate(input: TokenStream) -> Result<String, String> {
    let item = parse_item(input)?;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
                b.push_str(&format!("::serde::Serialize::serialize_json(&self.{f}, out);\n"));
            }
            b.push_str("out.push('}');");
            b
        }
        ItemKind::TupleStruct(arity) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*arity {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("::serde::Serialize::serialize_json(&self.{i}, out);\n"));
            }
            b.push_str("out.push(']');");
            b
        }
        ItemKind::UnitStruct => String::from("out.push_str(\"null\");"),
        ItemKind::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        None => format!("{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),"),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let mut body =
                                format!("out.push_str(\"{{\\\"{vn}\\\":{{\");\n");
                            for (i, f) in fields.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "out.push_str(\"\\\"{f}\\\":\");\n\
                                     ::serde::Serialize::serialize_json({f}, out);\n"
                                ));
                            }
                            body.push_str("out.push_str(\"}}\");");
                            format!("{name}::{vn} {{ {binds} }} => {{\n{body}\n}}")
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    Ok(format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{}\n}}\n}}",
        item.name, body
    ))
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {:?}", other)),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {:?}", other)),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generics (on `{name}`)"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                kind: ItemKind::NamedStruct(parse_named_fields(g.stream())?),
                name,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
                name,
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item { kind: ItemKind::UnitStruct, name })
            }
            other => Err(format!("unexpected struct body: {:?}", other)),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                kind: ItemKind::Enum(parse_variants(g.stream(), &name)?),
                name,
            }),
            other => Err(format!("unexpected enum body: {:?}", other)),
        },
        other => Err(format!("expected struct or enum, found `{other}`")),
    }
}

/// Advances past attributes (`#[...]`), doc comments, and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {:?}", other)),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after `{name}`, found {:?}", other)),
        }
        // Consume the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Arity of a tuple-struct body (top-level comma-separated types).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Variants of an enum body; tuple variants are rejected.
fn parse_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant, found {:?}", other)),
        };
        i += 1;
        let mut fields = None;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream())?);
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive does not support tuple variants; \
                     `{enum_name}::{name}` is one"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Discriminant: skip until comma.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
                i += 1;
            }
            other => return Err(format!("unexpected token after variant: {:?}", other)),
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}
