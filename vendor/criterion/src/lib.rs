//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure a fixed number of sampled iterations and
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! baseline comparison — just enough to keep `cargo bench` targets
//! compiling and producing useful numbers in a hermetic build.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, one per `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name, sample_size }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), &mut f);
        self
    }

    /// Runs `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints as it goes).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let per_iter = if iters > 0 { total / iters as u32 } else { Duration::ZERO };
        eprintln!("  {}/{id}: {per_iter:?}/iter ({iters} iters)", self.name);
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up call, then a small fixed batch per sample.
        let _ = black_box(routine());
        let batch: u64 = 3;
        let start = Instant::now();
        for _ in 0..batch {
            let _ = black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// Opaque-value hint so the optimiser cannot delete benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        for n in [4usize, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
            group.bench_with_input(BenchmarkId::new(format!("sq-{n}"), n), &n, |b, &n| {
                b.iter(|| n * n)
            });
        }
        group.finish();
        assert!(calls >= 2, "closure must actually run");
    }
}
