//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace is hermetic (no crates.io
//! access), so the small API subset the workspace actually uses is
//! implemented here: [`RngCore`], [`Rng`], [`SeedableRng`], and
//! [`seq::SliceRandom`]. Determinism — not statistical quality or
//! bit-compatibility with upstream `rand` — is the contract: the same seed
//! always yields the same stream on every platform.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from uniform bits via `rng.gen()`.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i32 => next_u32,
              u64 => next_u64, i64 => next_u64, usize => next_u64);

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Rejection sampling over the widest zone divisible by span
                // keeps the draw unbiased.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                if s == e {
                    return s;
                }
                #[allow(clippy::range_plus_one)]
                (s..e + 1).sample_single(rng)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value of the inferred type, uniform over its natural domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Slice sampling and shuffling.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert_ne!(v, s, "50-element shuffle left the slice sorted");
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = Counter(11);
        for _ in 0..100 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
