//! Offline stand-in for `rayon`.
//!
//! The hermetic build environment has no crates.io access, so this crate
//! maps the `par_*` entry points the workspace uses onto plain sequential
//! `std` iterators. Downstream adaptor chains (`.map`, `.zip`,
//! `.enumerate().for_each`, `.sum`, `.collect`) compile unchanged because
//! they are ordinary `Iterator` methods. Results are therefore identical to
//! upstream rayon's (same reduction order as the sequential spec); only
//! wall-clock parallelism is lost, which no test in this workspace asserts.

/// Runs both closures and returns both results (sequentially, a-then-b).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (oper_a(), oper_b())
}

pub mod prelude {
    //! Traits that put `par_iter`/`par_chunks_mut`/`into_par_iter` in scope.

    /// `.into_par_iter()` on any owned iterable (ranges, vectors).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The sequential iterator standing in for the parallel one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `.par_iter()` on anything whose reference iterates.
    pub trait IntoParallelRefIterator {
        /// Shared-reference iterator type.
        type RefIter<'a>: Iterator
        where
            Self: 'a;
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> Self::RefIter<'_>;
    }

    impl<T> IntoParallelRefIterator for [T] {
        type RefIter<'a>
            = std::slice::Iter<'a, T>
        where
            T: 'a;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    impl<T> IntoParallelRefIterator for Vec<T> {
        type RefIter<'a>
            = std::slice::Iter<'a, T>
        where
            T: 'a;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on slices and vectors.
    pub trait IntoParallelRefMutIterator {
        /// Unique-reference iterator type.
        type MutIter<'a>: Iterator
        where
            Self: 'a;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> Self::MutIter<'_>;
    }

    impl<T> IntoParallelRefMutIterator for [T] {
        type MutIter<'a>
            = std::slice::IterMut<'a, T>
        where
            T: 'a;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    impl<T> IntoParallelRefMutIterator for Vec<T> {
        type MutIter<'a>
            = std::slice::IterMut<'a, T>
        where
            T: 'a;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// `.par_chunks()` on slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `.par_chunks_mut()` on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adaptor_chains_compile_and_agree() {
        let v: Vec<i32> = (0..10).collect();
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10).map(|x| x * 2).collect::<Vec<_>>());

        let mut out = vec![0i32; 6];
        out.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as i32;
            }
        });
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2]);

        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 45);

        let sq: Vec<usize> = (0usize..4).into_par_iter().map(|x| x * x).collect();
        assert_eq!(sq, vec![0, 1, 4, 9]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
