//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher used
//! as a deterministic PRNG.
//!
//! The keystream follows RFC 8439's block function with 8 rounds. It is not
//! bit-compatible with upstream `rand_chacha` (seed expansion differs), but
//! it is a true ChaCha8: fixed constants, 256-bit key, 64-bit counter, and
//! the same quarter-round schedule — deterministic across platforms, which
//! is the property the workspace relies on for reproducible training.

pub use rand::SeedableRng as _;

/// Compatibility path: upstream exposes `rand_chacha::rand_core::SeedableRng`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8-based deterministic PRNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Selects an independent keystream (word streams never overlap).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.cursor = 16;
        self.counter = 0;
    }
}

impl rand::RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let v = self.buf[self.cursor];
        self.cursor += 1;
        v
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, stream: 0, buf: [0; 16], cursor: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams suspiciously correlated");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {}", mean);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(1);
        let equal = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(equal < 8);
    }
}
