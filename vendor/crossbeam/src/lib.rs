//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel::{bounded, Sender, Receiver}` subset the distsim
//! crate's all-reduce implementations use: multi-producer multi-consumer
//! bounded channels with blocking `send`/`recv` and disconnect detection
//! (so a panicking ring peer unblocks its neighbors instead of deadlocking
//! the collective).

pub mod channel {
    //! Bounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `msg`.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < self.shared.cap {
                    st.queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap();
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u8>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn ring_of_threads_round_trips() {
        // 4 threads in a ring, each forwards what it receives; mirrors the
        // all-reduce topology that uses this channel.
        let p = 4;
        let mut txs = Vec::new();
        let mut rxs: Vec<Option<super::channel::Receiver<usize>>> = (0..p).map(|_| None).collect();
        for i in 0..p {
            let (tx, rx) = bounded::<usize>(2);
            txs.push(Some(tx));
            rxs[(i + 1) % p] = Some(rx);
        }
        let results: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let tx = txs[rank].take().unwrap();
                    let rx = rxs[rank].take().unwrap();
                    s.spawn(move || {
                        let mut acc = rank;
                        for _ in 0..p - 1 {
                            tx.send(acc).unwrap();
                            acc = rx.recv().unwrap();
                        }
                        acc
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // After p-1 forwards, each rank holds its successor's value.
        for (rank, v) in results.iter().enumerate() {
            assert_eq!(*v, (rank + 1) % p);
        }
    }
}
