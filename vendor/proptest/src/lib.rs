//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and
//! collection strategies, [`strategy::Just`], [`prop_oneof!`], the
//! `prop_assert*` family, and [`prop_assume!`]. Differences from upstream:
//! cases are drawn from a fixed deterministic seed (per test name) and
//! failing inputs are reported but not shrunk.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod test_runner {
    //! Config and the per-case result type.

    /// Runner configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `msg`.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::*;

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(pub(crate) ChaCha8Rng);

    impl TestRng {
        /// Seeded from the test name and case index.
        pub fn new(seed: u64) -> Self {
            TestRng(ChaCha8Rng::seed_from_u64(seed))
        }
    }

    /// Generates values of `Value` from uniform bits.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (s, e) = (self.start as u32, self.end as u32);
            char::from_u32(rng.0.gen_range(s..e)).unwrap_or(self.start)
        }
    }

    /// `&Strategy` is itself a strategy (lets `prop_oneof!` take refs).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`]).
    pub struct OneOf<T> {
        /// The alternatives.
        pub options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with per-case random length.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path used inside tests.
        pub use crate::collection;
    }
}

/// Stable 64-bit FNV-1a over the test name: per-test deterministic seed.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The test-defining macro. Parses the upstream grammar subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(arg in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts = (config.cases as u64).saturating_mul(16).max(1024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest shim: too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                    let mut rng = $crate::strategy::TestRng::new(seed ^ attempts);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let l = $lhs;
        let r = $rhs;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let l = $lhs;
        let r = $rhs;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let l = $lhs;
        let r = $rhs;
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($lhs), stringify!($rhs), l
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3usize..10).contains(&x));
            prop_assert!((-1.0f32..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn oneof_picks_from_options(v in prop_oneof![Just(1usize), Just(7usize)]) {
            prop_assert!(v == 1usize || v == 7usize);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::{Strategy, TestRng};
        let seed = crate::seed_for("x");
        let a: Vec<usize> =
            (0..10).map(|i| (0usize..100).generate(&mut TestRng::new(seed ^ i))).collect();
        let b: Vec<usize> =
            (0..10).map(|i| (0usize..100).generate(&mut TestRng::new(seed ^ i))).collect();
        assert_eq!(a, b);
    }
}
