//! Offline stand-in for `serde_json`: serialization only, over the shim
//! [`serde::Serialize`] trait (which writes compact JSON directly).

use std::fmt;

/// Serialization error. The shim's serializers are infallible, so this only
/// exists for signature compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding of `value`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Pretty-printed (2-space indented) JSON encoding of `value`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON. Operates on the encoded text, tracking string
/// literals so braces inside strings are left alone.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&next) = chars.peek() {
                    if (c == '{' && next == '}') || (c == '[' && next == ']') {
                        out.push(chars.next().unwrap());
                        continue;
                    }
                }
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_is_indented_and_structurally_equal() {
        let compact = r#"{"a":[1,2],"b":"x{y","c":{}}"#;
        let pretty = prettify(compact);
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.contains("\"x{y\""), "brace inside string must be untouched");
        assert!(pretty.contains("\"c\": {}"));
        let stripped: String = {
            // Removing whitespace outside strings recovers the compact form.
            let mut s = String::new();
            let mut in_str = false;
            let mut esc = false;
            for ch in pretty.chars() {
                if in_str {
                    s.push(ch);
                    if esc {
                        esc = false;
                    } else if ch == '\\' {
                        esc = true;
                    } else if ch == '"' {
                        in_str = false;
                    }
                } else if ch == '"' {
                    in_str = true;
                    s.push(ch);
                } else if !ch.is_whitespace() {
                    s.push(ch);
                }
            }
            s
        };
        assert_eq!(stripped, compact);
    }
}
