/root/repo/target/debug/examples/multi_organ_ct-c5445754e4bc4e3f.d: examples/multi_organ_ct.rs

/root/repo/target/debug/examples/multi_organ_ct-c5445754e4bc4e3f: examples/multi_organ_ct.rs

examples/multi_organ_ct.rs:
