/root/repo/target/debug/examples/distributed_training-afeb26bbd1df3e30.d: examples/distributed_training.rs

/root/repo/target/debug/examples/distributed_training-afeb26bbd1df3e30: examples/distributed_training.rs

examples/distributed_training.rs:
