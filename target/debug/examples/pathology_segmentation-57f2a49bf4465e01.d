/root/repo/target/debug/examples/pathology_segmentation-57f2a49bf4465e01.d: examples/pathology_segmentation.rs

/root/repo/target/debug/examples/pathology_segmentation-57f2a49bf4465e01: examples/pathology_segmentation.rs

examples/pathology_segmentation.rs:
