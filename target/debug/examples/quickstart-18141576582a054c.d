/root/repo/target/debug/examples/quickstart-18141576582a054c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-18141576582a054c: examples/quickstart.rs

examples/quickstart.rs:
