/root/repo/target/debug/deps/apf_core-4286a4d66a150b1a.d: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/apf_core-4286a4d66a150b1a: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/morton.rs:
crates/core/src/patchify.rs:
crates/core/src/pipeline.rs:
crates/core/src/quadtree.rs:
crates/core/src/stats.rs:
crates/core/src/uniform.rs:
crates/core/src/viz.rs:
