/root/repo/target/debug/deps/table2_speedup-8991204500680c58.d: crates/bench/src/bin/table2_speedup.rs

/root/repo/target/debug/deps/table2_speedup-8991204500680c58: crates/bench/src/bin/table2_speedup.rs

crates/bench/src/bin/table2_speedup.rs:
