/root/repo/target/debug/deps/apf_distsim-e758f2f3c2e0684b.d: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

/root/repo/target/debug/deps/apf_distsim-e758f2f3c2e0684b: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

crates/distsim/src/lib.rs:
crates/distsim/src/allreduce.rs:
crates/distsim/src/cluster.rs:
crates/distsim/src/cost.rs:
crates/distsim/src/engine.rs:
crates/distsim/src/gpu.rs:
crates/distsim/src/tree_allreduce.rs:
