/root/repo/target/debug/deps/fig1_overview-550f31ae9d46e9f4.d: crates/bench/src/bin/fig1_overview.rs

/root/repo/target/debug/deps/fig1_overview-550f31ae9d46e9f4: crates/bench/src/bin/fig1_overview.rs

crates/bench/src/bin/fig1_overview.rs:
