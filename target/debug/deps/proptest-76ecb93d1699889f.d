/root/repo/target/debug/deps/proptest-76ecb93d1699889f.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-76ecb93d1699889f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-76ecb93d1699889f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
