/root/repo/target/debug/deps/apf_distsim-00b3ac2bfa4e776d.d: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

/root/repo/target/debug/deps/libapf_distsim-00b3ac2bfa4e776d.rlib: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

/root/repo/target/debug/deps/libapf_distsim-00b3ac2bfa4e776d.rmeta: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

crates/distsim/src/lib.rs:
crates/distsim/src/allreduce.rs:
crates/distsim/src/cluster.rs:
crates/distsim/src/cost.rs:
crates/distsim/src/engine.rs:
crates/distsim/src/gpu.rs:
crates/distsim/src/tree_allreduce.rs:
