/root/repo/target/debug/deps/model_properties-516e3deb2881dd1c.d: crates/models/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-516e3deb2881dd1c: crates/models/tests/model_properties.rs

crates/models/tests/model_properties.rs:
