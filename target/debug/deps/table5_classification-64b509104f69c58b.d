/root/repo/target/debug/deps/table5_classification-64b509104f69c58b.d: crates/bench/src/bin/table5_classification.rs

/root/repo/target/debug/deps/table5_classification-64b509104f69c58b: crates/bench/src/bin/table5_classification.rs

crates/bench/src/bin/table5_classification.rs:
