/root/repo/target/debug/deps/grad_checks-9bb9b260e8b9b893.d: crates/tensor/tests/grad_checks.rs

/root/repo/target/debug/deps/grad_checks-9bb9b260e8b9b893: crates/tensor/tests/grad_checks.rs

crates/tensor/tests/grad_checks.rs:
