/root/repo/target/debug/deps/paper_claims-c11d86edf0c6771e.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c11d86edf0c6771e: tests/paper_claims.rs

tests/paper_claims.rs:
