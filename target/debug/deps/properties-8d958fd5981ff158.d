/root/repo/target/debug/deps/properties-8d958fd5981ff158.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-8d958fd5981ff158: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
