/root/repo/target/debug/deps/apf_tensor-86dfcff774fdd614.d: crates/tensor/src/lib.rs crates/tensor/src/autograd/mod.rs crates/tensor/src/autograd/ops.rs crates/tensor/src/gradcheck.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libapf_tensor-86dfcff774fdd614.rlib: crates/tensor/src/lib.rs crates/tensor/src/autograd/mod.rs crates/tensor/src/autograd/ops.rs crates/tensor/src/gradcheck.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libapf_tensor-86dfcff774fdd614.rmeta: crates/tensor/src/lib.rs crates/tensor/src/autograd/mod.rs crates/tensor/src/autograd/ops.rs crates/tensor/src/gradcheck.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/autograd/mod.rs:
crates/tensor/src/autograd/ops.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/init.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/conv.rs:
crates/tensor/src/kernels/gemm.rs:
crates/tensor/src/kernels/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
