/root/repo/target/debug/deps/apf_core-a92cba6a6706bc26.d: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libapf_core-a92cba6a6706bc26.rlib: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/libapf_core-a92cba6a6706bc26.rmeta: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/morton.rs:
crates/core/src/patchify.rs:
crates/core/src/pipeline.rs:
crates/core/src/quadtree.rs:
crates/core/src/stats.rs:
crates/core/src/uniform.rs:
crates/core/src/viz.rs:
