/root/repo/target/debug/deps/fig3_splitvalue-fc8285bd4c06685c.d: crates/bench/src/bin/fig3_splitvalue.rs

/root/repo/target/debug/deps/fig3_splitvalue-fc8285bd4c06685c: crates/bench/src/bin/fig3_splitvalue.rs

crates/bench/src/bin/fig3_splitvalue.rs:
