/root/repo/target/debug/deps/ablation_droprate-956cd47f104c842b.d: crates/bench/src/bin/ablation_droprate.rs

/root/repo/target/debug/deps/ablation_droprate-956cd47f104c842b: crates/bench/src/bin/ablation_droprate.rs

crates/bench/src/bin/ablation_droprate.rs:
