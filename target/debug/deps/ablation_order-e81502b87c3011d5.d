/root/repo/target/debug/deps/ablation_order-e81502b87c3011d5.d: crates/bench/src/bin/ablation_order.rs

/root/repo/target/debug/deps/ablation_order-e81502b87c3011d5: crates/bench/src/bin/ablation_order.rs

crates/bench/src/bin/ablation_order.rs:
