/root/repo/target/debug/deps/apf-0548e6eaa9154e1e.d: src/lib.rs

/root/repo/target/debug/deps/apf-0548e6eaa9154e1e: src/lib.rs

src/lib.rs:
