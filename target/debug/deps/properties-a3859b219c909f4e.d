/root/repo/target/debug/deps/properties-a3859b219c909f4e.d: crates/tensor/tests/properties.rs

/root/repo/target/debug/deps/properties-a3859b219c909f4e: crates/tensor/tests/properties.rs

crates/tensor/tests/properties.rs:
