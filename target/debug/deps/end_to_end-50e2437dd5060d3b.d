/root/repo/target/debug/deps/end_to_end-50e2437dd5060d3b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-50e2437dd5060d3b: tests/end_to_end.rs

tests/end_to_end.rs:
