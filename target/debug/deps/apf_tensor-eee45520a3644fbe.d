/root/repo/target/debug/deps/apf_tensor-eee45520a3644fbe.d: crates/tensor/src/lib.rs crates/tensor/src/autograd/mod.rs crates/tensor/src/autograd/ops.rs crates/tensor/src/gradcheck.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/apf_tensor-eee45520a3644fbe: crates/tensor/src/lib.rs crates/tensor/src/autograd/mod.rs crates/tensor/src/autograd/ops.rs crates/tensor/src/gradcheck.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/autograd/mod.rs:
crates/tensor/src/autograd/ops.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/init.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/conv.rs:
crates/tensor/src/kernels/gemm.rs:
crates/tensor/src/kernels/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
