/root/repo/target/debug/deps/apf-6e694b2f4bb3bbd4.d: src/lib.rs

/root/repo/target/debug/deps/libapf-6e694b2f4bb3bbd4.rlib: src/lib.rs

/root/repo/target/debug/deps/libapf-6e694b2f4bb3bbd4.rmeta: src/lib.rs

src/lib.rs:
