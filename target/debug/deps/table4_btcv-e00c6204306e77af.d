/root/repo/target/debug/deps/table4_btcv-e00c6204306e77af.d: crates/bench/src/bin/table4_btcv.rs

/root/repo/target/debug/deps/table4_btcv-e00c6204306e77af: crates/bench/src/bin/table4_btcv.rs

crates/bench/src/bin/table4_btcv.rs:
