/root/repo/target/debug/deps/apf_models-14702f1983bf1f2a.d: crates/models/src/lib.rs crates/models/src/checkpoint.rs crates/models/src/hipt.rs crates/models/src/layers.rs crates/models/src/params.rs crates/models/src/rearrange.rs crates/models/src/swin.rs crates/models/src/transformer.rs crates/models/src/transunet.rs crates/models/src/unet.rs crates/models/src/unetr.rs crates/models/src/vit.rs

/root/repo/target/debug/deps/apf_models-14702f1983bf1f2a: crates/models/src/lib.rs crates/models/src/checkpoint.rs crates/models/src/hipt.rs crates/models/src/layers.rs crates/models/src/params.rs crates/models/src/rearrange.rs crates/models/src/swin.rs crates/models/src/transformer.rs crates/models/src/transunet.rs crates/models/src/unet.rs crates/models/src/unetr.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/checkpoint.rs:
crates/models/src/hipt.rs:
crates/models/src/layers.rs:
crates/models/src/params.rs:
crates/models/src/rearrange.rs:
crates/models/src/swin.rs:
crates/models/src/transformer.rs:
crates/models/src/transunet.rs:
crates/models/src/unet.rs:
crates/models/src/unetr.rs:
crates/models/src/vit.rs:
