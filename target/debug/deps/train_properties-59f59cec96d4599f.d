/root/repo/target/debug/deps/train_properties-59f59cec96d4599f.d: crates/train/tests/train_properties.rs

/root/repo/target/debug/deps/train_properties-59f59cec96d4599f: crates/train/tests/train_properties.rs

crates/train/tests/train_properties.rs:
