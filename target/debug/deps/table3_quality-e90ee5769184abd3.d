/root/repo/target/debug/deps/table3_quality-e90ee5769184abd3.d: crates/bench/src/bin/table3_quality.rs

/root/repo/target/debug/deps/table3_quality-e90ee5769184abd3: crates/bench/src/bin/table3_quality.rs

crates/bench/src/bin/table3_quality.rs:
