/root/repo/target/debug/deps/apf_train-d0a9d5322626421d.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/imageseg.rs crates/train/src/loss.rs crates/train/src/mcseg.rs crates/train/src/metrics.rs crates/train/src/optim.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/apf_train-d0a9d5322626421d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/imageseg.rs crates/train/src/loss.rs crates/train/src/mcseg.rs crates/train/src/metrics.rs crates/train/src/optim.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/imageseg.rs:
crates/train/src/loss.rs:
crates/train/src/mcseg.rs:
crates/train/src/metrics.rs:
crates/train/src/optim.rs:
crates/train/src/trainer.rs:
