/root/repo/target/debug/deps/fig2_qualitative-a3ec811df044e00c.d: crates/bench/src/bin/fig2_qualitative.rs

/root/repo/target/debug/deps/fig2_qualitative-a3ec811df044e00c: crates/bench/src/bin/fig2_qualitative.rs

crates/bench/src/bin/fig2_qualitative.rs:
