/root/repo/target/debug/deps/apf_imaging-381e04fdfe8db4c4.d: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

/root/repo/target/debug/deps/apf_imaging-381e04fdfe8db4c4: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

crates/imaging/src/lib.rs:
crates/imaging/src/augment.rs:
crates/imaging/src/btcv.rs:
crates/imaging/src/canny.rs:
crates/imaging/src/filter.rs:
crates/imaging/src/image.rs:
crates/imaging/src/integral.rs:
crates/imaging/src/io.rs:
crates/imaging/src/noise.rs:
crates/imaging/src/paip.rs:
crates/imaging/src/resize.rs:
