/root/repo/target/debug/deps/fig4_stability-d256a63705e7728a.d: crates/bench/src/bin/fig4_stability.rs

/root/repo/target/debug/deps/fig4_stability-d256a63705e7728a: crates/bench/src/bin/fig4_stability.rs

crates/bench/src/bin/fig4_stability.rs:
