/root/repo/target/debug/deps/proptest-8f08c2bfcea253bd.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-8f08c2bfcea253bd: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
