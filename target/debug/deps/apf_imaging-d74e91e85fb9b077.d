/root/repo/target/debug/deps/apf_imaging-d74e91e85fb9b077.d: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

/root/repo/target/debug/deps/libapf_imaging-d74e91e85fb9b077.rlib: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

/root/repo/target/debug/deps/libapf_imaging-d74e91e85fb9b077.rmeta: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

crates/imaging/src/lib.rs:
crates/imaging/src/augment.rs:
crates/imaging/src/btcv.rs:
crates/imaging/src/canny.rs:
crates/imaging/src/filter.rs:
crates/imaging/src/image.rs:
crates/imaging/src/integral.rs:
crates/imaging/src/io.rs:
crates/imaging/src/noise.rs:
crates/imaging/src/paip.rs:
crates/imaging/src/resize.rs:
