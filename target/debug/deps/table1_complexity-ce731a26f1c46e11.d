/root/repo/target/debug/deps/table1_complexity-ce731a26f1c46e11.d: crates/bench/src/bin/table1_complexity.rs

/root/repo/target/debug/deps/table1_complexity-ce731a26f1c46e11: crates/bench/src/bin/table1_complexity.rs

crates/bench/src/bin/table1_complexity.rs:
