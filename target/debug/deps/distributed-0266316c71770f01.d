/root/repo/target/debug/deps/distributed-0266316c71770f01.d: tests/distributed.rs

/root/repo/target/debug/deps/distributed-0266316c71770f01: tests/distributed.rs

tests/distributed.rs:
