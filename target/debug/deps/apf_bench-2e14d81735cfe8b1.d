/root/repo/target/debug/deps/apf_bench-2e14d81735cfe8b1.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libapf_bench-2e14d81735cfe8b1.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libapf_bench-2e14d81735cfe8b1.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
