/root/repo/target/debug/deps/scaling-17e5d9d02c0fc44a.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-17e5d9d02c0fc44a: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
