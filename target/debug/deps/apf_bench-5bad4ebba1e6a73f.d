/root/repo/target/debug/deps/apf_bench-5bad4ebba1e6a73f.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/apf_bench-5bad4ebba1e6a73f: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
