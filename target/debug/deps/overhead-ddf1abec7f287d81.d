/root/repo/target/debug/deps/overhead-ddf1abec7f287d81.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-ddf1abec7f287d81: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
