/root/repo/target/release/deps/apf_distsim-ceb9b1eae4fa21d2.d: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

/root/repo/target/release/deps/libapf_distsim-ceb9b1eae4fa21d2.rlib: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

/root/repo/target/release/deps/libapf_distsim-ceb9b1eae4fa21d2.rmeta: crates/distsim/src/lib.rs crates/distsim/src/allreduce.rs crates/distsim/src/cluster.rs crates/distsim/src/cost.rs crates/distsim/src/engine.rs crates/distsim/src/gpu.rs crates/distsim/src/tree_allreduce.rs

crates/distsim/src/lib.rs:
crates/distsim/src/allreduce.rs:
crates/distsim/src/cluster.rs:
crates/distsim/src/cost.rs:
crates/distsim/src/engine.rs:
crates/distsim/src/gpu.rs:
crates/distsim/src/tree_allreduce.rs:
