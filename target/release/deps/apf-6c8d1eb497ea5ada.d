/root/repo/target/release/deps/apf-6c8d1eb497ea5ada.d: src/lib.rs

/root/repo/target/release/deps/libapf-6c8d1eb497ea5ada.rlib: src/lib.rs

/root/repo/target/release/deps/libapf-6c8d1eb497ea5ada.rmeta: src/lib.rs

src/lib.rs:
