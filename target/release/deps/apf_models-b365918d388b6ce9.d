/root/repo/target/release/deps/apf_models-b365918d388b6ce9.d: crates/models/src/lib.rs crates/models/src/checkpoint.rs crates/models/src/hipt.rs crates/models/src/layers.rs crates/models/src/params.rs crates/models/src/rearrange.rs crates/models/src/swin.rs crates/models/src/transformer.rs crates/models/src/transunet.rs crates/models/src/unet.rs crates/models/src/unetr.rs crates/models/src/vit.rs

/root/repo/target/release/deps/libapf_models-b365918d388b6ce9.rlib: crates/models/src/lib.rs crates/models/src/checkpoint.rs crates/models/src/hipt.rs crates/models/src/layers.rs crates/models/src/params.rs crates/models/src/rearrange.rs crates/models/src/swin.rs crates/models/src/transformer.rs crates/models/src/transunet.rs crates/models/src/unet.rs crates/models/src/unetr.rs crates/models/src/vit.rs

/root/repo/target/release/deps/libapf_models-b365918d388b6ce9.rmeta: crates/models/src/lib.rs crates/models/src/checkpoint.rs crates/models/src/hipt.rs crates/models/src/layers.rs crates/models/src/params.rs crates/models/src/rearrange.rs crates/models/src/swin.rs crates/models/src/transformer.rs crates/models/src/transunet.rs crates/models/src/unet.rs crates/models/src/unetr.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/checkpoint.rs:
crates/models/src/hipt.rs:
crates/models/src/layers.rs:
crates/models/src/params.rs:
crates/models/src/rearrange.rs:
crates/models/src/swin.rs:
crates/models/src/transformer.rs:
crates/models/src/transunet.rs:
crates/models/src/unet.rs:
crates/models/src/unetr.rs:
crates/models/src/vit.rs:
