/root/repo/target/release/deps/apf_train-260e11729492b88a.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/imageseg.rs crates/train/src/loss.rs crates/train/src/mcseg.rs crates/train/src/metrics.rs crates/train/src/optim.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/libapf_train-260e11729492b88a.rlib: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/imageseg.rs crates/train/src/loss.rs crates/train/src/mcseg.rs crates/train/src/metrics.rs crates/train/src/optim.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/libapf_train-260e11729492b88a.rmeta: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/imageseg.rs crates/train/src/loss.rs crates/train/src/mcseg.rs crates/train/src/metrics.rs crates/train/src/optim.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/imageseg.rs:
crates/train/src/loss.rs:
crates/train/src/mcseg.rs:
crates/train/src/metrics.rs:
crates/train/src/optim.rs:
crates/train/src/trainer.rs:
