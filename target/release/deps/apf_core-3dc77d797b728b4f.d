/root/repo/target/release/deps/apf_core-3dc77d797b728b4f.d: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libapf_core-3dc77d797b728b4f.rlib: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libapf_core-3dc77d797b728b4f.rmeta: crates/core/src/lib.rs crates/core/src/morton.rs crates/core/src/patchify.rs crates/core/src/pipeline.rs crates/core/src/quadtree.rs crates/core/src/stats.rs crates/core/src/uniform.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/morton.rs:
crates/core/src/patchify.rs:
crates/core/src/pipeline.rs:
crates/core/src/quadtree.rs:
crates/core/src/stats.rs:
crates/core/src/uniform.rs:
crates/core/src/viz.rs:
