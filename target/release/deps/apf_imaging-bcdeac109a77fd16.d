/root/repo/target/release/deps/apf_imaging-bcdeac109a77fd16.d: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

/root/repo/target/release/deps/libapf_imaging-bcdeac109a77fd16.rlib: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

/root/repo/target/release/deps/libapf_imaging-bcdeac109a77fd16.rmeta: crates/imaging/src/lib.rs crates/imaging/src/augment.rs crates/imaging/src/btcv.rs crates/imaging/src/canny.rs crates/imaging/src/filter.rs crates/imaging/src/image.rs crates/imaging/src/integral.rs crates/imaging/src/io.rs crates/imaging/src/noise.rs crates/imaging/src/paip.rs crates/imaging/src/resize.rs

crates/imaging/src/lib.rs:
crates/imaging/src/augment.rs:
crates/imaging/src/btcv.rs:
crates/imaging/src/canny.rs:
crates/imaging/src/filter.rs:
crates/imaging/src/image.rs:
crates/imaging/src/integral.rs:
crates/imaging/src/io.rs:
crates/imaging/src/noise.rs:
crates/imaging/src/paip.rs:
crates/imaging/src/resize.rs:
