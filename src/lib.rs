//! # APF — Adaptive Patch Framework
//!
//! A Rust reproduction of *"Adaptive Patching for High-resolution Image
//! Segmentation with Transformers"* (SC 2024).
//!
//! APF is a quadtree-based, AMR-inspired **pre-processing** step that turns a
//! high-resolution image into a short sequence of mixed-scale patches, ordered
//! along a Morton Z-curve and projected to a single uniform patch size, which
//! can then be fed to *any* transformer-based vision model unchanged.
//!
//! This facade crate re-exports the entire workspace:
//!
//! - [`tensor`] — dense f32 tensors with reverse-mode autograd.
//! - [`imaging`] — Gaussian blur, Canny edges, synthetic PAIP/BTCV datasets.
//! - [`core`] — the adaptive patcher itself (quadtree + Morton + patchify).
//! - [`models`] — ViT, UNETR, U-Net, TransUNet, Swin-lite, HIPT-lite.
//! - [`train`] — losses, AdamW, metrics, training loops.
//! - [`distsim`] — Frontier-like cluster cost model and a real thread-based
//!   data-parallel engine.
//!
//! ## Quickstart
//!
//! ```
//! use apf::core::{AdaptivePatcher, PatcherConfig};
//! use apf::imaging::paip::{PaipConfig, PaipGenerator};
//!
//! // Generate one synthetic pathology sample at 256x256.
//! let gen = PaipGenerator::new(PaipConfig::at_resolution(256));
//! let sample = gen.generate(0);
//!
//! // Adaptively patch it: blur -> Canny -> quadtree -> Z-order -> project.
//! let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(256));
//! let seq = patcher.patchify(&sample.image);
//! assert!(seq.len() < 256 * 256 / (4 * 4)); // far fewer than uniform 4x4 grid
//! ```

pub use apf_core as core;
pub use apf_distsim as distsim;
pub use apf_imaging as imaging;
pub use apf_models as models;
pub use apf_tensor as tensor;
pub use apf_train as train;
