#!/bin/bash
# Regenerates every table and figure of the paper plus the ablations.
# Results land in results/*.json; figures (PPM/PGM) in results/fig2/.
# Takes roughly 30-60 minutes on a laptop. Append --quick to any line for
# a smoke-test-scale run.
set -ex
cargo run --release -p apf-bench --bin table1_complexity
cargo run --release -p apf-bench --bin overhead
cargo run --release -p apf-bench --bin fig3_splitvalue
cargo run --release -p apf-bench --bin table2_speedup
cargo run --release -p apf-bench --bin scaling
cargo run --release -p apf-bench --bin table5_classification
cargo run --release -p apf-bench --bin table4_btcv -- --epochs 40
cargo run --release -p apf-bench --bin ablation_droprate
cargo run --release -p apf-bench --bin ablation_order
cargo run --release -p apf-bench --bin table3_quality
cargo run --release -p apf-bench --bin fig4_stability
cargo run --release -p apf-bench --bin fig2_qualitative
cargo run --release -p apf-bench --bin fig1_overview
