//! Integration tests of the distributed-training substrate against the
//! rest of the workspace.

use apf::core::pipeline::{AdaptivePatcher, PatcherConfig};
use apf::distsim::allreduce::ring_allreduce_mean;
use apf::distsim::cluster::{calibrate, ClusterModel};
use apf::distsim::cost::ModelDims;
use apf::distsim::engine::DataParallelEngine;
use apf::imaging::paip::{PaipConfig, PaipGenerator};
use apf::models::rearrange::GridOrder;
use apf::models::unetr::{Unetr2d, UnetrConfig};
use apf::train::data::TokenSegDataset;
use apf::train::optim::AdamWConfig;

fn dataset(n: usize) -> TokenSegDataset {
    let gen = PaipGenerator::new(PaipConfig::at_resolution(64));
    let pairs: Vec<_> = (0..n)
        .map(|i| {
            let s = gen.generate(i);
            (s.image, s.mask)
        })
        .collect();
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(64)
            .with_patch_size(4)
            .with_target_len(16),
    );
    TokenSegDataset::adaptive(&pairs, &patcher)
}

#[test]
fn engine_trains_apf_dataset_across_workers() {
    let ds = dataset(8);
    let factory = || Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 5);
    let mut engine = DataParallelEngine::new(
        factory,
        4,
        AdamWConfig { lr: 3e-3, ..Default::default() },
    );
    let first = engine.train_epoch(&ds, 8, 0);
    let mut last = first;
    for e in 1..6 {
        last = engine.train_epoch(&ds, 8, e);
    }
    assert!(last < first, "{} -> {}", first, last);
}

#[test]
fn worker_counts_agree_on_final_loss_direction() {
    // Different worker counts shard dice differently, but all must learn.
    let ds = dataset(4);
    let (x, y) = ds.batch(&[0, 1, 2, 3]);
    for w in [1usize, 2, 4] {
        let factory = || Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 5);
        let mut engine =
            DataParallelEngine::new(factory, w, AdamWConfig { lr: 3e-3, ..Default::default() });
        let first = engine.step(&x, &y).loss;
        let mut last = first;
        for _ in 0..8 {
            last = engine.step(&x, &y).loss;
        }
        assert!(last < first, "workers {}: {} -> {}", w, first, last);
    }
}

#[test]
fn ring_allreduce_interops_with_parameter_flattening() {
    // Gradient-sized buffers (non-divisible lengths) survive the ring.
    let sizes = [1usize, 3, 1000, 1 << 14];
    for n in sizes {
        for w in [2usize, 3, 5] {
            let inputs: Vec<Vec<f32>> = (0..w)
                .map(|r| (0..n).map(|i| (r * n + i) as f32).collect())
                .collect();
            let expect: Vec<f32> = (0..n)
                .map(|i| inputs.iter().map(|b| b[i]).sum::<f32>() / w as f32)
                .collect();
            let out = ring_allreduce_mean(inputs);
            for o in &out {
                for (a, b) in o.iter().zip(expect.iter()) {
                    assert!((a - b).abs() < 1e-2, "n={} w={}", n, w);
                }
            }
        }
    }
}

#[test]
fn cluster_model_predicts_apf_speedup_shape() {
    // The calibrated analytic model must reproduce the qualitative Table II
    // pattern: APF (short sequences) beats uniform at every GPU count, and
    // absolute sec/image grows with sequence length.
    let cluster = ClusterModel::frontier();
    let dims = ModelDims::vit_base(4);
    let c = calibrate(&cluster, &dims, 16384, 1, 0.4863);
    for gpus in [1usize, 8, 128, 2048] {
        let uni = cluster.predict(&dims, 16384, gpus, c).sec_per_image;
        let apf = cluster.predict(&dims, 1024, gpus, c).sec_per_image;
        assert!(apf < uni, "APF slower at {} gpus?", gpus);
        let speedup = uni / apf;
        assert!(
            speedup > 2.0 && speedup < 100.0,
            "{} gpus: implausible speedup {:.1}",
            gpus,
            speedup
        );
    }
}

#[test]
fn memory_model_gates_small_patches_like_the_paper() {
    // UNETR's authors "could not conduct experiments with small patch
    // sizes" at high resolution: the memory model must agree — uniform
    // patch 4 at 16K^2 (N = 16M) cannot fit, while APF's short sequence
    // can.
    let cluster = ClusterModel::frontier();
    let dims = ModelDims::vit_base(4);
    let uniform_16k_p4 = (16384usize / 4).pow(2);
    assert!(!cluster.predict(&dims, uniform_16k_p4, 1, 1.0).fits_memory);
    assert!(cluster.predict(&dims, 16384, 1, 1.0).fits_memory);
    assert!(cluster.predict(&dims, 4096, 1, 1.0).fits_memory);
}
