//! Cross-crate integration tests: the full APF pipeline from image
//! generation through patching, model training, and evaluation.

use apf::core::{AdaptivePatcher, PatcherConfig};
use apf::imaging::paip::{PaipConfig, PaipGenerator};
use apf::models::rearrange::GridOrder;
use apf::models::unetr::{Unetr2d, UnetrConfig};
use apf::train::data::{split_indices, TokenSegDataset};
use apf::train::optim::AdamWConfig;
use apf::train::trainer::SegTrainer;

fn pairs(res: usize, n: usize) -> Vec<(apf::imaging::GrayImage, apf::imaging::GrayImage)> {
    let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
    (0..n)
        .map(|i| {
            let s = gen.generate(i);
            (s.image, s.mask)
        })
        .collect()
}

#[test]
fn algorithm_one_complete_flow() {
    // Algorithm 1, line by line: blur -> canny -> quadtree -> patches ->
    // train -> evaluate on validation.
    let data = pairs(64, 6);
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(64)
            .with_patch_size(4)
            .with_split_value(8.0)
            .with_target_len(64),
    );
    let ds = TokenSegDataset::adaptive(&data, &patcher);
    let split = split_indices(ds.len(), 0.7, 0.1, 1);
    let train = ds.subset(&split.train);
    let val = ds.subset(&split.val);
    assert!(!train.is_empty() && !val.is_empty());

    let model = Unetr2d::new(UnetrConfig::tiny(8, 4, GridOrder::Morton), 42);
    let mut trainer = SegTrainer::new(model, AdamWConfig { lr: 3e-3, ..Default::default() });
    let first = trainer.run_epoch(&train, &val, 2, false);
    let mut last = first.train_loss;
    for _ in 0..4 {
        last = trainer.run_epoch(&train, &val, 2, false).train_loss;
    }
    assert!(
        last < first.train_loss,
        "training did not reduce loss: {} -> {}",
        first.train_loss,
        last
    );
    // Evaluation produces a sane dice on the full-resolution masks.
    let dice = trainer.evaluate_dice(&val);
    assert!((0.0..=100.0).contains(&dice));
}

#[test]
fn apf_reduces_sequence_length_on_pathology() {
    // The central claim: far fewer tokens than the uniform grid at the same
    // minimal patch size, on pathology-statistics images.
    for res in [128usize, 256] {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
        let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(res).with_patch_size(4));
        let mut total_reduction = 0.0;
        let n = 3;
        for i in 0..n {
            let img = gen.generate(i).image;
            let seq = patcher.patchify(&img);
            let uniform = (res / 4) * (res / 4);
            total_reduction += uniform as f64 / seq.len() as f64;
        }
        let mean_reduction = total_reduction / n as f64;
        assert!(
            mean_reduction > 4.0,
            "mean reduction at {}: {:.1}x",
            res,
            mean_reduction
        );
    }
}

#[test]
fn reduction_grows_with_resolution() {
    // Higher resolutions have proportionally more quiet area: the sequence
    // reduction factor must grow (this is why APF wins big at 64K^2).
    let reduction_at = |res: usize| {
        let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
        let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(res).with_patch_size(4));
        let seq = patcher.patchify(&gen.generate(0).image);
        ((res / 4) * (res / 4)) as f64 / seq.len() as f64
    };
    let r128 = reduction_at(128);
    let r512 = reduction_at(512);
    assert!(
        r512 > r128,
        "reduction should grow with resolution: {} vs {}",
        r128,
        r512
    );
}

#[test]
fn image_and_mask_tokens_stay_aligned_through_pipeline() {
    let data = pairs(64, 2);
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(64)
            .with_patch_size(4)
            .with_target_len(32),
    );
    let ds = TokenSegDataset::adaptive(&data, &patcher);
    for s in &ds.samples {
        assert_eq!(s.tokens.dims(), s.mask_tokens.dims());
        // Every mask token's values must be within [0, 1].
        for &v in s.mask_tokens.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    // Same seeds => bitwise-identical losses across separate runs.
    let run = || {
        let data = pairs(64, 4);
        let patcher = AdaptivePatcher::new(
            PatcherConfig::for_resolution(64)
                .with_patch_size(4)
                .with_target_len(16),
        );
        let ds = TokenSegDataset::adaptive(&data, &patcher);
        let model = Unetr2d::new(UnetrConfig::tiny(4, 4, GridOrder::Morton), 7);
        let mut trainer = SegTrainer::new(model, AdamWConfig::default());
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        (0..3).map(|_| trainer.step(&x, &y)).collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}
