//! Scaled-down verification of the paper's headline claims, as integration
//! tests across the whole workspace.

use std::time::Instant;

use apf::core::{uniform_sequence_length, AdaptivePatcher, PatcherConfig};
use apf::distsim::cost::{step_cost, ModelDims};
use apf::imaging::paip::{PaipConfig, PaipGenerator};
use apf::models::params::ParamSet;
use apf::models::transformer::MultiHeadAttention;
use apf::tensor::prelude::*;

#[test]
fn claim_attention_cost_is_quadratic_in_sequence_length() {
    // §II-B: total attention cost is O((Z/P)^4) in the uniform grid — i.e.
    // quadratic in N. Measure actual wall-clock exponent.
    let dim = 32;
    let mut ps = ParamSet::new();
    let attn = MultiHeadAttention::new(&mut ps, "a", dim, 2, 1);
    let time_at = |n: usize| {
        let x = Tensor::rand_uniform([1, n, dim], -1.0, 1.0, 2);
        // Warm-up.
        {
            let mut g = Graph::new();
            let bp = ps.bind(&mut g);
            let xv = g.constant(x.clone());
            let _ = attn.forward(&mut g, &bp, xv);
        }
        let t0 = Instant::now();
        for _ in 0..3 {
            let mut g = Graph::new();
            let bp = ps.bind(&mut g);
            let xv = g.constant(x.clone());
            let _ = attn.forward(&mut g, &bp, xv);
        }
        t0.elapsed().as_secs_f64() / 3.0
    };
    let t1 = time_at(512);
    let t2 = time_at(2048);
    let exponent = (t2 / t1).log2() / 2.0; // 4x N
    assert!(
        exponent > 1.4,
        "attention should scale super-linearly; measured N^{:.2}",
        exponent
    );
}

#[test]
fn claim_same_cost_allows_8x_smaller_patches() {
    // Intro: "at the same resolution, a model using APF can employ nearly
    // 8x smaller patch sizes ... while maintaining the same cost".
    // Verify on generated pathology: APF token count at patch P/8 stays
    // within ~2x of the uniform token count at patch P.
    let res = 512;
    let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
    let img = gen.generate(0).image;

    let uniform_p32 = uniform_sequence_length(res, 32); // 256 tokens
    let apf_p4 = AdaptivePatcher::new(
        PatcherConfig::for_resolution(res).with_patch_size(4),
    )
    .patchify(&img)
    .len();
    assert!(
        (apf_p4 as f64) < uniform_p32 as f64 * 2.0,
        "APF at patch 4 has {} tokens vs uniform patch 32's {} — more than 2x",
        apf_p4,
        uniform_p32
    );
}

#[test]
fn claim_cost_model_reproduces_fourth_power_law() {
    // §II-B: uniform-grid cost is O([Z/P]^4). Doubling Z at fixed P must
    // quadruple N and ~16x the quadratic attention FLOPs.
    let dims = ModelDims::vit_base(4);
    let n1 = (512usize / 4).pow(2);
    let n2 = (1024usize / 4).pow(2);
    let q1 = step_cost(&dims, n1).quadratic_flops;
    let q2 = step_cost(&dims, n2).quadratic_flops;
    assert!(((q2 / q1) - 16.0).abs() < 0.5, "ratio {}", q2 / q1);
}

#[test]
fn claim_preprocessing_overhead_is_negligible() {
    // §IV-G.3: pre-processing is negligible vs training. Compare one
    // pre-processing pass against one forward+backward training step on
    // the SAME image's uniform token sequence.
    let res = 128;
    let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
    let sample = gen.generate(0);
    let patcher = AdaptivePatcher::new(PatcherConfig::for_resolution(res).with_patch_size(4));
    let t0 = Instant::now();
    let _ = patcher.patchify(&sample.image);
    let prep = t0.elapsed().as_secs_f64();

    use apf::models::rearrange::GridOrder;
    use apf::models::unetr::{Unetr2d, UnetrConfig};
    use apf::train::data::TokenSegDataset;
    use apf::train::optim::AdamWConfig;
    use apf::train::trainer::SegTrainer;
    let ds = TokenSegDataset::uniform(&[(sample.image.clone(), sample.mask.clone())], 4);
    let model = Unetr2d::new(UnetrConfig::small(res / 4, 4, GridOrder::RowMajor), 1);
    let mut tr = SegTrainer::new(model, AdamWConfig::default());
    let (x, y) = ds.batch(&[0]);
    let t1 = Instant::now();
    tr.step(&x, &y);
    let step = t1.elapsed().as_secs_f64();
    // One uniform training step costs many times one pre-processing pass;
    // amortized over epochs the overhead vanishes.
    assert!(
        step > prep * 3.0,
        "training step {:.4}s vs preprocessing {:.4}s",
        step,
        prep
    );
}

#[test]
fn claim_split_value_halving_roughly_halves_patch_size() {
    // Fig. 3's linearity, asserted as a property.
    let gen = PaipGenerator::new(PaipConfig::at_resolution(256));
    let img = gen.generate(1).image;
    let size_at = |v: f64| {
        AdaptivePatcher::new(PatcherConfig::for_resolution(256).with_split_value(v))
            .tree(&img)
            .average_patch_size()
    };
    let s20 = size_at(20.0);
    let s50 = size_at(50.0);
    let s100 = size_at(100.0);
    assert!(s20 < s50 && s50 < s100, "{} {} {}", s20, s50, s100);
    // Ratio comparable to the paper's 9.37 : 20.21 : 30.73 (i.e. roughly
    // halving, certainly within [0.3, 0.8] per step).
    for r in [s20 / s50, s50 / s100] {
        assert!((0.3..0.85).contains(&r), "ratio {}", r);
    }
}

#[test]
fn claim_quadtree_worst_case_is_uniform_grid() {
    // §III-A: "the worst case ... becomes like uniform grid patching".
    use apf::imaging::GrayImage;
    use apf::core::{QuadTree, QuadTreeConfig, SplitCriterion};
    let all_detail = GrayImage::from_raw(64, 64, vec![1.0; 64 * 64]);
    let cfg = QuadTreeConfig {
        criterion: SplitCriterion::EdgeCount { split_value: 1.0 },
        max_depth: 4,
        min_leaf: 2,
        balance_2to1: false,
    };
    let tree = QuadTree::build(&all_detail, &cfg);
    assert_eq!(tree.len(), 4usize.pow(4)); // exactly the uniform grid
    assert!(tree.leaves.iter().all(|l| l.size == 4));
}

#[test]
fn claim_z_order_keeps_neighbours_close() {
    // §III-A: the Z-order curve keeps geometrically affine patches close in
    // the sequence. Quantify: mean sequence distance of spatially adjacent
    // same-size leaves must beat a row-major ordering of the same leaves.
    let gen = PaipGenerator::new(PaipConfig::at_resolution(256));
    let img = gen.generate(2).image;
    let tree = AdaptivePatcher::new(PatcherConfig::for_resolution(256)).tree(&img);
    let leaves = &tree.leaves; // Z-ordered
    let mut row_major: Vec<_> = leaves.clone();
    row_major.sort_by_key(|l| (l.y, l.x));

    let mean_adjacent_distance = |order: &[apf::core::LeafRegion]| -> f64 {
        let index: std::collections::HashMap<(u32, u32), usize> = order
            .iter()
            .enumerate()
            .map(|(i, l)| ((l.x, l.y), i))
            .collect();
        let mut total = 0.0;
        let mut count = 0;
        for (i, l) in order.iter().enumerate() {
            // Right neighbour of the same size, if it exists.
            if let Some(&j) = index.get(&(l.x + l.size, l.y)) {
                total += (i as f64 - j as f64).abs();
                count += 1;
            }
            // Bottom neighbour.
            if let Some(&j) = index.get(&(l.x, l.y + l.size)) {
                total += (i as f64 - j as f64).abs();
                count += 1;
            }
        }
        total / count.max(1) as f64
    };
    let z = mean_adjacent_distance(leaves);
    let rm = mean_adjacent_distance(&row_major);
    assert!(
        z < rm,
        "Z-order adjacency distance {:.1} should beat row-major {:.1}",
        z,
        rm
    );
}
