//! Simulated multi-GPU data-parallel training: one OS thread per "GPU",
//! real gradient averaging via ring all-reduce, plus the Frontier-like
//! performance model's prediction for the same configuration at cluster
//! scale.
//!
//! Run: `cargo run --release --example distributed_training`

use apf::core::pipeline::{AdaptivePatcher, PatcherConfig};
use apf::distsim::cluster::{calibrate, ClusterModel};
use apf::distsim::cost::ModelDims;
use apf::distsim::engine::DataParallelEngine;
use apf::imaging::paip::{PaipConfig, PaipGenerator};
use apf::models::rearrange::GridOrder;
use apf::models::unetr::{Unetr2d, UnetrConfig};
use apf::train::data::TokenSegDataset;
use apf::train::optim::AdamWConfig;

fn main() {
    // A small APF dataset.
    let res = 64;
    let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
    let pairs: Vec<_> = (0..8)
        .map(|i| {
            let s = gen.generate(i);
            (s.image, s.mask)
        })
        .collect();
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(res)
            .with_patch_size(4)
            .with_target_len(64),
    );
    let ds = TokenSegDataset::adaptive(&pairs, &patcher);
    let (x, y) = ds.batch(&(0..8).collect::<Vec<_>>());

    // Strong scaling over simulated GPU counts: same global batch of 8.
    println!("thread-per-GPU data parallel, global batch 8, real ring all-reduce:");
    let factory = || Unetr2d::new(UnetrConfig::small(8, 4, GridOrder::Morton), 42);
    for workers in [1usize, 2, 4, 8] {
        let mut engine = DataParallelEngine::new(factory, workers, AdamWConfig::default());
        // Warm-up step, then measure.
        engine.step(&x, &y);
        let r = engine.step(&x, &y);
        println!(
            "  {} worker(s): loss {:.4}, compute {:.3}s, allreduce+update {:.4}s",
            workers, r.loss, r.compute_s, r.sync_s
        );
    }

    // The analytic model extrapolates the same shape to Frontier scale.
    println!("\nFrontier-like performance model (calibrated on the paper's 512^2 UNETR row):");
    let cluster = ClusterModel::frontier();
    let dims = ModelDims::vit_base(4);
    let c = calibrate(&cluster, &dims, 16384, 1, 0.4863);
    for gpus in [1usize, 8, 128, 512, 2048] {
        let uni = cluster.predict(&dims, 16384, gpus, c);
        let apf = cluster.predict(&dims, 1024, gpus, c);
        println!(
            "  {:>4} GPUs: uniform(N=16384) {:.3} s/img, APF(N=1024) {:.3} s/img  ({:.1}x)",
            gpus,
            uni.sec_per_image,
            apf.sec_per_image,
            uni.sec_per_image / apf.sec_per_image
        );
    }
}
