//! Quickstart: adaptively patch one high-resolution pathology image and
//! compare against uniform grid patching.
//!
//! Run: `cargo run --release --example quickstart`

use apf::core::{uniform_sequence_length, AdaptivePatcher, PatcherConfig, PatchStats};
use apf::imaging::paip::{PaipConfig, PaipGenerator};

fn main() {
    // 1. A synthetic PAIP-like slide (the real dataset is access-gated;
    //    the generator reproduces its detail statistics).
    let res = 512;
    let gen = PaipGenerator::new(PaipConfig::at_resolution(res));
    let sample = gen.generate(0);
    println!("generated {}x{} pathology image, lesion coverage {:.1}%",
        res, res, 100.0 * sample.mask.coverage(0.5));

    // 2. The Adaptive Patch Framework: blur -> Canny -> quadtree -> Z-order
    //    -> project every leaf to 4x4.
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(res).with_patch_size(4),
    );
    let (seq, timing) = patcher.timed_patchify(&sample.image);

    // 3. Compare against the uniform ViT grid at the same patch size.
    let uniform = uniform_sequence_length(res, 4);
    println!("\nuniform 4x4 grid : {:>6} tokens", uniform);
    println!("adaptive patches : {:>6} tokens ({:.1}x reduction)",
        seq.len(), uniform as f64 / seq.len() as f64);
    println!("pre-processing   : {:.1} ms (blur {:.1} / canny {:.1} / tree {:.1} / extract {:.1})",
        timing.total_s() * 1e3,
        timing.blur_s * 1e3,
        timing.canny_s * 1e3,
        timing.quadtree_s * 1e3,
        timing.extract_s * 1e3);

    // 4. Inspect the mixed-scale decomposition.
    let tree = patcher.tree(&sample.image);
    let stats = PatchStats::from_tree(&tree);
    println!("\nquadtree depth {} reached, average patch side {:.1}px", stats.max_depth, stats.average_patch_size);
    println!("patch size histogram:");
    let total: usize = stats.size_histogram.iter().map(|(_, c)| c).sum();
    for (size, count) in &stats.size_histogram {
        let share = 100.0 * *count as f64 / total as f64;
        println!("  {:>4}px  {:>6} leaves  {:>5.1}%  {}", size, count, share, "#".repeat((share / 2.0) as usize));
    }

    // 5. The token tensor any transformer consumes.
    let tokens = seq.to_tensor();
    println!("\ntoken tensor for the model: {:?} (feed to ViT / UNETR unchanged)", tokens.dims());

    // 6. Render the mixed-scale grid (the paper's Fig. 1 overlay).
    let overlay = apf::core::draw_leaf_grid(&sample.image, &tree.leaves, 0.0);
    let out = std::env::temp_dir().join("apf_quickstart_grid.pgm");
    if apf::imaging::io::write_pgm(&overlay, &out).is_ok() {
        println!("adaptive grid rendered to {}", out.display());
    }
}
