//! Multi-organ CT segmentation (BTCV-style): 13 organ classes + background,
//! trained slice-wise through the APF pipeline and scored as mean organ
//! dice, exactly like the paper's Table IV protocol.
//!
//! Run: `cargo run --release --example multi_organ_ct`

use apf::core::pipeline::{AdaptivePatcher, PatcherConfig};
use apf::imaging::btcv::{BtcvConfig, BtcvGenerator, NUM_ORGANS, ORGAN_NAMES};
use apf::models::rearrange::GridOrder;
use apf::models::unetr::{Unetr2d, UnetrConfig};
use apf::train::mcseg::{adaptive_mc_samples, mc_batch, McSegTrainer};
use apf::train::optim::AdamWConfig;

const RES: usize = 64;
const SUBJECTS: usize = 3;
const SLICES: usize = 5;
const EPOCHS: usize = 6;
const CLASSES: usize = NUM_ORGANS + 1;

fn main() {
    // Subjects 0..1 train; subject 2 is the held-out volume.
    let gen = BtcvGenerator::new(BtcvConfig::small(RES, SLICES));
    let mut pairs = Vec::new();
    for s in 0..SUBJECTS {
        for z in 0..SLICES {
            let sl = gen.slice(s, z);
            pairs.push((sl.image, sl.labels));
        }
    }
    let split = (SUBJECTS - 1) * SLICES;

    // Count visible organs in the validation volume.
    let mut present = [false; CLASSES];
    for (_, labels) in &pairs[split..] {
        for &l in labels {
            present[l as usize] = true;
        }
    }
    let visible: Vec<&str> = (1..CLASSES).filter(|&c| present[c]).map(|c| ORGAN_NAMES[c - 1]).collect();
    println!("validation volume contains {} organs: {}", visible.len(), visible.join(", "));

    // APF at minimal patch 2; labels are sampled nearest so classes stay
    // integral through the quadtree projection.
    let probe = AdaptivePatcher::new(PatcherConfig::for_resolution(RES).with_patch_size(2));
    let max_len = pairs.iter().map(|(img, _)| probe.tree(img).len()).max().unwrap();
    let side = {
        let mut s = 1;
        while s * s < max_len {
            s *= 2;
        }
        s
    };
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(RES)
            .with_patch_size(2)
            .with_target_len(side * side),
    );
    let samples = adaptive_mc_samples(&pairs, &patcher);
    println!("APF sequences: {} tokens ({}x{} Morton grid), patch 2x2", side * side, side, side);

    let cfg = UnetrConfig::small(side, 2, GridOrder::Morton).with_out_channels(CLASSES);
    let model = Unetr2d::new(cfg, 7);
    let mut trainer = McSegTrainer::new(model, CLASSES, AdamWConfig { lr: 2e-3, ..Default::default() });

    println!("training APF-UNETR-2 on {} slices ...", split);
    for epoch in 0..EPOCHS {
        let mut loss = 0.0;
        for i in 0..split {
            let (x, y) = mc_batch(&samples, &[i]);
            loss += trainer.step(&x, &y);
        }
        let dice = trainer.evaluate(&samples[split..]);
        println!(
            "  epoch {:>2}: loss {:.4}  held-out mean organ dice {:>5.1}%",
            epoch,
            loss / split as f64,
            dice
        );
    }
}
