//! End-to-end pathology segmentation: train an APF-UNETR from scratch on
//! synthetic PAIP-like slides and evaluate full-resolution dice against a
//! uniform-grid UNETR of the same architecture.
//!
//! Run: `cargo run --release --example pathology_segmentation`
//! (about a minute on a laptop; edit the constants for longer runs)

use apf::core::{AdaptivePatcher, PatcherConfig};
use apf::imaging::paip::{PaipConfig, PaipGenerator};
use apf::models::rearrange::GridOrder;
use apf::models::unetr::{Unetr2d, UnetrConfig};
use apf::train::data::TokenSegDataset;
use apf::train::optim::AdamWConfig;
use apf::train::trainer::SegTrainer;

const RES: usize = 128;
const SAMPLES: usize = 8;
const EPOCHS: usize = 6;

fn main() {
    // Dataset: 6 train / 2 validation slides.
    let gen = PaipGenerator::new(PaipConfig::at_resolution(RES));
    let pairs: Vec<_> = (0..SAMPLES)
        .map(|i| {
            let s = gen.generate(i);
            (s.image, s.mask)
        })
        .collect();

    // APF pipeline at minimal patch 4, fixed sequence length 256 (16x16
    // Morton grid for the UNETR decoder).
    let patcher = AdaptivePatcher::new(
        PatcherConfig::for_resolution(RES)
            .with_patch_size(4)
            .with_target_len(256),
    );
    let ds = TokenSegDataset::adaptive(&pairs, &patcher);
    let train = ds.subset(&(0..6).collect::<Vec<_>>());
    let val = ds.subset(&[6, 7]);

    // The model: 2D UNETR, tokens arranged on a 16x16 Morton grid.
    let cfg = UnetrConfig::small(16, 4, GridOrder::Morton);
    let model = Unetr2d::new(cfg, 42);
    let mut trainer = SegTrainer::new(model, AdamWConfig { lr: 2e-3, ..Default::default() });

    println!("training APF-UNETR-4 on {} slides at {}^2 ...", train.len(), RES);
    for epoch in 0..EPOCHS {
        let stats = trainer.run_epoch(&train, &val, 2, true);
        println!(
            "  epoch {:>2}: train loss {:.4}  val loss {:.4}  val dice {:>5.1}%  ({:.1}s)",
            epoch, stats.train_loss, stats.val_loss, stats.val_dice, stats.train_seconds
        );
    }

    let dice = trainer.evaluate_dice(&val);
    println!("\nfinal full-resolution validation dice: {:.1}%", dice);

    // Checkpoint the trained weights and restore them into a fresh model:
    // the restored model must score identically.
    let ckpt = std::env::temp_dir().join("apf_pathology_example.apf");
    apf::models::checkpoint::save(&trainer.model.params, &ckpt).expect("save checkpoint");
    let mut restored = Unetr2d::new(cfg, 0xDEAD);
    apf::models::checkpoint::load(&mut restored.params, &ckpt).expect("load checkpoint");
    let restored_trainer = SegTrainer::new(restored, AdamWConfig::default());
    let dice2 = restored_trainer.evaluate_dice(&val);
    println!("dice after checkpoint save/load round trip: {:.1}% (must match)", dice2);
    assert!((dice - dice2).abs() < 1e-9);
    println!(
        "sequence length {} vs uniform {} at the same 4x4 patch — same model, ~{}x less attention work",
        256,
        (RES / 4) * (RES / 4),
        ((RES / 4) * (RES / 4)) / 256
    );
}
